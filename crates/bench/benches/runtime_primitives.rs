//! RT — runtime primitive costs.
//!
//! Not a figure of the paper, but required to interpret F1–F3: the
//! per-record cost of each coordination construct (box application,
//! filter, best-match dispatch, indexed split, det vs non-det merge,
//! replicator unfolding). These are the constants behind the paper's
//! "each box creates a separate process/thread" execution model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snet_runtime::{
    Executor, Metrics, NetBuilder, RouteCache, ThreadPerComponent, WorkStealingPool,
};
use snet_types::{NetSig, Record, RecordType, Shape};
use std::sync::Arc;

const N_RECORDS: u64 = 5_000;

/// The executor backends the per-executor benches compare. The pool is
/// created once and reused across iterations — the production shape: a
/// long-lived pool serving many short-lived networks.
fn exec_variants() -> Vec<(&'static str, Arc<dyn Executor>)> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);
    vec![
        ("threads", Arc::new(ThreadPerComponent) as Arc<dyn Executor>),
        ("pool", Arc::new(WorkStealingPool::new(workers)) as _),
    ]
}

fn id_net(expr: &str) -> snet_runtime::Net {
    id_net_on(expr, snet_runtime::sched::default_executor())
}

fn id_net_on(expr: &str, exec: Arc<dyn Executor>) -> snet_runtime::Net {
    let src = format!(
        "box id (x) -> (x);
         box idy (y) -> (y);
         net main = {expr};"
    );
    NetBuilder::from_source(&src)
        .unwrap()
        .bind("id", |r, e| e.emit(r.clone()))
        .bind("idy", |r, e| e.emit(r.clone()))
        .executor(exec)
        .build("main")
        .unwrap()
}

fn id_net_fan(expr: &str, exec: Arc<dyn Executor>, fan: bool) -> snet_runtime::Net {
    let src = format!(
        "box id (x) -> (x);
         net main = {expr};"
    );
    NetBuilder::from_source(&src)
        .unwrap()
        .bind("id", |r, e| e.emit(r.clone()))
        .executor(exec)
        .fuse(true)
        .fuse_fan(fan)
        .build("main")
        .unwrap()
}

fn drive(net: snet_runtime::Net, with_tag: bool) -> usize {
    for i in 0..N_RECORDS as i64 {
        let mut r = Record::build().field("x", i).finish();
        if with_tag {
            r.set_tag("k", i % 4);
        }
        net.send(r).unwrap();
    }
    net.finish().len()
}

fn bench_box_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_box_chain");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for depth in [1usize, 4, 16] {
        let expr = vec!["id"; depth].join(" .. ");
        g.bench_with_input(BenchmarkId::from_parameter(depth), &expr, |b, expr| {
            b.iter(|| {
                let n = drive(id_net(expr), false);
                assert_eq!(n, N_RECORDS as usize);
            })
        });
    }
    g.finish();
}

/// RT_fused_chain — the PR 5 tentpole measured directly: the same
/// n-stage pipeline with the fusion pass on (one component, records
/// cascade on its stack) vs off (one component per stage, n channel
/// hops + wakeups per record). Includes build/teardown like
/// RT_box_chain; the live-network delta shows up in RT_throughput.
fn bench_fused_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_fused_chain");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for depth in [4usize, 16] {
        let expr = vec!["id"; depth].join(" .. ");
        for (mode, fuse) in [("fused", true), ("unfused", false)] {
            g.bench_with_input(BenchmarkId::new(mode, depth), &expr, |b, expr| {
                b.iter(|| {
                    let src = format!(
                        "box id (x) -> (x);
                         net main = {expr};"
                    );
                    let net = NetBuilder::from_source(&src)
                        .unwrap()
                        .bind("id", |r, e| e.emit(r.clone()))
                        .fuse(fuse)
                        .build("main")
                        .unwrap();
                    let n = drive(net, false);
                    assert_eq!(n, N_RECORDS as usize);
                })
            });
        }
    }
    g.finish();
}

/// RT_fused_fan — the PR 10 tentpole measured directly: a det
/// indexed split (`id ! <k>`, 4 lanes) with replica fusion on (one
/// component — dispatch, lane cores and merge handoff run inline) vs
/// off (dispatcher → lane → merger, three channel hops + wakeups per
/// record). The `live` legs keep the net alive across iterations
/// (the RT_throughput shape); the `build` legs include construction
/// and teardown (the RT_split shape). Per executor, both ways.
fn bench_fused_fan(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_fused_fan");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for (ename, exec) in exec_variants() {
        for (mode, fan) in [("fused", true), ("unfused", false)] {
            let net = id_net_fan("id ! <k>", Arc::clone(&exec), fan);
            g.bench_with_input(
                BenchmarkId::new(format!("live_{mode}"), ename),
                &(),
                |b, _| {
                    b.iter(|| {
                        for i in 0..N_RECORDS as i64 {
                            let mut r = Record::build().field("x", i).finish();
                            r.set_tag("k", i % 4);
                            net.send(r).unwrap();
                        }
                        for _ in 0..N_RECORDS {
                            net.recv().expect("det split echoes every record");
                        }
                    })
                },
            );
            let _ = net.finish();
            g.bench_with_input(
                BenchmarkId::new(format!("build_{mode}"), ename),
                &(),
                |b, _| {
                    b.iter(|| {
                        let net = id_net_fan("id ! <k>", Arc::clone(&exec), fan);
                        let n = drive(net, true);
                        assert_eq!(n, N_RECORDS as usize);
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_filter");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    g.bench_function("rename_and_tag", |b| {
        b.iter(|| {
            let net = id_net("id .. [{x} -> {y=x, <t>=1}] .. idy");
            let n = drive(net, false);
            assert_eq!(n, N_RECORDS as usize);
        })
    });
    g.finish();
}

fn bench_parallel_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_parallel");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for (name, expr) in [("nondet", "id || id"), ("det", "id | id")] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &expr, |b, expr| {
            b.iter(|| {
                let n = drive(id_net(expr), false);
                assert_eq!(n, N_RECORDS as usize);
            })
        });
    }
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_split");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for (name, expr) in [("nondet", "id !! <k>"), ("det", "id ! <k>")] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &expr, |b, expr| {
            b.iter(|| {
                let n = drive(id_net(expr), true);
                assert_eq!(n, N_RECORDS as usize);
            })
        });
    }
    g.finish();
}

fn bench_star_traversal(c: &mut Criterion) {
    // Cost per stage traversed: records count down through the chain.
    let src = "
        box step (n) -> (n) | (n, <z>);
        net main = step ** {<z>};
    ";
    let mut g = c.benchmark_group("RT_star");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for depth in [4i64, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let net = NetBuilder::from_source(src)
                    .unwrap()
                    .bind("step", |r, e| {
                        let n = r.field("n").unwrap().as_int().unwrap();
                        if n <= 1 {
                            e.emit(Record::build().field("n", 0i64).tag("z", 1).finish());
                        } else {
                            e.emit(Record::build().field("n", n - 1).finish());
                        }
                    })
                    .build("main")
                    .unwrap();
                for _ in 0..50 {
                    net.send(Record::build().field("n", depth).finish())
                        .unwrap();
                }
                let out = net.finish();
                assert_eq!(out.len(), 50);
            })
        });
    }
    g.finish();
}

/// RT_metrics — the cost of one per-record metrics update, seed shape
/// vs handle shape (the PR 1 tentpole). The seed paid a `format!` heap
/// allocation plus a `Mutex<BTreeMap>` round-trip per record; the
/// handle is one relaxed atomic add resolved at spawn time. The
/// acceptance bar is handle ≥ 10× faster than the string-keyed path.
fn bench_metrics_inc(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_metrics_inc");
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    let path = "net/star/stage3/split/branch2/box:solveOneLevel";

    g.bench_function("string_seed", |b| {
        // The seed's exact per-record pattern: format a fresh key,
        // then take the registry lock.
        let m = Metrics::new();
        b.iter(|| m.inc(format!("{path}/records_in"), 1));
    });

    g.bench_function("handle", |b| {
        // The new pattern: key resolved once at spawn time.
        let m = Metrics::new();
        let h = m.handle(format!("{path}/records_in"));
        b.iter(|| h.inc(1));
    });

    g.finish();
}

/// RT_dispatch_route — the routing decision of the parallel
/// combinator: fresh `record_type()` + two `match_score` subset tests
/// per record (seed) vs one hash + cache hit (memoized).
fn bench_dispatch_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_dispatch_route");
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    // Branch signatures shaped like a realistic composition: left
    // takes {board,opts}, right takes {board,<done>}.
    let lsig = NetSig::simple(
        RecordType::of(&["board", "opts"], &[]),
        vec![RecordType::of(&["board", "opts"], &[])],
    );
    let rsig = NetSig::simple(
        RecordType::of(&["board"], &["done"]),
        vec![RecordType::of(&["board"], &["done"])],
    );
    // A few distinct record types, as a steady-state stream would mix.
    let records = [
        Record::build()
            .field("board", 1i64)
            .field("opts", 2i64)
            .finish(),
        Record::build().field("board", 1i64).tag("done", 1).finish(),
        Record::build()
            .field("board", 1i64)
            .field("opts", 2i64)
            .tag("k", 3)
            .finish(),
    ];

    g.bench_function("match_score_seed", |b| {
        // The seed's per-record work.
        let mut i = 0usize;
        b.iter(|| {
            let rec = &records[i % records.len()];
            i += 1;
            let rt = rec.record_type();
            let sl = lsig.match_score(&rt);
            let sr = rsig.match_score(&rt);
            match (sl, sr) {
                (Some(a), Some(b)) if a == b => i.is_multiple_of(2),
                (Some(a), Some(b)) => a > b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!(),
            }
        });
    });

    g.bench_function("memoized", |b| {
        let mut cache = RouteCache::new(lsig.clone(), rsig.clone());
        let mut i = 0usize;
        b.iter(|| {
            let rec = &records[i % records.len()];
            i += 1;
            cache.decide(rec).unwrap()
        });
    });

    g.finish();
}

/// RT_record_ops — the record-level type operations the PR 4 tentpole
/// compiled into shape plans: subtype-acceptance `split_for`, flow
/// `inherit`, and the shape-intern lookups backing them. The paper's
/// worked example shapes: record {a,<b>,d} split against box input
/// (a,<b>), output {c} inheriting the excess {d}.
fn bench_record_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_record_ops");
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    let rec = Record::build()
        .field("a", 1i64)
        .tag("b", 10)
        .field("d", 4i64)
        .finish();
    let ty = RecordType::of(&["a"], &["b"]);

    // Warm split: the plan exists, application is array copies into
    // inline storage.
    g.bench_function("split_for", |b| {
        b.iter(|| rec.split_for(&ty).unwrap());
    });

    // Identity split (record shape == input type): the box-wrapper
    // fast path — plan lookup only, nothing copied by the caller.
    let exact = Record::build().field("a", 1i64).tag("b", 10).finish();
    let exact_ty = RecordType::of(&["a"], &["b"]);
    let ty_shape = Shape::of_type(&exact_ty);
    g.bench_function("split_plan_identity_hit", |b| {
        b.iter(|| exact.shape().split_plan(ty_shape).unwrap().is_identity());
    });

    // Warm inherit, non-identity: {c} gains the excess {d}.
    let (_, excess) = rec.split_for(&ty).unwrap();
    let out = Record::build().field("c", 9i64).finish();
    let _ = out.clone().inherit(&excess);
    g.bench_function("inherit", |b| {
        b.iter(|| out.clone().inherit(&excess));
    });

    // Identity inherit: excess fully shadowed — returns the record
    // untouched.
    let shadowing = Record::build().field("c", 9i64).field("d", 5i64).finish();
    let _ = shadowing.clone().inherit(&excess);
    g.bench_function("inherit_identity", |b| {
        b.iter(|| shadowing.clone().inherit(&excess));
    });

    // Shape-intern hit: resolving a known label set to its shape id
    // (what `Record::split_for` pays to key the plan table).
    g.bench_function("shape_intern_hit", |b| {
        b.iter(|| Shape::of_type(&ty).id());
    });

    // Shape-intern miss: first sight of a label set (leaks one
    // interned shape per iteration by design — the measurement is
    // bounded by the short warm-up/measurement windows below; every
    // later sighting of these shapes is a hit).
    let mut fresh = 0u64;
    g.bench_function("shape_intern_miss", |b| {
        b.iter(|| {
            fresh += 1;
            let name = format!("im{fresh}");
            Shape::of_type(&RecordType::of(&[&name], &["immt"])).id()
        });
    });

    g.finish();
}

/// RT_record_hop — one record through one box component on a live
/// network: channel send, box wrapper (subtype split, flow
/// inheritance, metrics), channel recv. The floor for every
/// per-record cost in the runtime — measured under both executors
/// (`single_box` keeps the PR 1 name and runs on the process default).
fn bench_record_hop(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_record_hop");
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));
    let net = id_net("id");
    g.bench_function("single_box", |b| {
        b.iter(|| {
            net.send(Record::build().field("x", 1i64).finish()).unwrap();
            net.recv().expect("box echoes the record")
        });
    });
    let _ = net.finish();
    for (name, exec) in exec_variants() {
        let net = id_net_on("id", exec);
        g.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                net.send(Record::build().field("x", 1i64).finish()).unwrap();
                net.recv().expect("box echoes the record")
            });
        });
        let _ = net.finish();
    }
    g.finish();
}

/// RT_throughput — records/sec with the network kept alive across
/// iterations (construction excluded): the PR 3 headline. `chain4`
/// pipelines N records through a 4-box chain; `det_fan` pushes them
/// through a deterministic 4-lane split (sort broadcast per record,
/// round-ordered merge). Per executor, since this is the number that
/// decides when the pool becomes the default.
fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_throughput");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.throughput(Throughput::Elements(N_RECORDS));
    g.sample_size(10);
    for (name, exec) in exec_variants() {
        let net = id_net_on("id .. id .. id .. id", Arc::clone(&exec));
        g.bench_with_input(BenchmarkId::new("chain4", name), &(), |b, _| {
            b.iter(|| {
                for i in 0..N_RECORDS as i64 {
                    net.send(Record::build().field("x", i).finish()).unwrap();
                }
                for _ in 0..N_RECORDS {
                    net.recv().expect("chain echoes every record");
                }
            })
        });
        let _ = net.finish();

        let net = id_net_on("id ! <k>", Arc::clone(&exec));
        g.bench_with_input(BenchmarkId::new("det_fan", name), &(), |b, _| {
            b.iter(|| {
                for i in 0..N_RECORDS as i64 {
                    let mut r = Record::build().field("x", i).finish();
                    r.set_tag("k", i % 4);
                    net.send(r).unwrap();
                }
                for _ in 0..N_RECORDS {
                    net.recv().expect("det split echoes every record");
                }
            })
        });
        let _ = net.finish();
    }
    g.finish();
}

/// RT_stream_send — the raw cost of one stream message, native
/// lock-free queue vs the vendored mutex+condvar channel it replaced
/// (send + try_recv pairs, consumer never parks — the steady-state
/// shape wakeup coalescing produces).
fn bench_stream_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("RT_stream_send");
    g.measurement_time(std::time::Duration::from_secs(1));
    g.warm_up_time(std::time::Duration::from_millis(200));
    g.sample_size(20);
    g.throughput(Throughput::Elements(1));

    g.bench_function("native", |b| {
        let (tx, rx) = snet_runtime::stream::stream();
        let msg = snet_runtime::stream::Msg::Rec(Record::build().field("x", 1i64).finish());
        b.iter(|| {
            tx.send(msg.clone()).unwrap();
            rx.try_recv().unwrap()
        });
    });

    g.bench_function("vendored_mutex", |b| {
        let (tx, rx) = crossbeam::channel::unbounded();
        let msg = snet_runtime::stream::Msg::Rec(Record::build().field("x", 1i64).finish());
        b.iter(|| {
            tx.send(msg.clone()).unwrap();
            rx.try_recv().unwrap()
        });
    });

    g.finish();
}

fn bench_net_construction(c: &mut Criterion) {
    // Parse + infer + compile + spawn + teardown (no records) — the
    // fixed cost of bringing a network up. This is where the executor
    // choice bites hardest: thread-per-component pays an OS
    // spawn/join per component, the pool pays an allocation and a
    // queue push. `fig2_build_teardown` keeps the PR 1 name and runs
    // on the process default executor.
    let mut g = c.benchmark_group("RT_construction");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(20);
    g.bench_function("fig2_build_teardown", |b| {
        b.iter(|| {
            let net = sudoku::networks::fig2_net(3).unwrap();
            let _ = net.finish();
        })
    });
    for (name, exec) in exec_variants() {
        g.bench_with_input(BenchmarkId::new("fig2", name), &(), |b, _| {
            b.iter(|| {
                let net = sudoku::networks::fig2_net_on(3, Arc::clone(&exec)).unwrap();
                let _ = net.finish();
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_metrics_inc,
    bench_dispatch_route,
    bench_record_ops,
    bench_stream_send,
    bench_record_hop,
    bench_throughput,
    bench_box_chain,
    bench_fused_chain,
    bench_fused_fan,
    bench_filter,
    bench_parallel_dispatch,
    bench_split,
    bench_star_traversal,
    bench_net_construction
);
criterion_main!(benches);
