//! S2 — Section 2: with-loop evaluation performance.
//!
//! Regenerates the data-parallel layer's cost model: genarray /
//! modarray / fold at several sizes and thread counts, plus the
//! `addNumber` kernel (the paper's four-generator modarray) at several
//! board sizes. On a multi-core host the thread sweep exhibits the
//! paper's "implicit parallelism" speedup; on a single core it
//! quantifies the overhead of enabling it (shape preserved: Auto is
//! never catastrophically slower than Sequential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sacarray::{Eval, Generator, Pool, WithLoop};
use snet_bench::thread_sweep;
use sudoku::{add_number, Board, Opts};

fn bench_genarray(c: &mut Criterion) {
    let mut g = c.benchmark_group("S2_genarray");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for size in [100_000usize, 1_000_000, 4_000_000] {
        g.bench_with_input(BenchmarkId::new("seq", size), &size, |b, &n| {
            b.iter(|| {
                WithLoop::new()
                    .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
                        iv[0] as i64
                    })
                    .genarray_seq([n], 0i64)
                    .unwrap()
            })
        });
        for threads in thread_sweep() {
            let pool = Pool::new(threads);
            g.bench_with_input(
                BenchmarkId::new(format!("par{threads}"), size),
                &size,
                |b, &n| {
                    b.iter(|| {
                        WithLoop::new()
                            .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
                                iv[0] as i64
                            })
                            .genarray_on(&pool, Eval::Auto, [n], 0i64)
                            .unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_fold(c: &mut Criterion) {
    let mut g = c.benchmark_group("S2_fold");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    let n = 2_000_000usize;
    g.bench_function("seq", |b| {
        b.iter(|| {
            WithLoop::new()
                .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
                    iv[0] as i64
                })
                .fold_seq(0, |a, x| a + x)
        })
    });
    for threads in thread_sweep() {
        let pool = Pool::new(threads);
        g.bench_function(format!("par{threads}"), |b| {
            b.iter(|| {
                WithLoop::new()
                    .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
                        iv[0] as i64
                    })
                    .fold_on(&pool, Eval::Auto, 0, |a, x| a + x)
            })
        });
    }
    g.finish();
}

fn bench_add_number(c: &mut Criterion) {
    // The paper's kernel: one modarray with four generators. Cost grows
    // with the options cube (n^6 cells).
    let mut g = c.benchmark_group("S2_addNumber");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    for n in [3usize, 4, 5] {
        let board = Board::empty(n);
        let opts = Opts::all_true(n);
        let side = n * n;
        g.bench_with_input(BenchmarkId::from_parameter(side), &n, |b, &n| {
            b.iter(|| add_number(side / 2, side / 2, (n * n / 2) as i64, &board, &opts))
        });
    }
    g.finish();
}

fn bench_modarray_density(c: &mut Criterion) {
    // modarray cost vs. fraction of the array covered by generators —
    // the uncovered part is a copy, the covered part runs the body.
    let mut g = c.benchmark_group("S2_modarray_density");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    let n = 1024usize;
    let base = sacarray::Array::fill([n, n], 1i64);
    for frac in [4usize, 16, 64] {
        let rows = n / frac;
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("1_over_{frac}")),
            &rows,
            |b, &rows| {
                b.iter(|| {
                    WithLoop::new()
                        .gen(Generator::range(vec![0, 0], vec![rows, n]).unwrap(), |iv| {
                            (iv[0] + iv[1]) as i64
                        })
                        .modarray(&base)
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_genarray,
    bench_fold,
    bench_add_number,
    bench_modarray_density
);
criterion_main!(benches);
