//! S5 — Section 5: the cross-cutting comparison.
//!
//! Pure SaC solver vs. all three hybrid networks on the same puzzles,
//! single-shot and batched. The shape to preserve from the paper's
//! argument: the hybrid networks pay a coordination overhead per
//! record, recovered (a) on branchy puzzles through breadth-first
//! overlap and (b) in streaming regimes where several puzzles are in
//! flight through the same network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sudoku::boxes::puzzle_record;
use sudoku::networks::{fig2_net, solve_fig1, solve_fig2, solve_fig3};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};

fn bench_all_solvers(c: &mut Criterion) {
    let corpus = [
        ("classic9", puzzles::classic9()),
        ("hard9", puzzles::hard9()),
    ];
    let mut g = c.benchmark_group("S5_solvers");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for (name, puzzle) in &corpus {
        g.bench_with_input(BenchmarkId::new("pure", name), puzzle, |b, p| {
            b.iter(|| solve_puzzle(p, Policy::MinTrues))
        });
        g.bench_with_input(BenchmarkId::new("fig1", name), puzzle, |b, p| {
            b.iter(|| solve_fig1(p))
        });
        g.bench_with_input(BenchmarkId::new("fig2", name), puzzle, |b, p| {
            b.iter(|| solve_fig2(p))
        });
        g.bench_with_input(BenchmarkId::new("fig3_m4_c40", name), puzzle, |b, p| {
            b.iter(|| solve_fig3(p, 4, 40))
        });
    }
    g.finish();
}

fn bench_streaming_throughput(c: &mut Criterion) {
    // Throughput regime: a batch through one long-lived network vs.
    // strictly sequential pure solving.
    let batch = sudoku::gen::corpus9(10, 34, 0x55AA);
    let mut g = c.benchmark_group("S5_streaming");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    g.bench_function("pure_sequential_10", |b| {
        b.iter(|| {
            for p in &batch {
                let (s, _) = solve_puzzle(p, Policy::MinTrues);
                assert!(s.is_solved());
            }
        })
    });
    g.bench_function("fig2_streamed_10", |b| {
        b.iter(|| {
            let net = fig2_net(3).unwrap();
            for p in &batch {
                net.send(puzzle_record(p)).unwrap();
            }
            let out = net.finish();
            assert_eq!(out.len(), 10);
        })
    });
    g.finish();
}

fn bench_16x16(c: &mut Criterion) {
    // The footnote's regime: bigger boards, where the data-parallel
    // layer (addNumber on a 4096-cell cube) does real work per box.
    let mut g = c.benchmark_group("S5_16x16");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    let puzzle = puzzles::big16();
    g.bench_function("pure", |b| {
        b.iter(|| {
            let (s, _) = solve_puzzle(&puzzle, Policy::MinTrues);
            assert!(s.is_solved());
        })
    });
    g.bench_function("fig1", |b| {
        b.iter(|| {
            let run = solve_fig1(&puzzle);
            assert!(!run.solutions.is_empty());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_all_solvers,
    bench_streaming_throughput,
    bench_16x16
);
criterion_main!(benches);
