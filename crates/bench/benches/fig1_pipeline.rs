//! F1 — Figure 1: `computeOpts .. solveOneLevel ** {<done>}`.
//!
//! Measures the pipeline network against the pure Section 3 solver on
//! the same puzzles (the coordination layer's cost for shifting the
//! recursion into streams), and the batch regime where the pipeline's
//! asynchrony actually pays: many puzzles in flight at once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sudoku::boxes::puzzle_record;
use sudoku::networks::{fig1_net, solve_fig1};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};

fn bench_single_puzzle(c: &mut Criterion) {
    let corpus = [
        ("classic9", puzzles::classic9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ];
    let mut g = c.benchmark_group("F1_single");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for (name, puzzle) in &corpus {
        g.bench_with_input(BenchmarkId::new("pure_sac", name), puzzle, |b, p| {
            b.iter(|| solve_puzzle(p, Policy::MinTrues))
        });
        g.bench_with_input(BenchmarkId::new("fig1_net", name), puzzle, |b, p| {
            b.iter(|| {
                let run = solve_fig1(p);
                assert_eq!(run.solutions.len(), 1);
                run.outputs
            })
        });
    }
    g.finish();
}

fn bench_batch(c: &mut Criterion) {
    // One network instance, whole corpus streamed through: stage i of
    // puzzle A overlaps stage j of puzzle B.
    let batch = sudoku::gen::corpus9(6, 34, 0xF16);
    let mut g = c.benchmark_group("F1_batch");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    g.bench_function("6_puzzles_one_net", |b| {
        b.iter(|| {
            let net = fig1_net(3).unwrap();
            for p in &batch {
                net.send(puzzle_record(p)).unwrap();
            }
            let out = net.finish();
            assert_eq!(out.len(), 6);
        })
    });
    g.bench_function("6_puzzles_fresh_nets", |b| {
        b.iter(|| {
            let mut total = 0;
            for p in &batch {
                total += solve_fig1(p).outputs;
            }
            assert_eq!(total, 6);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_puzzle, bench_batch);
criterion_main!(benches);
