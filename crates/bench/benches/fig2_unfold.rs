//! F2 — Figure 2: full unfolding with a parallel replicator inside the
//! serial replicator.
//!
//! Measures the fully-unfolded network on puzzles of increasing search
//! breadth. The paper's point is structural: breadth-first concurrency
//! with a hard 9-per-stage / 729-total bound. The bench records wall
//! time alongside the realised unfolding so the unfolding/cost
//! relation is visible in the Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sudoku::networks::{solve_fig1, solve_fig2};
use sudoku::puzzles;

fn bench_fig2(c: &mut Criterion) {
    let corpus = [
        ("classic9", puzzles::classic9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ];
    let mut g = c.benchmark_group("F2_unfold");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for (name, puzzle) in &corpus {
        g.bench_with_input(BenchmarkId::new("fig2", name), puzzle, |b, p| {
            b.iter(|| {
                let run = solve_fig2(p);
                assert_eq!(run.solutions.len(), 1);
                // Surface the realised unfolding (printed by Criterion's
                // iteration output when run with --verbose).
                (
                    run.metrics.max_matching("/branches"),
                    run.metrics.count_matching("box:solveOneLevelK/spawned"),
                )
            })
        });
        // Fig. 1 on the same puzzle: the depth-only baseline.
        g.bench_with_input(BenchmarkId::new("fig1_baseline", name), puzzle, |b, p| {
            b.iter(|| {
                let run = solve_fig1(p);
                assert_eq!(run.solutions.len(), 1);
            })
        });
    }
    g.finish();
}

fn bench_fig2_breadth_sweep(c: &mut Criterion) {
    // Puzzles with decreasing clue counts: fewer clues = wider search =
    // more parallel unfolding (until the 9-per-stage cap).
    let mut g = c.benchmark_group("F2_breadth");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for clues in [40usize, 32, 26] {
        let puzzle = sudoku::gen::generate(sudoku::gen::GenConfig {
            n: 3,
            target_clues: clues,
            unique: true,
            seed: 0xF2 + clues as u64,
        });
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("clues{}", puzzle.placed())),
            &puzzle,
            |b, p| {
                b.iter(|| {
                    let run = solve_fig2(p);
                    assert!(!run.solutions.is_empty());
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig2, bench_fig2_breadth_sweep);
criterion_main!(benches);
