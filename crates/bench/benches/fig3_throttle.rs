//! F3 — Figure 3: throttled unfolding.
//!
//! Sweeps the two throttle knobs the paper introduces — the modulo of
//! the `[{<k>} -> {<k>=<k>%m}]` filter (parallel width) and the
//! `{<level>} if <level> > c` exit cutoff (pipeline depth) — and
//! measures how wall time responds as resources are constrained. The
//! expected shape: tighter throttles mean fewer threads and earlier
//! hand-off to the sequential tail solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sudoku::networks::solve_fig3;
use sudoku::puzzles;

fn bench_modulo_sweep(c: &mut Criterion) {
    let puzzle = puzzles::hard9(); // branchy: unfolds to width 9 untrottled
    let mut g = c.benchmark_group("F3_modulo");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for modulo in [1i64, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(modulo), &modulo, |b, &m| {
            b.iter(|| {
                let run = solve_fig3(&puzzle, m, 60);
                assert!(!run.solutions.is_empty());
                assert!(run.metrics.max_matching("/branches") as i64 <= m);
            })
        });
    }
    g.finish();
}

fn bench_cutoff_sweep(c: &mut Criterion) {
    let puzzle = puzzles::medium9();
    let mut g = c.benchmark_group("F3_cutoff");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for cutoff in [25i64, 40, 55, 70] {
        g.bench_with_input(BenchmarkId::from_parameter(cutoff), &cutoff, |b, &cut| {
            b.iter(|| {
                let run = solve_fig3(&puzzle, 4, cut);
                assert!(!run.solutions.is_empty());
            })
        });
    }
    g.finish();
}

fn bench_paper_parameters(c: &mut Criterion) {
    // The exact configuration the paper writes down: mod 4, level 40.
    let mut g = c.benchmark_group("F3_paper_config");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    for (name, puzzle) in [
        ("classic9", puzzles::classic9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let run = solve_fig3(&puzzle, 4, 40);
                assert!(!run.solutions.is_empty());
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_modulo_sweep,
    bench_cutoff_sweep,
    bench_paper_parameters
);
criterion_main!(benches);
