//! S3 — Section 3: the pure SaC solver.
//!
//! Reproduces two claims: 9×9 sudokus solve "in far less than a
//! second", and `findMinTrues` beats `findFirst` ("the choice of i and
//! j directly affects the breadth of the search tree and, thus, has a
//! vast impact on the runtime performance") — who wins and by roughly
//! what factor is the shape to preserve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};

fn bench_policies(c: &mut Criterion) {
    let corpus = [
        ("classic9", puzzles::classic9()),
        ("easy9", puzzles::easy9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ];
    let mut g = c.benchmark_group("S3_policy");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    for (name, puzzle) in &corpus {
        g.bench_with_input(BenchmarkId::new("findFirst", name), puzzle, |b, p| {
            b.iter(|| solve_puzzle(p, Policy::FindFirst))
        });
        g.bench_with_input(BenchmarkId::new("minTrues", name), puzzle, |b, p| {
            b.iter(|| solve_puzzle(p, Policy::MinTrues))
        });
    }
    g.finish();
}

fn bench_compute_opts(c: &mut Criterion) {
    // The initialisation phase alone (what the computeOpts box does).
    let mut g = c.benchmark_group("S3_computeOpts");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    for (name, puzzle) in [
        ("classic9", puzzles::classic9()),
        ("big16", puzzles::big16()),
    ] {
        g.bench_function(name, |b| b.iter(|| sudoku::compute_opts(&puzzle)));
    }
    g.finish();
}

fn bench_bigger_boards(c: &mut Criterion) {
    // The footnote's motivation: cost grows steeply with board size.
    let mut g = c.benchmark_group("S3_board_size");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.sample_size(10);
    g.bench_function("9x9_hard", |b| {
        let p = puzzles::hard9();
        b.iter(|| solve_puzzle(&p, Policy::MinTrues))
    });
    g.bench_function("16x16", |b| {
        let p = puzzles::big16();
        b.iter(|| solve_puzzle(&p, Policy::MinTrues))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_compute_opts,
    bench_bigger_boards
);
criterion_main!(benches);
