//! # snet-bench — benchmark harness
//!
//! Shared infrastructure for reproducing the paper's evaluation
//! artifacts. The paper (IPPS 2007, a design paper) publishes **no
//! numeric tables**; its evaluation consists of the three networks of
//! Figures 1–3 plus explicit structural claims (pipeline ≤ 81
//! replicas, ≤ 9 replicas per stage / ≤ 729 boxes, throttling to 4
//! parallel instances, 9×9 solved "in far less than a second").
//!
//! Accordingly the harness produces two kinds of output:
//!
//! * `cargo bench` — Criterion timings for every experiment
//!   (`benches/`, one target per experiment id in DESIGN.md);
//! * `cargo run --release --bin experiments` — a single-shot run of
//!   every figure with metrics enabled, printing the behavioural
//!   table recorded in EXPERIMENTS.md and asserting the paper's
//!   bounds; machine-readable rows go to `experiments.json`.

pub mod workloads;

use std::time::{Duration, Instant};

/// One behavioural measurement row (EXPERIMENTS.md table).
#[derive(Clone, Debug)]
pub struct ExperimentRow {
    /// Experiment id from DESIGN.md (F1, F2, F3, S2, S3, S5, RT).
    pub experiment: String,
    /// Workload description.
    pub workload: String,
    /// Quantity measured.
    pub metric: String,
    /// Bound or expectation from the paper (free text).
    pub paper: String,
    /// Measured value.
    pub measured: f64,
    /// Whether the paper's claim held.
    pub holds: bool,
}

impl ExperimentRow {
    pub fn new(
        experiment: &str,
        workload: &str,
        metric: &str,
        paper: &str,
        measured: f64,
        holds: bool,
    ) -> ExperimentRow {
        ExperimentRow {
            experiment: experiment.to_string(),
            workload: workload.to_string(),
            metric: metric.to_string(),
            paper: paper.to_string(),
            measured,
            holds,
        }
    }
}

/// Prints rows as an aligned text table.
pub fn print_table(rows: &[ExperimentRow]) {
    println!(
        "{:<4} {:<28} {:<34} {:<26} {:>12} {:>6}",
        "exp", "workload", "metric", "paper", "measured", "holds"
    );
    println!("{}", "-".repeat(116));
    for r in rows {
        println!(
            "{:<4} {:<28} {:<34} {:<26} {:>12.3} {:>6}",
            r.experiment,
            truncate(&r.workload, 28),
            truncate(&r.metric, 34),
            truncate(&r.paper, 26),
            r.measured,
            if r.holds { "yes" } else { "NO" }
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders rows as pretty-printed JSON (hand-rolled — the offline
/// build vendors no serde).
pub fn rows_to_json(rows: &[ExperimentRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\n    \"experiment\": \"{}\",\n    \"workload\": \"{}\",\n    \
             \"metric\": \"{}\",\n    \"paper\": \"{}\",\n    \"measured\": {},\n    \
             \"holds\": {}\n  }}{}\n",
            json_escape(&r.experiment),
            json_escape(&r.workload),
            json_escape(&r.metric),
            json_escape(&r.paper),
            if r.measured.is_finite() {
                format!("{}", r.measured)
            } else {
                "null".to_string()
            },
            r.holds,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push(']');
    out
}

/// Writes rows as JSON (one file per harness run).
pub fn write_json(path: &str, rows: &[ExperimentRow]) -> std::io::Result<()> {
    std::fs::write(path, rows_to_json(rows))
}

/// Times a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed())
}

/// Median wall time of `n` runs (keeps the harness independent of
/// Criterion for the single-shot experiments binary).
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    assert!(n >= 1);
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Thread counts to sweep on this machine: 1, 2, 4, ... up to the
/// available parallelism.
pub fn thread_sweep() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut v = vec![1];
    while *v.last().unwrap() * 2 <= max {
        v.push(v.last().unwrap() * 2);
    }
    if *v.last().unwrap() != max {
        v.push(max);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_monotone_and_starts_at_one() {
        let s = thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn median_time_runs_the_closure() {
        let mut count = 0;
        let _ = median_time(5, || count += 1);
        assert_eq!(count, 5);
    }

    #[test]
    fn rows_serialise_to_json() {
        let rows = vec![ExperimentRow::new(
            "F1",
            "classic9",
            "pipeline depth",
            "<= 81",
            52.0,
            true,
        )];
        let json = rows_to_json(&rows);
        assert!(json.contains("\"experiment\": \"F1\""));
        assert!(json.contains("\"holds\": true"));
        assert!(json.contains("\"measured\": 52"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn truncate_respects_length() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("exactly_te", 10), "exactly_te");
        let t = truncate("much longer than allowed", 10);
        assert!(t.chars().count() <= 10);
    }
}
