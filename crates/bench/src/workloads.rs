//! The two service workloads behind the PR 7 front door
//! (`serve_bench`, the `serve-smoke` CI leg and the serve tests).
//!
//! Both workloads answer every request with **exactly one** record and
//! carry a caller-chosen `<probe>` tag through the net via flow
//! inheritance, so the harness can verify correlation at the payload
//! level independently of the runtime's own `#rid` plumbing: a
//! response is correctly routed iff its probe value equals the request
//! index that produced it.

use snet_runtime::{BuildError, Net, NetBuilder};
use snet_types::{Record, Value};
use sudoku::boxes::puzzle_record;
use sudoku::networks::{builder as sudoku_builder, FIG1};
use sudoku::puzzles;

/// Caller-side correlation tag (an ordinary user tag — unlike `#rid`
/// it is perfectly forgeable; that is the point: it proves responses
/// carry their request's payload, not just a well-routed rid).
pub const PROBE: &str = "probe";

/// A service workload: how to build the net, produce the `i`-th
/// request, and validate the `i`-th response.
pub struct ServeWorkload {
    pub name: &'static str,
    pub build: fn() -> Result<Net, BuildError>,
    pub make_req: fn(usize) -> Record,
    pub check: fn(usize, &[Record]) -> bool,
}

/// Sudoku as a service: the paper's Fig. 1 pipeline + solver star on
/// the 4×4 warmup puzzle (unique solution ⇒ one `<done>` record per
/// request).
pub fn sudoku_workload() -> ServeWorkload {
    ServeWorkload {
        name: "sudoku-fig1-mini4",
        build: || sudoku_builder(2, Vec::new())?.build_expr(FIG1),
        make_req: |i| {
            let mut rec = puzzle_record(&puzzles::mini4());
            rec.set_tag(PROBE, i as i64);
            rec
        },
        check: |i, recs| {
            let [rec] = recs else { return false };
            rec.tag(PROBE) == Some(i as i64)
                && rec.tag("done").is_some()
                && sudoku::boxes::board_of(rec, 2).is_solved()
        },
    }
}

/// Samples per sensor reading. Small enough that the box work does not
/// dwarf coordination (this harness measures the front door, not the
/// with-loops), large enough to be a real data-parallel payload.
const SENSOR_SAMPLES: usize = 256;
/// Sensors cycle 0..SENSORS; the noisy one triggers the quarantine
/// route.
const SENSORS: i64 = 4;
const NOISY_SENSOR: i64 = 2;

/// The sensor-fusion network of `examples/sensor_network.rs`:
/// calibrate, per-sensor split, analyze, then a *type-routed* parallel
/// composition (clean stats to the summariser, anomalies to a
/// quarantine filter). Exercises indexed split replicas and best-match
/// routing under the front door.
fn sensor_net() -> Result<Net, BuildError> {
    let src = "
        box calibrate (samples, <bias_ppm>) -> (samples);
        box analyze (samples) -> (stats) | (samples, <anomaly>);
        box summarize (stats, <sensor>) -> (report, <sensor>);

        net main = calibrate
                .. (analyze !! <sensor>)
                .. (summarize || [{samples, <anomaly>} -> {quarantined=samples, <anomaly>=<anomaly>}]);
    ";
    NetBuilder::from_source(src)?
        .bind(
            "calibrate",
            |rec: &Record, em: &mut snet_runtime::Emitter| {
                let samples = rec.field("samples").unwrap().as_double_array().unwrap();
                let bias = rec.tag("bias_ppm").unwrap() as f64 / 1_000_000.0;
                let corrected: Vec<f64> = samples.data().iter().map(|s| s - bias).collect();
                em.emit(
                    Record::build()
                        .field("samples", Value::from(sacarray::Array::from_vec(corrected)))
                        .finish(),
                );
            },
        )
        .bind("analyze", |rec: &Record, em: &mut snet_runtime::Emitter| {
            let samples = rec.field("samples").unwrap().as_double_array().unwrap();
            let n = samples.size() as f64;
            let mu = samples.data().iter().sum::<f64>() / n;
            let var = samples
                .data()
                .iter()
                .map(|s| (s - mu) * (s - mu))
                .sum::<f64>()
                / n;
            if var < 1.0 {
                em.emit(
                    Record::build()
                        .field(
                            "stats",
                            Value::from(sacarray::Array::from_vec(vec![mu, var])),
                        )
                        .finish(),
                );
            } else {
                em.emit(
                    Record::build()
                        .field("samples", Value::from(samples.clone()))
                        .tag("anomaly", (var * 1000.0) as i64)
                        .finish(),
                );
            }
        })
        .bind(
            "summarize",
            |rec: &Record, em: &mut snet_runtime::Emitter| {
                let stats = rec.field("stats").unwrap().as_double_array().unwrap();
                let sensor = rec.tag("sensor").unwrap();
                let report = format!(
                    "sensor {sensor}: mean {:+.4}, variance {:.4}",
                    stats.data()[0],
                    stats.data()[1]
                );
                em.emit(
                    Record::build()
                        .field("report", Value::from(report))
                        .tag("sensor", sensor)
                        .finish(),
                );
            },
        )
        .build("main")
}

/// The reading record for request `i`: sensors round-robin, the noisy
/// sensor produces variance ≥ 1 (quarantine route), the others a clean
/// report.
fn sensor_req(i: usize) -> Record {
    let sensor = (i as i64) % SENSORS;
    let noisy = sensor == NOISY_SENSOR;
    let data: Vec<f64> = (0..SENSOR_SAMPLES)
        .map(|k| {
            let x = k as f64 * 0.01 + i as f64;
            let signal = x.sin() * 0.3;
            let noise = if noisy {
                ((k.wrapping_mul(2654435761) ^ i) % 1000) as f64 / 100.0
            } else {
                0.0
            };
            signal + noise
        })
        .collect();
    let mut rec = Record::build()
        .field("samples", Value::from(sacarray::Array::from_vec(data)))
        .tag("sensor", sensor)
        .tag("bias_ppm", 1500)
        .finish();
    rec.set_tag(PROBE, i as i64);
    rec
}

fn sensor_check(i: usize, recs: &[Record]) -> bool {
    let [rec] = recs else { return false };
    if rec.tag(PROBE) != Some(i as i64) || rec.tag("sensor") != Some((i as i64) % SENSORS) {
        return false;
    }
    if (i as i64) % SENSORS == NOISY_SENSOR {
        rec.tag("anomaly").is_some() && rec.field("quarantined").is_some()
    } else {
        rec.field("report").is_some()
    }
}

/// Sensor fusion as a service (see [`sensor_net`]).
pub fn sensor_workload() -> ServeWorkload {
    ServeWorkload {
        name: "sensor-fusion",
        build: sensor_net,
        make_req: sensor_req,
        check: sensor_check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_runtime::Service;

    #[test]
    fn both_workloads_answer_one_record_per_request() {
        for wl in [sudoku_workload(), sensor_workload()] {
            let svc = Service::start((wl.build)().expect("workload builds"));
            for i in 0..8 {
                let resp = svc
                    .call((wl.make_req)(i))
                    .expect("call accepted")
                    .wait()
                    .expect("response arrives");
                assert_eq!(resp.records.len(), 1, "{}: one record per request", wl.name);
                assert!(
                    (wl.check)(i, &resp.records),
                    "{}: response #{i} checks",
                    wl.name
                );
            }
            svc.shutdown();
        }
    }
}
