//! Single-shot behavioural harness: runs every experiment of
//! DESIGN.md once with metrics enabled, prints the table recorded in
//! EXPERIMENTS.md, asserts every bound the paper states, and writes
//! `experiments.json`.
//!
//! Run with: `cargo run --release -p snet-bench --bin experiments`

use sacarray::{Eval, Generator, Pool, WithLoop};
use snet_bench::{median_time, print_table, thread_sweep, time_once, write_json, ExperimentRow};
use sudoku::networks::{solve_fig1, solve_fig2, solve_fig3};
use sudoku::puzzles;
use sudoku::sac_solver::{solve_puzzle, Policy};

fn main() {
    let mut rows: Vec<ExperimentRow> = Vec::new();

    experiment_s2(&mut rows);
    experiment_s3(&mut rows);
    experiment_f1(&mut rows);
    experiment_f2(&mut rows);
    experiment_f3(&mut rows);
    experiment_s5(&mut rows);

    println!();
    print_table(&rows);
    let failures: Vec<_> = rows.iter().filter(|r| !r.holds).collect();
    write_json("experiments.json", &rows).expect("write experiments.json");
    println!("\nwrote {} rows to experiments.json", rows.len());
    if failures.is_empty() {
        println!("ALL PAPER CLAIMS HELD");
    } else {
        println!("{} CLAIMS FAILED:", failures.len());
        for f in failures {
            println!("  {} / {} / {}", f.experiment, f.workload, f.metric);
        }
        std::process::exit(1);
    }
}

/// S2 — Section 2: with-loop data parallelism "comes for free".
fn experiment_s2(rows: &mut Vec<ExperimentRow>) {
    println!("[S2] with-loop data-parallel scaling");
    let n = 8_000_000usize;
    let mut t1 = None;
    for threads in thread_sweep() {
        let pool = Pool::new(threads);
        let dt = median_time(3, || {
            let a = WithLoop::new()
                .gen(Generator::range(vec![0], vec![n]).unwrap(), |iv| {
                    let x = iv[0] as f64;
                    (x.sqrt() + x.sin()) as i64
                })
                .genarray_on(&pool, Eval::Auto, [n], 0i64)
                .unwrap();
            std::hint::black_box(a);
        });
        println!("  genarray 8e6, {threads} threads: {dt:?}");
        if threads == 1 {
            t1 = Some(dt);
        } else if let Some(t1) = t1 {
            let speedup = t1.as_secs_f64() / dt.as_secs_f64();
            rows.push(ExperimentRow::new(
                "S2",
                &format!("genarray 8e6 / {threads} thr"),
                "speedup vs 1 thread",
                "> 1 (implicit parallelism)",
                speedup,
                speedup > 1.0,
            ));
        }
    }
    // Parallel evaluation must be observably identical to sequential.
    let pool = Pool::new(4);
    let make = |eval| {
        WithLoop::new()
            .gen(
                Generator::range(vec![0, 0], vec![512, 512]).unwrap(),
                |iv| (iv[0] * 31 + iv[1]) as i64,
            )
            .genarray_on(&pool, eval, [512, 512], 0i64)
            .unwrap()
    };
    let identical = make(Eval::Sequential) == make(Eval::Auto);
    rows.push(ExperimentRow::new(
        "S2",
        "genarray 512x512",
        "parallel == sequential result",
        "identical (no races)",
        f64::from(u8::from(identical)),
        identical,
    ));
}

/// S3 — Section 3: the pure SaC solver and the findMinTrues heuristic.
fn experiment_s3(rows: &mut Vec<ExperimentRow>) {
    println!("[S3] pure SaC solver");
    let puzzle = puzzles::classic9();
    let (_, dt) = time_once(|| solve_puzzle(&puzzle, Policy::MinTrues));
    println!("  classic9 minTrues: {dt:?}");
    rows.push(ExperimentRow::new(
        "S3",
        "classic9 (30 clues)",
        "solve time (ms)",
        "far less than a second",
        dt.as_secs_f64() * 1000.0,
        dt.as_secs_f64() < 1.0,
    ));
    let (_, s_first) = solve_puzzle(&puzzle, Policy::FindFirst);
    let (_, s_min) = solve_puzzle(&puzzle, Policy::MinTrues);
    println!(
        "  placements: findFirst {} vs minTrues {}",
        s_first.placements, s_min.placements
    );
    rows.push(ExperimentRow::new(
        "S3",
        "classic9 (30 clues)",
        "placements findFirst / minTrues",
        "minTrues reduces search",
        s_first.placements as f64 / s_min.placements.max(1) as f64,
        s_min.placements <= s_first.placements,
    ));
}

/// F1 — Figure 1: pipeline unfolding bounded by the cell count.
fn experiment_f1(rows: &mut Vec<ExperimentRow>) {
    println!("[F1] Fig. 1 pipeline");
    for (name, puzzle) in [
        ("classic9", puzzles::classic9()),
        ("easy9", puzzles::easy9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ] {
        let (run, dt) = time_once(|| solve_fig1(&puzzle));
        let stages = run.metrics.max_matching("/stages");
        let solved = run.solutions.len() == 1;
        println!("  {name}: {dt:?}, depth {stages}, solved {solved}");
        rows.push(ExperimentRow::new(
            "F1",
            name,
            "pipeline guards (replicas+1)",
            "<= 81 replicas",
            stages as f64,
            stages <= 82 && solved,
        ));
    }
}

/// F2 — Figure 2: ≤ 9 replicas per stage, ≤ 729 boxes total.
fn experiment_f2(rows: &mut Vec<ExperimentRow>) {
    println!("[F2] Fig. 2 full unfolding");
    for (name, puzzle) in [
        ("classic9", puzzles::classic9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ] {
        let (run, dt) = time_once(|| solve_fig2(&puzzle));
        let width = run.metrics.max_matching("/branches");
        let boxes = run.metrics.count_matching("box:solveOneLevelK/spawned");
        let solved = run.solutions.len() == 1;
        println!("  {name}: {dt:?}, max width {width}, {boxes} boxes, solved {solved}");
        rows.push(ExperimentRow::new(
            "F2",
            name,
            "max replicas per stage",
            "<= 9",
            width as f64,
            width <= 9 && solved,
        ));
        rows.push(ExperimentRow::new(
            "F2",
            name,
            "total solveOneLevel boxes",
            "<= 729",
            boxes as f64,
            boxes <= 729,
        ));
    }
}

/// F3 — Figure 3: modulo throttle and level cutoff.
fn experiment_f3(rows: &mut Vec<ExperimentRow>) {
    println!("[F3] Fig. 3 throttled unfolding");
    // The modulo sweep needs a branchy search (hard9 unfolds to width 9
    // untrottled); the cutoff sweep works on any puzzle.
    let branchy = puzzles::hard9();
    for modulo in [1i64, 2, 4, 8] {
        let (run, dt) = time_once(|| solve_fig3(&branchy, modulo, 60));
        let width = run.metrics.max_matching("/branches") as i64;
        println!("  mod {modulo}: {dt:?}, max width {width}");
        rows.push(ExperimentRow::new(
            "F3",
            &format!("hard9, <k>%{modulo}"),
            "max replicas per stage",
            &format!("<= {modulo} (throttle)"),
            width as f64,
            width <= modulo && !run.solutions.is_empty(),
        ));
    }
    let puzzle = puzzles::medium9();
    let clues = puzzle.placed() as i64;
    for cutoff in [30i64, 40, 60] {
        let (run, dt) = time_once(|| solve_fig3(&puzzle, 4, cutoff));
        let stages = run.metrics.max_matching("/stages") as i64;
        let bound = (cutoff - clues).max(0) + 2;
        println!("  cutoff {cutoff}: {dt:?}, depth {stages} (bound {bound})");
        rows.push(ExperimentRow::new(
            "F3",
            &format!("medium9, level>{cutoff}"),
            "pipeline guards",
            &format!("<= cutoff-clues+2 = {bound}"),
            stages as f64,
            stages <= bound && !run.solutions.is_empty(),
        ));
    }
}

/// S5 — Section 5: all networks find the same solution as the pure
/// solver; batch streaming exposes pipeline concurrency.
fn experiment_s5(rows: &mut Vec<ExperimentRow>) {
    println!("[S5] hybrid vs pure agreement & batch throughput");
    let corpus = [
        ("classic9", puzzles::classic9()),
        ("medium9", puzzles::medium9()),
        ("hard9", puzzles::hard9()),
    ];
    for (name, puzzle) in &corpus {
        let (reference, _) = solve_puzzle(puzzle, Policy::MinTrues);
        let f1 = solve_fig1(puzzle).solutions;
        let f2 = solve_fig2(puzzle).solutions;
        let f3 = solve_fig3(puzzle, 4, 40).solutions;
        let agree = f1 == vec![reference.clone()]
            && f2 == vec![reference.clone()]
            && f3.contains(&reference);
        rows.push(ExperimentRow::new(
            "S5",
            name,
            "all networks agree with pure solver",
            "same unique solution",
            f64::from(u8::from(agree)),
            agree,
        ));
    }

    // Batch streaming: one Fig. 2 network instance, many puzzles in
    // flight — the asynchronous pipeline should process a batch faster
    // than strictly sequential per-puzzle solving of the same batch
    // through the same network machinery would suggest. We report the
    // per-puzzle amortised time.
    let batch = sudoku::gen::corpus9(8, 34, 0xBEEF);
    let (solved, dt_batch) = time_once(|| {
        let net = sudoku::networks::fig2_net(3).unwrap();
        for p in &batch {
            net.send(sudoku::boxes::puzzle_record(p)).unwrap();
        }
        let out = net.finish();
        out.len()
    });
    println!(
        "  batch of {} puzzles through one Fig.2 net: {dt_batch:?} ({} outputs)",
        batch.len(),
        solved
    );
    rows.push(ExperimentRow::new(
        "S5",
        "batch of 8 puzzles (Fig.2)",
        "amortised ms/puzzle",
        "pipeline overlaps puzzles",
        dt_batch.as_secs_f64() * 1000.0 / batch.len() as f64,
        solved >= batch.len(),
    ));
}
