//! `serve_bench` — the PR 7 open-loop service harness.
//!
//! Drives both service workloads (sudoku Fig. 1, sensor fusion)
//! through the `snet-runtime::serve` front door at a fixed arrival
//! rate and reports sustained RPS + p50/p99/p999 tail latency at
//! steady state, written to `BENCH_PR7.json`.
//!
//! Two modes:
//!
//! * default (full): per workload, calibrate capacity with a short
//!   closed-loop burst, then run the open loop at ~60 % of measured
//!   capacity for 12 000 requests across 8 concurrent callers.
//!   Asserts zero lost/misrouted responses (the PR's correctness
//!   criterion) and writes the JSON artifact.
//! * `--smoke`: a short fixed-rate burst per workload for CI — same
//!   zero-loss assertions plus a generous p99 sanity ceiling, no
//!   artifact.
//!
//! `--chaos` (composable with either mode) enables seeded fault
//! injection for the run: 1 % of records panic at a box boundary
//! under a restart-then-skip policy (`SNET_CHAOS`/`SNET_FAULT_POLICY`
//! override the defaults). The assertions shift accordingly: faulted
//! requests must resolve as typed errors (and there must be some —
//! otherwise injection never engaged), *unaffected* requests must
//! still complete losslessly with a bounded p99, and
//! `completed + faulted` must account for every request sent.
//!
//! The arrival schedule and latency bookkeeping live in
//! `snet_runtime::serve` ([`run_open_loop`]); this binary only picks
//! rates, formats JSON and enforces the assertions.

use snet_bench::workloads::{sensor_workload, sudoku_workload, ServeWorkload};
use snet_runtime::ctx::RunCfg;
use snet_runtime::{run_open_loop, CallError, LoadReport, OpenLoopCfg, Service};
use std::time::{Duration, Instant};

/// Closed-loop capacity probe: `callers` threads issue request/wait
/// pairs for `window`; completions per second estimate the service
/// rate the open loop must stay under to be stable.
fn calibrate(wl: &ServeWorkload, callers: usize, window: Duration) -> f64 {
    let svc = Service::start((wl.build)().expect("workload builds"));
    let deadline = Instant::now() + window;
    let total: u64 = std::thread::scope(|s| {
        let svc = &svc;
        let threads: Vec<_> = (0..callers)
            .map(|k| {
                s.spawn(move || {
                    let mut done = 0u64;
                    let mut i = k;
                    while Instant::now() < deadline {
                        let h = svc.call((wl.make_req)(i)).expect("calibration call");
                        match h.wait() {
                            Ok(_) => done += 1,
                            // Under --chaos a calibration request may
                            // fault; it still counts as served work.
                            Err(CallError::Faulted { .. }) => done += 1,
                            Err(e) => panic!("calibration response: {e}"),
                        }
                        i += callers;
                    }
                    done
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).sum()
    });
    svc.shutdown();
    total as f64 / window.as_secs_f64()
}

struct RunRow {
    name: &'static str,
    cfg: OpenLoopCfg,
    capacity_rps: f64,
    report: LoadReport,
}

fn run_workload(wl: &ServeWorkload, cfg: OpenLoopCfg, capacity_rps: f64) -> RunRow {
    let svc = Service::start((wl.build)().expect("workload builds"));
    let report = run_open_loop(&svc, &cfg, wl.make_req, wl.check);
    svc.shutdown();
    RunRow {
        name: wl.name,
        cfg,
        capacity_rps,
        report,
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn json(rows: &[RunRow]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let executor = std::env::var("SNET_EXECUTOR").unwrap_or_else(|_| "threads".into());
    let workers = std::env::var("SNET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    let fused = std::env::var("SNET_FUSE").map(|v| v != "0").unwrap_or(true);
    let bound = RunCfg::from_env().bound;
    let epoch_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_open_loop\",\n  \"pr\": 7,\n");
    out.push_str(&format!("  \"unix_time\": {epoch_secs},\n"));
    out.push_str("  \"host\": {\n");
    out.push_str(&format!("    \"cores\": {cores},\n"));
    out.push_str(&format!("    \"executor\": \"{executor}\",\n"));
    out.push_str(&format!(
        "    \"workers\": {},\n",
        workers.map_or("null".into(), |w| w.to_string())
    ));
    out.push_str(&format!("    \"fused\": {fused},\n"));
    out.push_str(&format!(
        "    \"stream_bound\": {}\n",
        bound.map_or("null".into(), |b| b.to_string())
    ));
    out.push_str("  },\n  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        out.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"rate_hz\": {:.1},\n      \
             \"calibrated_capacity_rps\": {:.1},\n      \"total\": {},\n      \
             \"warmup\": {},\n      \"callers\": {},\n      \"sent\": {},\n      \
             \"completed\": {},\n      \"faulted\": {},\n      \"rejected\": {},\n      \
             \"lost\": {},\n      \
             \"misrouted\": {},\n      \"sustained_rps\": {:.1},\n      \
             \"window_secs\": {:.3},\n      \"measured\": {},\n      \
             \"latency_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}, \
             \"max\": {:.3}, \"mean\": {:.3} }},\n      \
             \"depth_high_water\": {},\n      \"credit_stalls\": {}\n    }}{}\n",
            row.name,
            row.cfg.rate_hz,
            row.capacity_rps,
            row.cfg.total,
            row.cfg.warmup,
            row.cfg.callers,
            r.sent,
            r.completed,
            r.faulted,
            r.rejected,
            r.lost,
            r.misrouted,
            r.sustained_rps,
            r.window_secs,
            r.measured,
            ms(r.p50_ns),
            ms(r.p99_ns),
            ms(r.p999_ns),
            ms(r.max_ns),
            r.mean_ns / 1e6,
            r.depth_high_water,
            r.credit_stalls,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn print_row(row: &RunRow) {
    let r = &row.report;
    println!(
        "{:<20} rate {:>7.1}/s  sustained {:>7.1}/s  p50 {:>8.3} ms  p99 {:>8.3} ms  \
         p999 {:>8.3} ms  max {:>8.3} ms",
        row.name,
        row.cfg.rate_hz,
        r.sustained_rps,
        ms(r.p50_ns),
        ms(r.p99_ns),
        ms(r.p999_ns),
        ms(r.max_ns),
    );
    println!(
        "{:<20} sent {}  completed {}  faulted {}  rejected {}  lost {}  misrouted {}  \
         depth-hw {}  stalls {}",
        "",
        r.sent,
        r.completed,
        r.faulted,
        r.rejected,
        r.lost,
        r.misrouted,
        r.depth_high_water,
        r.credit_stalls,
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chaos = std::env::args().any(|a| a == "--chaos");
    if chaos {
        // Before any threads exist: seed deterministic 1 % panic
        // injection and a restart-then-skip policy, unless the caller
        // pinned their own via the environment.
        if std::env::var("SNET_CHAOS").is_err() {
            std::env::set_var("SNET_CHAOS", "4242:0.01");
        }
        if std::env::var("SNET_FAULT_POLICY").is_err() {
            std::env::set_var("SNET_FAULT_POLICY", "restart:2:1");
        }
        println!(
            "chaos: SNET_CHAOS={} SNET_FAULT_POLICY={}",
            std::env::var("SNET_CHAOS").unwrap(),
            std::env::var("SNET_FAULT_POLICY").unwrap()
        );
        // Injected panics are contained and accounted by the runtime;
        // the default hook's per-panic backtrace would drown the
        // report. Real (non-injected) panics still print.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.starts_with("chaos:"));
            if !injected {
                prev(info);
            }
        }));
    }
    let workloads = [sudoku_workload(), sensor_workload()];
    let mut rows = Vec::new();
    let mut failures = Vec::new();

    for wl in &workloads {
        let (cfg, capacity) = if smoke {
            (
                OpenLoopCfg {
                    rate_hz: 300.0,
                    total: 1_500,
                    warmup: 150,
                    callers: 4,
                    deadline: Duration::from_secs(20),
                    ..OpenLoopCfg::default()
                },
                0.0,
            )
        } else {
            let capacity = calibrate(wl, 8, Duration::from_secs(2));
            // 60 % of closed-loop capacity: high enough that queues
            // form and tails are real, low enough that the open loop
            // is stable (arrival < service rate) and steady state
            // exists.
            let rate = (capacity * 0.6).clamp(50.0, 20_000.0);
            (
                OpenLoopCfg {
                    rate_hz: rate,
                    total: 12_000,
                    warmup: 1_000,
                    callers: 8,
                    deadline: Duration::from_secs(60),
                    ..OpenLoopCfg::default()
                },
                capacity,
            )
        };
        println!(
            "[{}] {} requests at {:.1}/s over {} callers{}",
            wl.name,
            cfg.total,
            cfg.rate_hz,
            cfg.callers,
            if smoke {
                " (smoke)".to_string()
            } else {
                format!(" (capacity ≈ {capacity:.1}/s)")
            }
        );
        let row = run_workload(wl, cfg, capacity);
        print_row(&row);

        let r = &row.report;
        if r.lost != 0 {
            failures.push(format!("{}: {} lost responses", row.name, r.lost));
        }
        if r.misrouted != 0 {
            failures.push(format!("{}: {} misrouted responses", row.name, r.misrouted));
        }
        if r.rejected != 0 {
            // Block policy: nothing should shed.
            failures.push(format!("{}: {} rejected requests", row.name, r.rejected));
        }
        if chaos && r.faulted == 0 {
            failures.push(format!(
                "{}: --chaos set but no request faulted (injection never engaged)",
                row.name
            ));
        }
        if !chaos && r.faulted != 0 {
            failures.push(format!(
                "{}: {} faulted requests without --chaos",
                row.name, r.faulted
            ));
        }
        if r.completed + r.faulted != r.sent {
            failures.push(format!(
                "{}: sent {} but completed {} + faulted {}",
                row.name, r.sent, r.completed, r.faulted
            ));
        }
        if smoke && r.p99_ns > 2_000_000_000 {
            // Generous sanity ceiling (2 s): catches a wedged demux or
            // a pathological queue, not ordinary CI jitter.
            failures.push(format!(
                "{}: p99 {:.1} ms over sanity ceiling",
                row.name,
                ms(r.p99_ns)
            ));
        }
        rows.push(row);
    }

    if !smoke {
        std::fs::write("BENCH_PR7.json", json(&rows)).expect("write BENCH_PR7.json");
        println!("wrote BENCH_PR7.json");
    }

    if failures.is_empty() {
        if chaos {
            println!("SERVE OK: zero lost/misrouted; every fault resolved as a typed error");
        } else {
            println!("SERVE OK: all responses correlated, zero lost/misrouted");
        }
    } else {
        for f in &failures {
            eprintln!("SERVE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
