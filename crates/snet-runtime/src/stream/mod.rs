//! Streams and messages.
//!
//! Boxes are "connected to the rest of the network by two typed
//! streams" (paper, Section 4). A stream here is a native channel of
//! [`Msg`]s — see [`chan`] for the transport: lock-free segmented
//! chunks, an SPSC fast path on every single-producer edge (which is
//! every data edge), and **coalesced wakeups**. Edges are unbounded
//! by default; a network may opt into **bounded data edges** with
//! credit-based backpressure (`NetBuilder::bound` /
//! `SNET_STREAM_BOUND`), turning producer/consumer rate mismatches
//! into producer parking instead of unbounded queue growth. The bound
//! is selective by design: deterministic merging drains branches in a
//! fixed order, and gating a branch that is not currently being
//! drained would deadlock the dispatcher — the original S-Net runtime
//! kept *everything* unbounded for exactly that reason. Here, sort
//! records and every merger-drained edge stay exempt ([`feed_batch`],
//! [`chan::Receiver::exempt`]), which recovers the same freedom while
//! bounding the data plane; the no-deadlock argument lives in
//! [`crate::sched`].
//!
//! Besides data records the streams carry **sort records** — the
//! classic S-Net implementation device for the deterministic
//! combinator variants (`|`, `*`, `!`). A deterministic dispatcher
//! broadcasts `Sort { level, counter }` to *all* branches after every
//! data record it routes; the matching merger uses them to partition
//! branch streams into rounds and re-establish input order on output.
//! Every component forwards sort records transparently (behind any data
//! they follow), so ordering survives arbitrary nesting of combinators.
//! End-of-stream is represented by channel disconnection.
//!
//! # Batched delivery
//!
//! Delivery is batched at both ends:
//!
//! * **Senders wake lazily.** A send is a slot publish plus one atomic
//!   load of the consumer's park state; the waker fires only on the
//!   transition into a *parked* consumer (the robust rendering of
//!   "wake on empty→non-empty": with multiple producers completing
//!   slots out of claim order, queue-emptiness edges are ill-defined,
//!   but "the consumer observed empty and went to sleep" is exact).
//!   A running consumer is never woken — it finds the messages itself.
//! * **Consumers drain batches.** Component loops await
//!   [`chan::Receiver::recv_batch`], which resolves with up to
//!   [`RECV_BATCH`] queued messages per wake instead of paying one
//!   waker round-trip per record. The batch size equals the
//!   executor's per-poll budget, so a batch is exactly one fair
//!   timeslice; a component that drains a full batch is rescheduled
//!   behind its worker's siblings before it may drain the next.
//!
//! Per-stream FIFO order and the components' fixed drain order are
//! untouched by batching — a batch is just a prefix of the stream —
//! so sort-record determinism is preserved verbatim. The no-lost-wake
//! argument (a parked consumer always has a wake in flight or nothing
//! to read) lives with the protocol in [`chan`]; the system-level
//! no-deadlock argument under coalesced wakeups is in [`crate::sched`].
//!
//! # Yield-on-empty-input
//!
//! Component bodies never call the blocking `recv()`; they await
//! batches (or, for multi-input components, [`SelectReady`]).
//! Under the default [`crate::sched::ThreadPerComponent`] executor the
//! await parks the component's dedicated OS thread — the seed's
//! behaviour, bit for bit. Under a
//! [`crate::sched::WorkStealingPool`] the await *yields the worker*:
//! the component's state machine suspends, the stream registers the
//! task's waker, and the send path reschedules the component when data
//! (or end-of-stream) arrives. This is what lets thousands of
//! dynamically unfolded components share a handful of OS threads.
//! Senders on unbounded edges never wait; on bounded edges a *data*
//! producer may additionally park awaiting credit — but every edge a
//! merger drains from is exempt from bounding, so the deterministic
//! merger's fixed drain order cannot be gated by a parked upstream;
//! the full argument lives in the [`crate::sched`] module docs.

pub mod chan;

pub use chan::{set_poll_budget, RECV_BATCH};

use snet_types::Record;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// A message travelling on a stream.
// Records carry their values inline (the PR 4 allocation-free record
// representation), so the data variant is a couple of hundred bytes
// moved by memcpy. Boxing it to shrink the enum would reintroduce the
// very per-record heap allocation the representation removed.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A data record.
    Rec(Record),
    /// A sort record of a deterministic combinator at nesting depth
    /// `level`; `counter` is the input-record index within that scope.
    Sort { level: u32, counter: u64 },
}

/// Stream endpoints (unbounded by default; see module docs).
pub type Sender = chan::Sender<Msg>;
pub type Receiver = chan::Receiver<Msg>;

/// Creates a new (unbounded) stream.
pub fn stream() -> (Sender, Receiver) {
    chan::channel()
}

/// Creates a stream with a capacity bound on its data plane: records
/// route through the credit-gated `feed` paths, sort records through
/// the exempt `send` path (see module docs and [`chan`]).
pub fn stream_bounded(cap: usize, stats: Option<chan::EdgeStats>) -> (Sender, Receiver) {
    chan::channel_cfg(cap, stats)
}

/// Publishes a mixed record/sort buffer to `tx`, draining `buf`:
/// records go through the credit gate (awaiting capacity on a bounded
/// edge), sort records through the ungated `send` path — the
/// det-merge exemption, so a sort broadcast never waits behind a full
/// edge. Each maximal run of records is published with one credit
/// acquisition and one producer-role lock per grant
/// ([`chan::Sender::acquire`] + [`chan::Sender::send_each_reserved`]),
/// keeping the bounded path batched like the unbounded one.
///
/// On a disconnected receiver the remainder is dropped and `Err` is
/// returned, matching the `let _ = tx.send(..)` teardown idiom of the
/// component loops.
pub async fn feed_batch(tx: &Sender, buf: &mut Vec<Msg>) -> Result<(), chan::SendError<()>> {
    while !buf.is_empty() {
        if matches!(buf[0], Msg::Sort { .. }) {
            let sort = buf.remove(0);
            if tx.send(sort).is_err() {
                buf.clear();
                return Err(chan::SendError(()));
            }
            continue;
        }
        let run = buf.iter().take_while(|m| matches!(m, Msg::Rec(_))).count();
        let mut sent = 0;
        while sent < run {
            let got = match tx.acquire(run - sent).await {
                Ok(n) => n,
                Err(_) => {
                    buf.clear();
                    return Err(chan::SendError(()));
                }
            };
            if tx.send_each_reserved(buf.drain(..got)).is_err() {
                buf.clear();
                return Err(chan::SendError(()));
            }
            sent += got;
        }
    }
    Ok(())
}

/// Direction of an observed record relative to the observed component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    In,
    Out,
}

/// A source a component can await readiness of without consuming it —
/// the readiness-notification hook multi-input components (mergers)
/// build their select loops on. `Ready` means the next `try_recv`
/// returns without blocking: a message is queued or the stream has
/// disconnected.
pub trait ReadySource: Sync {
    fn poll_source(&self, cx: &mut Context<'_>) -> Poll<()>;
}

impl<T: Send> ReadySource for chan::Receiver<T> {
    fn poll_source(&self, cx: &mut Context<'_>) -> Poll<()> {
        self.poll_ready(cx)
    }
}

/// Future resolving to the index of the first ready source, scanning
/// in rotation from `start` (callers advance `start` across awaits so
/// no source starves — the cooperative rendering of a blocking
/// multi-channel select).
///
/// Sources that report `Pending` register the awaiting task's waker;
/// a wake from a source other than the one eventually consumed is
/// spurious and simply causes a re-poll.
pub struct SelectReady<'a> {
    pub sources: Vec<&'a dyn ReadySource>,
    pub start: usize,
}

impl Future for SelectReady<'_> {
    type Output = usize;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        let n = self.sources.len();
        debug_assert!(n > 0, "SelectReady over zero sources never resolves");
        for off in 0..n {
            let i = (self.start + off) % n;
            if self.sources[i].poll_source(cx).is_ready() {
                return Poll::Ready(i);
            }
        }
        Poll::Pending
    }
}

/// The record loop shared by every single-input component (boxes,
/// filters, dispatchers, guards, stampers): drains batches from
/// `input` — up to [`RECV_BATCH`] messages per wake, one fair
/// timeslice — and applies `f` to each message in stream order, until
/// end-of-stream. Batched delivery lives here so its semantics
/// (batch sizing, the in-place `recv_each` contract, EOS handling)
/// have one definition instead of one per component.
///
/// Delivery is **in place** ([`chan::Receiver::recv_each`]): each
/// message is copied once, queue slot → `f`'s argument, with no
/// intermediate batch buffer. Records travel by value and are a
/// couple of cache lines wide, so the buffer round-trip the previous
/// `recv_batch` loop paid was a second full copy of every record plus
/// a `RECV_BATCH × size_of::<Msg>()` working set per component.
pub async fn for_each_msg(input: Receiver, mut f: impl FnMut(Msg)) {
    while input.recv_each(RECV_BATCH, &mut f).await > 0 {}
}

/// Cooperative yield: resolves on its second poll after an immediate
/// self-wake. Components that consume outside the budgeted `poll_*`
/// paths (the mergers' greedy `try_recv` bursts) await this every
/// [`RECV_BATCH`] messages so a long drain cannot monopolise a pool
/// worker.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// A stream observer: "debugging the concurrent behaviour becomes
/// rather straightforward as all streams can be observed individually"
/// (paper, Section 1). Observers are called synchronously from the
/// component thread with the component's path, the direction, and the
/// record. The path `&str` borrows the component's interned
/// [`crate::path::CompPath`] rendering — handing it to an observer
/// allocates nothing.
pub type Observer = Arc<dyn Fn(&str, Dir, &Record) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Record;

    #[test]
    fn stream_carries_records_and_sorts() {
        let (tx, rx) = stream();
        tx.send(Msg::Rec(Record::build().tag("k", 1).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 7,
        })
        .unwrap();
        drop(tx);
        assert!(matches!(rx.recv().unwrap(), Msg::Rec(_)));
        assert_eq!(
            rx.recv().unwrap(),
            Msg::Sort {
                level: 0,
                counter: 7
            }
        );
        // Disconnection is end-of-stream.
        assert!(rx.recv().is_err());
    }

    #[test]
    fn yield_now_self_wakes_once() {
        struct CountWake(std::sync::atomic::AtomicUsize);
        impl std::task::Wake for CountWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let inner = Arc::new(CountWake(std::sync::atomic::AtomicUsize::new(0)));
        let waker = std::task::Waker::from(Arc::clone(&inner));
        let mut cx = Context::from_waker(&waker);
        let mut y = yield_now();
        assert_eq!(Pin::new(&mut y).poll(&mut cx), Poll::Pending);
        assert_eq!(inner.0.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(Pin::new(&mut y).poll(&mut cx), Poll::Ready(()));
    }
}
