//! The native stream transport: a channel over lock-free segmented
//! linked chunks, with coalesced consumer wakeups — unbounded by
//! default, optionally credit-bounded (see "Bounded edges" below).
//!
//! Until PR 3 streams rode on the vendored crossbeam shim — a
//! `Mutex<VecDeque>` plus condvar plus a waker list, which charged
//! every record two mutex round-trips on the send side (push + waker
//! drain) and one on the receive side. This module replaces that with
//! the runtime's own queue, designed around how S-Net actually uses
//! streams:
//!
//! * **Streams are point-to-point.** Exactly one component consumes a
//!   stream, so the consumer side needs no multi-consumer arbitration:
//!   the head cursor is plain data owned by the single consumer
//!   (guarded by a debug-grade `cons_busy` flag that turns misuse into
//!   a panic instead of UB).
//! * **Almost every stream has a single producer.** Every data edge —
//!   box output, dispatcher branch, guard tap, merger output — has
//!   exactly one sending component. Producers serialise through a
//!   micro spinlock whose acquisition is a single **uncontended** CAS
//!   on those edges (the SPSC fast path: no spinning, no parking, no
//!   mutex); only cloned senders (the mergers' branch-join control
//!   channels) ever contend, and those carry one message per replica
//!   unfolding, not per record.
//! * **Messages live in segmented chunks.** The queue is a linked
//!   list of fixed-size segments ([`SEG_SIZE`] slots each); a push is
//!   a slot write plus one `Release` store of the slot's ready flag, a
//!   pop is one `Acquire` load plus a move-out. Segments are recycled
//!   by the consumer as it crosses them; reclamation is trivially safe
//!   because a producer only ever holds a pointer to the tail segment,
//!   and the consumer can only exhaust a segment whose successor has
//!   already been installed (see [`Chan::pop`]).
//!
//! # Wakeup coalescing
//!
//! The send path does **not** wake the consumer per message. A single
//! atomic [`Chan::wake_state`] word tracks whether the consumer is
//! parked: senders read it after publishing (one load on the hot
//! path) and only go through the waker when it says `REGISTERED` —
//! i.e. the consumer saw an empty queue and actually went to sleep.
//! A consumer that is running, or that has queued messages, is never
//! woken: it drains batches on its own (see
//! [`Receiver::poll_recv_batch`]).
//!
//! ## Why a lost wake is impossible
//!
//! The hazard: consumer observes "empty", decides to park; a message
//! arrives in between; the sender sees "not parked" and skips the
//! wake; the consumer sleeps on a non-empty queue forever. The
//! protocol closes this window with a **post-registration re-check**:
//!
//! 1. The consumer stores its waker, sets `wake_state = REGISTERED`
//!    (SeqCst), **then re-checks** the queue (and the sender count,
//!    for end-of-stream). Only if the re-check still finds nothing
//!    does it return `Pending`.
//! 2. A sender publishes its message (slot-ready store), then — after
//!    a SeqCst fence — loads `wake_state`.
//!
//! Order the two SeqCst edges however the race falls: if the sender's
//! `wake_state` load precedes the consumer's `REGISTERED` store in
//! the total order, the message publish precedes the consumer's
//! re-check, so the re-check sees the message and the consumer does
//! not park. If it follows, the sender reads `REGISTERED` and wakes.
//! There is no third interleaving, so a parked consumer always has a
//! wake in flight or no pending input. Disconnection (the last
//! [`Sender`] dropping) runs the same publish-then-check protocol, so
//! end-of-stream cannot be slept through either.
//!
//! # Cooperative poll budget
//!
//! The per-thread poll budget that used to live in the vendored shim
//! moved here (the executor layer is its only customer, and real
//! crossbeam has no pollable surface — ROADMAP already called for
//! this). A work-stealing worker grants each task [`set_poll_budget`]
//! messages per poll; `poll_*` consumption spends it, and at zero the
//! channel reports `Pending` with an immediate self-wake so the task
//! is rescheduled behind its siblings instead of monopolising the
//! worker.
//!
//! # Bounded edges (backpressure)
//!
//! A channel may carry a capacity ([`channel_cfg`]): a `cap` word and
//! a `depth` credit word turn producer/consumer rate mismatches into
//! producer parking instead of an unbounded memory bill. The gate is
//! **opt-in per call path**:
//!
//! * [`Sender::feed`] / [`Sender::try_feed`] / [`Sender::feed_blocking`]
//!   (and the batch pair [`Sender::acquire`] +
//!   [`Sender::send_each_reserved`]) acquire one credit per message —
//!   a CAS raising `depth` below `cap` — and park the producer when
//!   the edge is full. Every pop returns a credit and wakes parked
//!   producers. Data records travel this way on bounded edges.
//! * The plain [`Sender::send`] / [`Sender::send_each`] paths count
//!   depth but **never wait**. Sort records and control traffic go
//!   this way: a deterministic dispatcher's sort broadcast, or a
//!   merger forwarding a sort mid-drain, must not gate on a full
//!   edge, or the fixed-order drain could deadlock (the system-level
//!   no-deadlock argument is in [`crate::sched`]). Depth may
//!   therefore transiently exceed `cap` by the in-flight ungated
//!   traffic; the bound holds exactly for gated traffic.
//!
//! ## Why a parked producer cannot be lost
//!
//! The producer protocol mirrors the consumer's post-registration
//! re-check: the producer stores its waker, sets `prod_parked`
//! (SeqCst), then **re-checks** credit and receiver liveness; only if
//! both still block does it return `Pending`. The consumer decrements
//! `depth` (SeqCst RMW) on every pop of a bounded channel, then reads
//! `prod_parked`. In the SeqCst total order either the producer's
//! re-check observes the freed credit (and retries instead of
//! parking), or its `prod_parked` store precedes the consumer's read
//! (and the consumer wakes it); there is no third interleaving.
//! Receiver drop runs the same publish-then-check shape (`rx_alive`
//! store, fence, producer wake), so a producer cannot sleep through
//! disconnection either. [`Receiver::exempt`] lifts the capacity and
//! releases every parked producer — mergers exempt their branch
//! inputs at registration so the drain order never gates upstream.

use crate::metrics::Counter;
use parking_lot::Mutex;
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::future::Future;
use std::mem::MaybeUninit;
use std::pin::Pin;
use std::ptr;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Slots per segment. 32 keeps a segment (with the `Msg` payload)
/// within a few cache lines while amortising the allocation across
/// enough records that steady-state throughput never sees it.
const SEG_SIZE: usize = 32;

/// Messages a component may drain per batch — deliberately equal to
/// the executor's per-poll budget so one batch is exactly one fair
/// timeslice (see [`crate::sched`]).
pub const RECV_BATCH: usize = 128;

thread_local! {
    /// Cooperative poll budget for the current thread. `u32::MAX`
    /// means unlimited (blocking consumers, `block_on` executors).
    static POLL_BUDGET: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Sets the current thread's cooperative poll budget. Executors call
/// this around each task poll; ordinary blocking threads never need
/// to.
pub fn set_poll_budget(n: u32) {
    POLL_BUDGET.with(|b| b.set(n));
}

/// Spends one unit of budget. Returns `false` when exhausted (the
/// caller must yield).
fn charge_budget() -> bool {
    POLL_BUDGET.with(|b| {
        let v = b.get();
        if v == 0 {
            false
        } else {
            if v != u32::MAX {
                b.set(v - 1);
            }
            true
        }
    })
}

// ---------------------------------------------------------------------------
// Segments
// ---------------------------------------------------------------------------

struct Slot<T> {
    ready: AtomicBool,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Seg<T> {
    slots: [Slot<T>; SEG_SIZE],
    next: AtomicPtr<Seg<T>>,
}

impl<T> Seg<T> {
    fn alloc() -> *mut Seg<T> {
        Box::into_raw(Box::new(Seg {
            slots: std::array::from_fn(|_| Slot {
                ready: AtomicBool::new(false),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            }),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// Producer cursor: the tail segment and the next free slot in it.
/// Accessed only while holding the producer role (the unique uncloned
/// sender, or the spinlock once cloned).
struct ProdCursor<T> {
    seg: *mut Seg<T>,
    idx: usize,
}

/// Consumer cursor: the head segment and the next unread slot.
/// Accessed only by the single consumer (enforced by `cons_busy`).
struct ConsCursor<T> {
    seg: *mut Seg<T>,
    idx: usize,
}

/// Telemetry handles for one bounded edge, registered by the edge's
/// creator under the owning component's path (see
/// [`crate::ctx::Ctx`]): high-water queue depth and producer credit
/// stalls, each mirrored into a net-global aggregate so operators get
/// one number to alarm on without enumerating edges.
pub struct EdgeStats {
    /// `{path}/stream_depth` — high-water mark of queued messages.
    pub depth: Counter,
    /// `{path}/credit_stalls` — producer park episodes awaiting credit.
    pub stalls: Counter,
    /// `runtime/stream_depth` — net-global high-water mark.
    pub depth_global: Counter,
    /// `runtime/credit_stalls` — net-global stall count.
    pub stalls_global: Counter,
}

impl EdgeStats {
    fn note_depth(&self, d: u64) {
        self.depth.max(d);
        self.depth_global.max(d);
    }

    fn note_stall(&self) {
        self.stalls.inc(1);
        self.stalls_global.inc(1);
    }
}

// Waker handshake states (see module docs).
const WAKER_IDLE: u8 = 0; // no waker registered; consumer is active
const WAKER_REGISTERING: u8 = 1; // consumer is writing the waker cell
const WAKER_REGISTERED: u8 = 2; // consumer parked; senders must wake
const WAKER_WAKING: u8 = 3; // a sender is taking the waker out

/// Field order is load-bearing (`repr(C)`): the first group is every
/// word a per-message `send`/`pop` touches on an unbounded edge — the
/// exact working set the pre-backpressure channel kept on one cache
/// line — and the backpressure machinery sits strictly after it, so
/// the default (unbounded) hot paths never pull the bounded-only
/// fields into cache.
#[repr(C)]
struct Chan<T> {
    // --- Hot line: per-message working set. ---
    // Producer side.
    prod: UnsafeCell<ProdCursor<T>>,
    // Consumer side.
    cons: UnsafeCell<ConsCursor<T>>,
    // Shared.
    waker: UnsafeCell<Option<Waker>>,
    senders: AtomicUsize,
    /// Micro spinlock serialising producers. On a single-producer
    /// stream — every data edge — acquisition never contends: the SPSC
    /// fast path is one uncontended CAS. Only cloned senders (the
    /// mergers' branch-join control channels) ever spin.
    prod_lock: AtomicBool,
    /// Single-consumer guard: turns concurrent consumer misuse into a
    /// panic instead of undefined behaviour.
    cons_busy: AtomicBool,
    rx_alive: AtomicBool,
    wake_state: AtomicU8,
    /// True iff the channel was *created* bounded. Immutable, so the
    /// hot paths of a created-unbounded channel (every seed-default
    /// edge) skip the `cap` atomic entirely — one predictable branch
    /// instead of a shared-cacheline load per message.
    bounded: bool,
    // --- Backpressure (module docs: "Bounded edges"). ---
    /// Capacity in messages; 0 = unbounded (every gate is a no-op).
    /// Only ever lowered to 0 at runtime ([`Receiver::exempt`]), never
    /// raised, so depth accounting cannot underflow.
    cap: AtomicUsize,
    /// Credit word: messages counted in (credit-acquired or pushed
    /// ungated) and not yet popped. Maintained only while bounded.
    depth: AtomicUsize,
    /// True when at least one producer parked awaiting credit.
    prod_parked: AtomicBool,
    /// Wakers of parked producers. Cold: touched only when a bounded
    /// edge actually fills.
    prod_waiters: Mutex<Vec<Waker>>,
    /// Backpressure telemetry, if the edge's creator registered any.
    stats: Option<EdgeStats>,
}

// SAFETY: the UnsafeCell cursors are confined by protocol — `prod` to
// the producer role (unique `!Sync` sender, or spinlock holder), `cons`
// to the single consumer (`cons_busy` guard), `waker` to whoever holds
// the REGISTERING/WAKING state. All cross-thread hand-offs go through
// the atomics above with Acquire/Release (or stronger) ordering.
unsafe impl<T: Send> Send for Chan<T> {}
unsafe impl<T: Send> Sync for Chan<T> {}

impl<T> Chan<T> {
    /// Appends a value. Caller must hold the producer role.
    unsafe fn push(&self, value: T) {
        let p = &mut *self.prod.get();
        if p.idx == SEG_SIZE {
            // Install the successor before moving off the old tail:
            // the consumer frees a segment only after following its
            // `next` pointer, and no producer retains a pointer to a
            // segment it has moved past — which is what makes
            // consumer-side reclamation safe without epochs.
            let next = Seg::alloc();
            (*p.seg).next.store(next, Ordering::Release);
            p.seg = next;
            p.idx = 0;
        }
        let slot = &(*p.seg).slots[p.idx];
        (*slot.val.get()).write(value);
        slot.ready.store(true, Ordering::Release);
        p.idx += 1;
    }

    /// Takes the head message, if one is ready. Caller must hold the
    /// consumer role. Producers publish strictly in slot order, so the
    /// first non-ready slot is an exact emptiness test.
    unsafe fn pop(&self) -> Option<T> {
        let c = &mut *self.cons.get();
        if c.idx == SEG_SIZE {
            let next = (*c.seg).next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            drop(Box::from_raw(c.seg));
            c.seg = next;
            c.idx = 0;
        }
        let slot = &(*c.seg).slots[c.idx];
        if !slot.ready.load(Ordering::Acquire) {
            return None;
        }
        let v = (*slot.val.get()).assume_init_read();
        c.idx += 1;
        if self.bounded && self.cap.load(Ordering::Relaxed) != 0 {
            self.release_credit();
        }
        Some(v)
    }

    /// True when the next `pop` would return a message. Caller must
    /// hold the consumer role. May advance (and free) an exhausted
    /// head segment, but never consumes a slot.
    unsafe fn can_pop(&self) -> bool {
        let c = &mut *self.cons.get();
        loop {
            if c.idx == SEG_SIZE {
                let next = (*c.seg).next.load(Ordering::Acquire);
                if next.is_null() {
                    return false;
                }
                drop(Box::from_raw(c.seg));
                c.seg = next;
                c.idx = 0;
                continue;
            }
            return (*c.seg).slots[c.idx].ready.load(Ordering::Acquire);
        }
    }

    fn lock_cons(&self) -> ConsGuard<'_, T> {
        assert!(
            self.cons_busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            "stream Receiver polled from two threads concurrently — streams are single-consumer"
        );
        ConsGuard { chan: self }
    }

    /// Wakes the consumer iff it is parked (see module docs: the
    /// coalescing point — one load on the hot path, the full waker
    /// dance only on the parked edge).
    fn maybe_wake(&self) {
        if self.wake_state.load(Ordering::SeqCst) != WAKER_REGISTERED {
            return;
        }
        if self
            .wake_state
            .compare_exchange(
                WAKER_REGISTERED,
                WAKER_WAKING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            // SAFETY: WAKING grants exclusive access to the cell.
            let w = unsafe { (*self.waker.get()).take() };
            self.wake_state.store(WAKER_IDLE, Ordering::SeqCst);
            if let Some(w) = w {
                w.wake();
            }
        }
    }

    /// Registers `cx`'s waker for the consumer. Returns `true` when
    /// the post-registration re-check found a message (or EOS) — the
    /// caller must retry popping instead of returning `Pending`.
    fn register(&self, cx: &mut Context<'_>) -> bool {
        // Claim the waker cell.
        loop {
            let s = self.wake_state.load(Ordering::SeqCst);
            match s {
                WAKER_IDLE | WAKER_REGISTERED => {
                    if self
                        .wake_state
                        .compare_exchange(s, WAKER_REGISTERING, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                }
                // A sender is mid-take; its critical section is a few
                // instructions (take + store), so spin it out rather
                // than relying on the in-flight wake targeting *this*
                // waker (the registration may have changed tasks).
                WAKER_WAKING => std::hint::spin_loop(),
                _ => panic!("stream Receiver polled from two threads concurrently"),
            }
        }
        // SAFETY: REGISTERING grants exclusive access to the cell.
        unsafe { *self.waker.get() = Some(cx.waker().clone()) };
        self.wake_state.store(WAKER_REGISTERED, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // The load-bearing re-check (module docs: "why a lost wake is
        // impossible").
        let visible = {
            let _g = self.lock_cons();
            (unsafe { self.can_pop() }) || self.senders.load(Ordering::SeqCst) == 0
        };
        if visible {
            // Deregister and consume inline, unless a sender already
            // claimed the waker — then a wake is in flight and
            // `Pending` is safe too.
            if self
                .wake_state
                .compare_exchange(
                    WAKER_REGISTERED,
                    WAKER_REGISTERING,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                unsafe { (*self.waker.get()).take() };
                self.wake_state.store(WAKER_IDLE, Ordering::SeqCst);
                return true;
            }
        }
        false
    }

    // --- Backpressure (module docs: "Bounded edges") ----------------

    /// Claims up to `want` credits. Returns how many were claimed:
    /// `want` on an unbounded channel (one capacity load, nothing
    /// else), `0` when the edge is full.
    fn try_acquire(&self, want: usize) -> usize {
        let cap = self.cap.load(Ordering::Relaxed);
        if cap == 0 {
            return want;
        }
        let mut d = self.depth.load(Ordering::Relaxed);
        loop {
            if d >= cap {
                return 0;
            }
            let take = want.min(cap - d);
            match self
                .depth
                .compare_exchange_weak(d, d + take, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => {
                    if let Some(s) = &self.stats {
                        s.note_depth((d + take) as u64);
                    }
                    return take;
                }
                Err(cur) => d = cur,
            }
        }
    }

    /// Records `n` un-gated pushes (plain `send` paths: sorts and
    /// control traffic). Never waits — depth may transiently exceed
    /// the capacity, which is exactly the exemption. Must run
    /// **before** the pushes so a racing pop cannot decrement a count
    /// that was never added.
    #[inline(always)]
    fn count_ungated(&self, n: usize) {
        if !self.bounded || n == 0 || self.cap.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.count_ungated_slow(n);
    }

    /// The bounded-edge half of [`Chan::count_ungated`], kept out of
    /// line so the unbounded send path pays one predictable branch.
    #[cold]
    fn count_ungated_slow(&self, n: usize) {
        let d = self.depth.fetch_add(n, Ordering::SeqCst) + n;
        if let Some(s) = &self.stats {
            s.note_depth(d as u64);
        }
    }

    /// True when a gated send could currently proceed — the parked
    /// producer's re-check.
    fn has_credit(&self) -> bool {
        let cap = self.cap.load(Ordering::SeqCst);
        cap == 0 || self.depth.load(Ordering::SeqCst) < cap
    }

    /// Returns one message's credit and, when that opens the edge,
    /// wakes parked producers. Called by every pop of a bounded
    /// channel.
    fn release_credit(&self) {
        let cap = self.cap.load(Ordering::Relaxed);
        let new = self.depth.fetch_sub(1, Ordering::SeqCst) - 1;
        // `cap` may have raced to 0 (exempt): `new < 0` is vacuously
        // false, and `exempt` itself already woke everyone.
        if new < cap {
            self.wake_producers();
        }
    }

    /// Parks `w` as a producer awaiting credit. The caller must
    /// re-check credit and receiver liveness *after* this returns —
    /// the SeqCst store below pairs with the consumer's depth
    /// decrement so a freed credit cannot be slept through.
    fn park_producer(&self, w: &Waker) {
        {
            let mut q = self.prod_waiters.lock();
            if !q.iter().any(|e| e.will_wake(w)) {
                q.push(w.clone());
            }
        }
        self.prod_parked.store(true, Ordering::SeqCst);
    }

    /// Wakes every parked producer (credit released, capacity lifted,
    /// or receiver gone). Waking all of them for one freed credit is a
    /// deliberate simplification: they re-race for the credit and
    /// losers re-park; bounded data edges are single-producer in
    /// practice, so the herd is size one.
    fn wake_producers(&self) {
        if self.prod_parked.load(Ordering::SeqCst) && self.prod_parked.swap(false, Ordering::SeqCst)
        {
            let wakers: Vec<Waker> = std::mem::take(&mut *self.prod_waiters.lock());
            for w in wakers {
                w.wake();
            }
        }
    }
}

impl<T> Drop for Chan<T> {
    fn drop(&mut self) {
        // Exclusive access: both endpoints are gone. Producers publish
        // in order, so within each segment the initialised slots are a
        // ready-flagged prefix (from the consumer cursor onward).
        unsafe {
            let c = &mut *self.cons.get();
            let mut seg = c.seg;
            let mut idx = c.idx;
            while !seg.is_null() {
                let slots = std::ptr::addr_of!((*seg).slots);
                for i in idx..SEG_SIZE {
                    let slot = &(*slots)[i];
                    if !slot.ready.load(Ordering::Acquire) {
                        break;
                    }
                    (*slot.val.get()).assume_init_drop();
                }
                let next = (*seg).next.load(Ordering::Acquire);
                drop(Box::from_raw(seg));
                seg = next;
                idx = 0;
            }
        }
    }
}

struct ConsGuard<'a, T> {
    chan: &'a Chan<T>,
}

impl<T> Drop for ConsGuard<'_, T> {
    fn drop(&mut self) {
        self.chan.cons_busy.store(false, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Public endpoints
// ---------------------------------------------------------------------------

/// Creates an unbounded native channel.
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    channel_cfg(0, None)
}

/// Creates a native channel with an explicit capacity (`0` =
/// unbounded) and optional backpressure telemetry. The capacity gates
/// only the credit paths ([`Sender::feed`] and friends); the plain
/// [`Sender::send`] path never waits — the sort-record and
/// control-traffic exemption the no-deadlock argument rests on (see
/// module docs).
pub fn channel_cfg<T: Send>(cap: usize, stats: Option<EdgeStats>) -> (Sender<T>, Receiver<T>) {
    let seg = Seg::alloc();
    let chan = Arc::new(Chan {
        prod: UnsafeCell::new(ProdCursor { seg, idx: 0 }),
        prod_lock: AtomicBool::new(false),
        cons: UnsafeCell::new(ConsCursor { seg, idx: 0 }),
        cons_busy: AtomicBool::new(false),
        senders: AtomicUsize::new(1),
        rx_alive: AtomicBool::new(true),
        wake_state: AtomicU8::new(WAKER_IDLE),
        waker: UnsafeCell::new(None),
        bounded: cap != 0,
        cap: AtomicUsize::new(cap),
        depth: AtomicUsize::new(0),
        prod_parked: AtomicBool::new(false),
        prod_waiters: Mutex::new(Vec::new()),
        stats,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half; cloneable. Producers serialise through the channel's
/// micro spinlock — uncontended (a single CAS) on every
/// single-producer stream, which is every data edge of a network.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half: the single consumer of a stream. Not cloneable.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// The message could not be delivered: the receiver is gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected stream")
    }
}

/// Why a non-blocking (or deadline-bounded) credit-gated send failed.
/// The undelivered message is returned either way.
pub enum TryFeedError<T> {
    /// No credit within the allowed wait: the edge is full.
    Full(T),
    /// The receiver is gone.
    Disconnected(T),
}

impl<T> fmt::Debug for TryFeedError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryFeedError::Full(_) => write!(f, "TryFeedError::Full(..)"),
            TryFeedError::Disconnected(_) => write!(f, "TryFeedError::Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TryFeedError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryFeedError::Full(_) => write!(f, "stream is at capacity"),
            TryFeedError::Disconnected(_) => write!(f, "sending on a disconnected stream"),
        }
    }
}

/// The stream is empty and all senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected stream")
    }
}

/// Why `try_recv` returned nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// RAII holder of the producer role: releases the spinlock on drop,
/// so a panic inside the critical section (e.g. a caller-supplied
/// `send_each` iterator) unwinds cleanly instead of wedging every
/// later sender in the acquisition spin loop.
struct ProdGuard<'a, T> {
    chan: &'a Chan<T>,
}

impl<T> Chan<T> {
    fn lock_prod(&self) -> ProdGuard<'_, T> {
        while self
            .prod_lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        ProdGuard { chan: self }
    }
}

impl<T> Drop for ProdGuard<'_, T> {
    fn drop(&mut self) {
        self.chan.prod_lock.store(false, Ordering::Release);
    }
}

impl<T: Send> Sender<T> {
    /// Delivers a message: one uncontended CAS (the producer role), a
    /// slot write, one `Release` store, and one `SeqCst` load of the
    /// consumer's park state — no mutex, no allocation outside segment
    /// boundaries, and no waker traffic unless the consumer is parked.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let chan = &*self.chan;
        if !chan.rx_alive.load(Ordering::Acquire) {
            return Err(SendError(value));
        }
        chan.count_ungated(1);
        let guard = chan.lock_prod();
        // SAFETY: the guard is the producer role.
        unsafe { chan.push(value) };
        drop(guard);
        fence(Ordering::SeqCst);
        chan.maybe_wake();
        Ok(())
    }

    /// Delivers a run of messages with **one** producer-role
    /// acquisition, one fence and one park-state check for the whole
    /// run — the batch analogue of [`Sender::send`], for producers
    /// that already hold their output in order (the fused pipeline's
    /// tail). The no-lost-wake argument is unchanged: the run is a
    /// single publish, fully ordered before the single check, so a
    /// consumer that parked at any point during it is observed and
    /// woken. The producer role is held across the iterator (a panic
    /// in it releases the role cleanly via the guard, dropping the
    /// unsent remainder), so other senders of a *cloned* sender stall
    /// until the run completes; data edges are single-producer, and
    /// buffer drains — the intended callers — never run user code.
    ///
    /// Returns how many messages were delivered (0 with `Err` when
    /// the receiver is gone — the messages are dropped, matching the
    /// teardown semantics every component applies to `send` results).
    pub fn send_each(&self, values: impl IntoIterator<Item = T>) -> Result<usize, SendError<()>> {
        let chan = &*self.chan;
        if !chan.rx_alive.load(Ordering::Acquire) {
            return Err(SendError(()));
        }
        let guard = chan.lock_prod();
        let mut n = 0;
        // `bounded` is immutable, so the depth accounting hoists out
        // of the loop for the common unbounded edge.
        // SAFETY: the guard is the producer role.
        if chan.bounded {
            for v in values {
                chan.count_ungated(1);
                unsafe { chan.push(v) };
                n += 1;
            }
        } else {
            for v in values {
                unsafe { chan.push(v) };
                n += 1;
            }
        }
        drop(guard);
        fence(Ordering::SeqCst);
        chan.maybe_wake();
        Ok(n)
    }

    /// [`Sender::send_each`] for credits already held: pushes without
    /// touching the credit word. Callers must have [`Sender::acquire`]d
    /// one credit per message.
    pub fn send_each_reserved(
        &self,
        values: impl IntoIterator<Item = T>,
    ) -> Result<usize, SendError<()>> {
        let chan = &*self.chan;
        if !chan.rx_alive.load(Ordering::Acquire) {
            return Err(SendError(()));
        }
        let guard = chan.lock_prod();
        let mut n = 0;
        // SAFETY: the guard is the producer role.
        for v in values {
            unsafe { chan.push(v) };
            n += 1;
        }
        drop(guard);
        fence(Ordering::SeqCst);
        chan.maybe_wake();
        Ok(n)
    }

    /// Credit-gated send: on a bounded channel, awaits a capacity
    /// credit (parking the task, not the thread); an unbounded channel
    /// resolves immediately — the fast path is [`Sender::send`] plus
    /// one capacity load. See module docs for the no-lost-wake
    /// protocol.
    pub fn feed(&self, value: T) -> Feed<'_, T> {
        Feed {
            tx: self,
            value: Some(value),
            stalled: false,
        }
    }

    /// Non-blocking credit-gated send: `Err(Full)` instead of waiting.
    pub fn try_feed(&self, value: T) -> Result<(), TryFeedError<T>> {
        let chan = &*self.chan;
        if !chan.rx_alive.load(Ordering::Acquire) {
            return Err(TryFeedError::Disconnected(value));
        }
        if chan.try_acquire(1) == 0 {
            return Err(TryFeedError::Full(value));
        }
        let guard = chan.lock_prod();
        // SAFETY: the guard is the producer role.
        unsafe { chan.push(value) };
        drop(guard);
        fence(Ordering::SeqCst);
        chan.maybe_wake();
        Ok(())
    }

    /// Blocking credit-gated send, for driver threads
    /// ([`crate::net::Net::send`] under the `Block` and `Timeout`
    /// overload policies). `deadline` bounds the wait (`Err(Full)` on
    /// expiry, message returned); `None` blocks until credit or
    /// disconnection. Parks the OS thread through the same
    /// park/re-check protocol the async path uses.
    pub fn feed_blocking(
        &self,
        value: T,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), TryFeedError<T>> {
        let chan = &*self.chan;
        let mut stalled = false;
        loop {
            if !chan.rx_alive.load(Ordering::Acquire) {
                return Err(TryFeedError::Disconnected(value));
            }
            if chan.try_acquire(1) > 0 {
                let guard = chan.lock_prod();
                // SAFETY: the guard is the producer role.
                unsafe { chan.push(value) };
                drop(guard);
                fence(Ordering::SeqCst);
                chan.maybe_wake();
                return Ok(());
            }
            if !stalled {
                stalled = true;
                if let Some(s) = &chan.stats {
                    s.note_stall();
                }
            }
            let expired = PARKER.with(|p| {
                let waker = Waker::from(Arc::clone(p));
                chan.park_producer(&waker);
                fence(Ordering::SeqCst);
                // Re-check before sleeping (no lost wake): if a credit
                // appeared or the receiver died, loop around instead.
                if chan.has_credit() || !chan.rx_alive.load(Ordering::SeqCst) {
                    return false;
                }
                while !p.notified.swap(false, Ordering::Acquire) {
                    match deadline {
                        None => std::thread::park(),
                        Some(d) => {
                            let now = std::time::Instant::now();
                            if now >= d {
                                return true;
                            }
                            std::thread::park_timeout(d - now);
                        }
                    }
                }
                false
            });
            if expired {
                return Err(TryFeedError::Full(value));
            }
        }
    }

    /// Awaits up to `want` credits, resolving with how many were
    /// granted (at least one). Pair with
    /// [`Sender::send_each_reserved`] for gated batch publication.
    pub fn acquire(&self, want: usize) -> Acquire<'_, T> {
        Acquire {
            tx: self,
            want,
            stalled: false,
        }
    }

    /// True when this channel was created with a capacity (and it has
    /// not been lifted by [`Receiver::exempt`]).
    pub fn is_bounded(&self) -> bool {
        self.chan.cap.load(Ordering::Relaxed) != 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.chan.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: end-of-stream is an event a parked consumer
            // must observe — same publish-then-check protocol as a
            // send.
            fence(Ordering::SeqCst);
            self.chan.maybe_wake();
        }
    }
}

impl<T: Send> Receiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let chan = &*self.chan;
        let _g = chan.lock_cons();
        // SAFETY: the guard is the consumer role.
        unsafe {
            if let Some(v) = chan.pop() {
                return Ok(v);
            }
            if chan.senders.load(Ordering::SeqCst) == 0 {
                // Messages published before the last sender dropped
                // happen-before the count reaching zero; re-pop.
                if let Some(v) = chan.pop() {
                    return Ok(v);
                }
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    /// Polls for a message without blocking the thread: `Ready` with
    /// the message (or `Err(RecvError)` at end-of-stream), `Pending`
    /// after registering the task's waker. Respects the thread's
    /// cooperative budget: at zero it self-wakes and reports `Pending`
    /// even if a message is queued, forcing a fair yield.
    pub fn poll_recv(&self, cx: &mut Context<'_>) -> Poll<Result<T, RecvError>> {
        let chan = &*self.chan;
        loop {
            {
                let _g = chan.lock_cons();
                // SAFETY: the guard is the consumer role.
                unsafe {
                    if chan.can_pop() {
                        if !charge_budget() {
                            cx.waker().wake_by_ref();
                            return Poll::Pending;
                        }
                        return Poll::Ready(Ok(chan.pop().expect("slot ready")));
                    }
                    if chan.senders.load(Ordering::SeqCst) == 0 {
                        if chan.can_pop() {
                            continue; // raced with a final send
                        }
                        if !charge_budget() {
                            cx.waker().wake_by_ref();
                            return Poll::Pending;
                        }
                        return Poll::Ready(Err(RecvError));
                    }
                }
            }
            if !chan.register(cx) {
                return Poll::Pending;
            }
            // Registration re-check saw traffic: retry the pop.
        }
    }

    /// Like [`Receiver::poll_recv`] but does not consume: `Ready`
    /// means the next `try_recv` returns without blocking (a message,
    /// or disconnection). Used by readiness-select loops that must
    /// decide *which* stream to consume from.
    pub fn poll_ready(&self, cx: &mut Context<'_>) -> Poll<()> {
        let chan = &*self.chan;
        loop {
            {
                let _g = chan.lock_cons();
                // SAFETY: the guard is the consumer role.
                let ready = unsafe { chan.can_pop() } || chan.senders.load(Ordering::SeqCst) == 0;
                if ready {
                    if !charge_budget() {
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                    return Poll::Ready(());
                }
            }
            if !chan.register(cx) {
                return Poll::Pending;
            }
        }
    }

    /// Drains up to `max` queued messages into `buf` (appending), the
    /// batched-delivery primitive behind [`Receiver::recv_batch`].
    /// Resolves `Ready(n)` with `n >= 1` messages **appended by this
    /// call** as soon as at least one is available, `Ready(0)` at
    /// end-of-stream, `Pending` (waker registered) on an empty
    /// connected stream. Anything already in `buf` is left alone and
    /// never counted, so callers may accumulate across awaits. Each
    /// drained message spends one unit of poll budget, so one batch
    /// can never exceed a task's fair timeslice.
    pub fn poll_recv_batch(
        &self,
        cx: &mut Context<'_>,
        buf: &mut Vec<T>,
        max: usize,
    ) -> Poll<usize> {
        let chan = &*self.chan;
        let start = buf.len();
        loop {
            {
                let _g = chan.lock_cons();
                // SAFETY: the guard is the consumer role.
                unsafe {
                    while buf.len() - start < max && chan.can_pop() {
                        if !charge_budget() {
                            if buf.len() == start {
                                // Queued work but no budget: forced
                                // yield, rescheduled behind siblings.
                                cx.waker().wake_by_ref();
                                return Poll::Pending;
                            }
                            break;
                        }
                        buf.push(chan.pop().expect("slot ready"));
                    }
                    if buf.len() > start {
                        return Poll::Ready(buf.len() - start);
                    }
                    // Check disconnect *then* re-check emptiness: a
                    // message published before the last sender dropped
                    // must not be mistaken for EOS.
                    if chan.senders.load(Ordering::SeqCst) == 0 {
                        if chan.can_pop() {
                            continue;
                        }
                        return Poll::Ready(0);
                    }
                }
            }
            if !chan.register(cx) {
                return Poll::Pending;
            }
        }
    }

    /// In-place sibling of [`Receiver::poll_recv_batch`]: delivers up
    /// to `max` queued messages **directly to `f`**, straight out of
    /// the queue slot, with no intermediate batch buffer — each
    /// message is copied exactly once (slot → callback argument). For
    /// message types a couple of cache lines wide (records travel by
    /// value), eliminating the buffer round-trip halves the per-hop
    /// copy traffic and drops a `max × size_of::<T>()` working-set
    /// buffer from every component loop.
    ///
    /// `f` runs while the consumer role is held, which is sound for
    /// component bodies: they are the channel's only consumer and
    /// never re-enter their own input (they only *send* downstream).
    /// Budget, wake and EOS semantics are identical to
    /// `poll_recv_batch`.
    pub fn poll_recv_each(
        &self,
        cx: &mut Context<'_>,
        max: usize,
        f: &mut impl FnMut(T),
    ) -> Poll<usize> {
        let chan = &*self.chan;
        let mut delivered = 0usize;
        loop {
            {
                let _g = chan.lock_cons();
                // SAFETY: the guard is the consumer role.
                unsafe {
                    while delivered < max && chan.can_pop() {
                        if !charge_budget() {
                            if delivered == 0 {
                                // Queued work but no budget: forced
                                // yield, rescheduled behind siblings.
                                cx.waker().wake_by_ref();
                                return Poll::Pending;
                            }
                            break;
                        }
                        f(chan.pop().expect("slot ready"));
                        delivered += 1;
                    }
                    if delivered > 0 {
                        return Poll::Ready(delivered);
                    }
                    // Check disconnect *then* re-check emptiness: a
                    // message published before the last sender dropped
                    // must not be mistaken for EOS.
                    if chan.senders.load(Ordering::SeqCst) == 0 {
                        if chan.can_pop() {
                            continue;
                        }
                        return Poll::Ready(0);
                    }
                }
            }
            if !chan.register(cx) {
                return Poll::Pending;
            }
        }
    }

    /// Future form of [`Receiver::poll_recv_batch`]: awaits at least
    /// one message (appended to `buf`, up to `max` per call),
    /// resolving to the number appended — `0` means end-of-stream.
    pub fn recv_batch<'a>(&'a self, buf: &'a mut Vec<T>, max: usize) -> RecvBatch<'a, T> {
        RecvBatch { rx: self, buf, max }
    }

    /// Future form of [`Receiver::poll_recv_each`]: awaits at least
    /// one message, delivering each to `f` in place; resolves to the
    /// number delivered — `0` means end-of-stream.
    pub fn recv_each<'a, F: FnMut(T)>(&'a self, max: usize, f: &'a mut F) -> RecvEach<'a, T, F> {
        RecvEach { rx: self, max, f }
    }

    /// Future form of blocking receive: resolves with the next message
    /// or `Err(RecvError)` at end-of-stream. Awaiting on an empty
    /// stream parks the *task*, not the thread.
    pub fn recv_async(&self) -> RecvAsync<'_, T> {
        RecvAsync { rx: self }
    }

    /// Blocking receive, for driver threads ([`crate::net::Net::recv`]
    /// and tests). Parks the OS thread through the same registration
    /// protocol the async paths use.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {}
            }
            PARKER.with(|p| {
                let waker = Waker::from(Arc::clone(p));
                let mut cx = Context::from_waker(&waker);
                if !self.chan.register(&mut cx) {
                    while !p.notified.swap(false, Ordering::Acquire) {
                        std::thread::park();
                    }
                }
            });
        }
    }

    /// Blocking iterator until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Lifts the capacity: the channel becomes unbounded and every
    /// parked producer is released. Mergers exempt their branch
    /// inputs at registration — the det-merge drain obligation must
    /// never gate an upstream producer (see [`crate::sched`] for the
    /// system-level no-deadlock argument).
    pub fn exempt(&self) {
        self.chan.cap.store(0, Ordering::SeqCst);
        self.chan.wake_producers();
    }

    /// Messages currently counted against the capacity (always 0 on a
    /// channel created unbounded). Test and telemetry surface.
    pub fn depth(&self) -> usize {
        self.chan.depth.load(Ordering::SeqCst)
    }

    /// The configured capacity; 0 = unbounded.
    pub fn capacity(&self) -> usize {
        self.chan.cap.load(Ordering::SeqCst)
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Senders observe this and fail fast; anything already queued
        // is released when the channel drops.
        self.chan.rx_alive.store(false, Ordering::Release);
        // Producers parked on a full edge must observe the death, not
        // sleep on it (publish-then-check; module docs).
        fence(Ordering::SeqCst);
        self.chan.wake_producers();
    }
}

/// Thread-parking waker backing the blocking [`Receiver::recv`];
/// cached per thread so repeated blocking receives allocate nothing.
struct ThreadParker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

thread_local! {
    static PARKER: Arc<ThreadParker> = Arc::new(ThreadParker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
}

/// Future returned by [`Sender::feed`].
pub struct Feed<'a, T> {
    tx: &'a Sender<T>,
    value: Option<T>,
    stalled: bool,
}

// The fields are never pinned (no self-references); safe to move.
impl<T> Unpin for Feed<'_, T> {}

impl<T: Send> Future for Feed<'_, T> {
    type Output = Result<(), SendError<T>>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let chan = &*this.tx.chan;
        loop {
            if !chan.rx_alive.load(Ordering::Acquire) {
                let v = this.value.take().expect("Feed polled after completion");
                return Poll::Ready(Err(SendError(v)));
            }
            if chan.try_acquire(1) == 0 {
                // Full: park, then re-check, so a credit released (or
                // a receiver dropped) in the window cannot be slept
                // through (module docs: parked-producer protocol).
                chan.park_producer(cx.waker());
                fence(Ordering::SeqCst);
                if chan.try_acquire(1) == 0 {
                    if chan.rx_alive.load(Ordering::SeqCst) {
                        if !this.stalled {
                            this.stalled = true;
                            if let Some(s) = &chan.stats {
                                s.note_stall();
                            }
                        }
                        return Poll::Pending;
                    }
                    continue; // receiver died: report the error
                }
            }
            // One credit held: publish.
            let v = this.value.take().expect("Feed polled after completion");
            let guard = chan.lock_prod();
            // SAFETY: the guard is the producer role.
            unsafe { chan.push(v) };
            drop(guard);
            fence(Ordering::SeqCst);
            chan.maybe_wake();
            return Poll::Ready(Ok(()));
        }
    }
}

/// Future returned by [`Sender::acquire`].
pub struct Acquire<'a, T> {
    tx: &'a Sender<T>,
    want: usize,
    stalled: bool,
}

impl<T> Unpin for Acquire<'_, T> {}

impl<T: Send> Future for Acquire<'_, T> {
    type Output = Result<usize, SendError<()>>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let chan = &*this.tx.chan;
        loop {
            if !chan.rx_alive.load(Ordering::Acquire) {
                return Poll::Ready(Err(SendError(())));
            }
            let got = chan.try_acquire(this.want);
            if got > 0 {
                return Poll::Ready(Ok(got));
            }
            chan.park_producer(cx.waker());
            fence(Ordering::SeqCst);
            let got = chan.try_acquire(this.want);
            if got > 0 {
                return Poll::Ready(Ok(got));
            }
            if chan.rx_alive.load(Ordering::SeqCst) {
                if !this.stalled {
                    this.stalled = true;
                    if let Some(s) = &chan.stats {
                        s.note_stall();
                    }
                }
                return Poll::Pending;
            }
            // Receiver died between checks: loop to report it.
        }
    }
}

/// Future returned by [`Receiver::recv_async`].
pub struct RecvAsync<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T: Send> Future for RecvAsync<'_, T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.rx.poll_recv(cx)
    }
}

/// Future returned by [`Receiver::recv_batch`].
pub struct RecvBatch<'a, T> {
    rx: &'a Receiver<T>,
    buf: &'a mut Vec<T>,
    max: usize,
}

impl<T: Send> Future for RecvBatch<'_, T> {
    type Output = usize;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        let this = self.get_mut();
        this.rx.poll_recv_batch(cx, this.buf, this.max)
    }
}

/// Future returned by [`Receiver::recv_each`].
pub struct RecvEach<'a, T, F> {
    rx: &'a Receiver<T>,
    max: usize,
    f: &'a mut F,
}

impl<T: Send, F: FnMut(T)> Future for RecvEach<'_, T, F> {
    type Output = usize;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        let this = self.get_mut();
        this.rx.poll_recv_each(cx, this.max, this.f)
    }
}

pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T: Send> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T: Send> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_each_preserves_fifo_and_wakes_parked_consumer() {
        // FIFO across batch boundaries (incl. segment crossings: the
        // batch is larger than one segment)...
        let (tx, rx) = channel::<u32>();
        assert_eq!(tx.send_each(0..100).unwrap(), 100);
        tx.send(100).unwrap();
        assert_eq!(tx.send_each(101..110).unwrap(), 9);
        for i in 0..110 {
            assert_eq!(rx.try_recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        // ...and the single post-batch park check wakes a blocked
        // consumer (the no-lost-wake argument for the batched path).
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(tx.send_each(0..5).unwrap(), 5);
        drop(tx);
        assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3, 4]);
        // A dead receiver drops the run.
        let (tx, rx) = channel::<u32>();
        drop(rx);
        assert!(tx.send_each(0..5).is_err());
    }

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = channel();
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        for i in 0..200 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn crosses_many_segment_boundaries() {
        let (tx, rx) = channel();
        for round in 0..10 {
            for i in 0..(SEG_SIZE * 3 + 7) {
                tx.send((round, i)).unwrap();
            }
            for i in 0..(SEG_SIZE * 3 + 7) {
                assert_eq!(rx.recv(), Ok((round, i)));
            }
        }
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = channel::<i32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
        let (tx2, rx2) = channel::<i32>();
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::<i32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(7).unwrap();
        assert_eq!(h.join().unwrap(), Ok(7));
    }

    #[test]
    fn blocking_recv_wakes_on_disconnect() {
        let (tx, rx) = channel::<i32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    /// A counting waker for poll tests.
    struct CountWake(AtomicUsize);

    impl Wake for CountWake {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn count_waker() -> (Arc<CountWake>, Waker) {
        let inner = Arc::new(CountWake(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&inner));
        (inner, waker)
    }

    #[test]
    fn poll_recv_ready_and_pending() {
        let (tx, rx) = channel::<i32>();
        tx.send(42).unwrap();
        let (_w, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(42)));
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
    }

    #[test]
    fn registered_waker_fires_on_send_and_disconnect() {
        let (tx, rx) = channel::<i32>();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        tx.send(9).unwrap();
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(9)));
        // Park again; disconnection must also wake.
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        drop(tx);
        assert_eq!(counts.0.load(Ordering::SeqCst), 2);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Err(RecvError)));
    }

    #[test]
    fn wakeups_are_coalesced_while_consumer_is_active() {
        let (tx, rx) = channel::<i32>();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        // An unparked consumer (no waker registered) is never woken.
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(counts.0.load(Ordering::SeqCst), 0);
        for i in 0..10 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        // A parked consumer is woken exactly once for a whole burst.
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        for i in 0..5 {
            tx.send(100 + i).unwrap();
        }
        assert_eq!(
            counts.0.load(Ordering::SeqCst),
            1,
            "burst into a parked consumer must coalesce to one wake"
        );
        for i in 0..5 {
            assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(100 + i)));
        }
    }

    #[test]
    fn reregistration_does_not_leak_wakes() {
        let (tx, rx) = channel::<i32>();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        for _ in 0..100 {
            assert_eq!(rx.poll_ready(&mut cx), Poll::Pending);
        }
        tx.send(1).unwrap();
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        assert_eq!(rx.poll_ready(&mut cx), Poll::Ready(()));
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn exhausted_budget_forces_yield_with_self_wake() {
        let (tx, rx) = channel::<i32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        set_poll_budget(1);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(1)));
        // Budget spent: a queued message still reports Pending, with
        // an immediate self-wake so the task is rescheduled.
        assert_eq!(rx.poll_recv(&mut cx), Poll::Pending);
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        set_poll_budget(u32::MAX);
        assert_eq!(rx.poll_recv(&mut cx), Poll::Ready(Ok(2)));
    }

    #[test]
    fn batch_drains_up_to_max_and_respects_budget() {
        let (tx, rx) = channel::<i32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let (_c, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        let mut buf = Vec::new();
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 4), Poll::Ready(4));
        assert_eq!(buf, vec![0, 1, 2, 3]);
        buf.clear();
        // Budget caps the batch below `max`.
        set_poll_budget(3);
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 100), Poll::Ready(3));
        assert_eq!(buf, vec![4, 5, 6]);
        buf.clear();
        // Zero budget with queued messages: self-wake + Pending.
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 100), Poll::Pending);
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        set_poll_budget(u32::MAX);
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 100), Poll::Ready(3));
        assert_eq!(buf, vec![7, 8, 9]);
        buf.clear();
        // EOS resolves to 0.
        drop(tx);
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 100), Poll::Ready(0));
    }

    #[test]
    fn batch_counts_only_newly_appended_messages() {
        // Callers may accumulate across awaits: pre-existing buffer
        // contents are never counted, and an empty connected stream
        // stays Pending no matter what the buffer already holds.
        let (tx, rx) = channel::<i32>();
        let (_c, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        let mut buf = vec![999];
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 4), Poll::Pending);
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        // `max` bounds the appended count, not the total length.
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 4), Poll::Ready(4));
        assert_eq!(buf, vec![999, 0, 1, 2, 3]);
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 100), Poll::Ready(6));
        drop(tx);
        // EOS is 0 even with a full buffer in hand.
        assert_eq!(rx.poll_recv_batch(&mut cx, &mut buf, 4), Poll::Ready(0));
        assert_eq!(buf.len(), 11);
    }

    #[test]
    fn cloned_senders_share_the_stream() {
        // Shared (spinlocked) mode: heavy traffic from several
        // producers, every message delivered exactly once.
        let (tx, rx) = channel::<u64>();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(t * 10_000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got.len(), 40_000);
        assert_eq!(got, (0..40_000).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_cross_thread_traffic_with_parking() {
        // Single producer, consumer alternating blocking recv — the
        // hot shape of every data edge. Exercises park/wake races.
        let (tx, rx) = channel::<u64>();
        let h = std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        for i in 0..100_000u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), (0..100_000u64).sum());
    }

    #[test]
    fn bounded_try_feed_and_depth_accounting() {
        let (tx, rx) = channel_cfg::<i32>(2, None);
        assert!(tx.is_bounded());
        assert_eq!(rx.capacity(), 2);
        tx.try_feed(1).unwrap();
        tx.try_feed(2).unwrap();
        assert_eq!(rx.depth(), 2);
        assert!(matches!(tx.try_feed(3), Err(TryFeedError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.depth(), 1);
        tx.try_feed(3).unwrap();
        assert!(matches!(tx.try_feed(4), Err(TryFeedError::Full(4))));
        drop(rx);
        assert!(matches!(tx.try_feed(5), Err(TryFeedError::Disconnected(5))));
    }

    #[test]
    fn plain_send_is_exempt_from_the_bound() {
        // Sorts and control traffic go through `send`: counted against
        // depth, never gated.
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(1).unwrap();
        tx.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(rx.depth(), 3);
        assert!(matches!(tx.try_feed(4), Err(TryFeedError::Full(_))));
        for want in [1, 2, 3] {
            assert_eq!(rx.recv(), Ok(want));
        }
        assert_eq!(rx.depth(), 0);
        tx.try_feed(4).unwrap();
    }

    #[test]
    fn feed_blocking_waits_for_credit() {
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(0).unwrap();
        let h = std::thread::spawn(move || {
            tx.feed_blocking(1, None).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(0));
        h.join().unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn feed_blocking_deadline_expires() {
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(0).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(40);
        assert!(matches!(
            tx.feed_blocking(1, Some(deadline)),
            Err(TryFeedError::Full(1))
        ));
        drop(rx);
    }

    #[test]
    fn feed_blocking_errors_when_receiver_drops_midwait() {
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(0).unwrap();
        let h = std::thread::spawn(move || tx.feed_blocking(1, None));
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(rx);
        assert!(matches!(
            h.join().unwrap(),
            Err(TryFeedError::Disconnected(1))
        ));
    }

    #[test]
    fn feed_future_parks_and_wakes_on_pop() {
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(0).unwrap();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = tx.feed(1);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert_eq!(counts.0.load(Ordering::SeqCst), 0);
        // The pop releases a credit and wakes the parked producer.
        assert_eq!(rx.try_recv(), Ok(0));
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(Ok(()))
        ));
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn exempt_lifts_bound_and_wakes_producers() {
        let (tx, rx) = channel_cfg::<i32>(1, None);
        tx.try_feed(0).unwrap();
        let (counts, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = tx.feed(1);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        rx.exempt();
        assert_eq!(counts.0.load(Ordering::SeqCst), 1);
        assert!(matches!(
            Pin::new(&mut fut).poll(&mut cx),
            Poll::Ready(Ok(()))
        ));
        assert!(!tx.is_bounded());
        // Unbounded from here on: feeds no longer gate.
        for i in 2..100 {
            tx.try_feed(i).unwrap();
        }
    }

    #[test]
    fn acquire_and_send_each_reserved_batch() {
        let (tx, rx) = channel_cfg::<u32>(8, None);
        let (_c, waker) = count_waker();
        let mut cx = Context::from_waker(&waker);
        let mut fut = tx.acquire(5);
        let got = match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(Ok(n)) => n,
            other => panic!("acquire: {other:?}"),
        };
        assert_eq!(got, 5);
        assert_eq!(tx.send_each_reserved(0..5).unwrap(), 5);
        assert_eq!(rx.depth(), 5);
        // Partial grant when only part of the request fits.
        let mut fut = tx.acquire(10);
        let got = match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(Ok(n)) => n,
            other => panic!("acquire: {other:?}"),
        };
        assert_eq!(got, 3);
        assert_eq!(tx.send_each_reserved(5..8).unwrap(), 3);
        // Full: a further acquire parks.
        let mut fut = tx.acquire(1);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        for i in 0..8 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.depth(), 0);
    }

    #[test]
    fn bounded_spsc_stress_holds_depth_bound() {
        let (tx, rx) = channel_cfg::<u64>(4, None);
        let h = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut hwm = 0usize;
            loop {
                // Gated traffic only: depth never exceeds the bound.
                hwm = hwm.max(rx.depth());
                match rx.recv() {
                    Ok(v) => sum += v,
                    Err(_) => break,
                }
            }
            (sum, hwm)
        });
        for i in 0..10_000u64 {
            tx.feed_blocking(i, None).unwrap();
        }
        drop(tx);
        let (sum, hwm) = h.join().unwrap();
        assert_eq!(sum, (0..10_000u64).sum());
        assert!(hwm <= 4, "depth {hwm} exceeded bound 4");
    }

    #[test]
    fn edge_stats_record_depth_and_stalls() {
        let m = crate::metrics::Metrics::new();
        let stats = EdgeStats {
            depth: m.handle("edge/stream_depth"),
            stalls: m.handle("edge/credit_stalls"),
            depth_global: m.handle("runtime/stream_depth"),
            stalls_global: m.handle("runtime/credit_stalls"),
        };
        let (tx, rx) = channel_cfg::<i32>(2, Some(stats));
        tx.try_feed(1).unwrap();
        tx.try_feed(2).unwrap();
        assert_eq!(m.get("edge/stream_depth"), 2);
        assert_eq!(m.get("runtime/stream_depth"), 2);
        assert!(matches!(tx.try_feed(3), Err(TryFeedError::Full(_))));
        // `try_feed` never parks, so no stall yet; a deadline-bounded
        // blocking feed parks exactly once.
        assert_eq!(m.get("edge/credit_stalls"), 0);
        let _ = tx.feed_blocking(3, Some(std::time::Instant::now()));
        assert_eq!(m.get("edge/credit_stalls"), 1);
        assert_eq!(m.get("runtime/credit_stalls"), 1);
        drop(rx);
    }

    #[test]
    fn values_dropped_cleanly_when_channel_dropped_mid_stream() {
        // Arc payloads left in the queue must be released by Chan::drop.
        let payload = Arc::new(());
        let (tx, rx) = channel::<Arc<()>>();
        for _ in 0..(SEG_SIZE * 2 + 5) {
            tx.send(Arc::clone(&payload)).unwrap();
        }
        rx.recv().unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
