//! Stream merging — the output side of `||`/`|`, `!!`/`!` and `**`/`*`.
//!
//! "The parallel combinator as well as the serial and parallel
//! replicators merge the output streams of the subnetworks
//! non-deterministically, i.e., any record produced proceeds as soon
//! as possible. ... In case the order of the records in a stream is
//! essential ... S-Net provides deterministic versions of all (but the
//! serial) combinators" (paper, Section 4).
//!
//! Both flavours are built on **sort records** (the implementation
//! technique of the original S-Net runtime): a deterministic dispatcher
//! broadcasts `Sort { level, counter }` to *all* branches after routing
//! each data record, so each branch's stream is partitioned into
//! *rounds* — round `c` holds exactly the outputs caused by input
//! record `c` (only the branch that received the record has any).
//!
//! * [`MergeMode::Det`] drains branches **in join order, round by
//!   round**: all of round 0, then round 1, ... Output order therefore
//!   equals input order regardless of which branch was faster.
//! * [`MergeMode::NonDet`] forwards data as it becomes available, but
//!   still treats sort records of *enclosing* deterministic scopes as
//!   barriers: once a branch delivers such a sort, no further data is
//!   read from it until every branch has reached the same sort, which
//!   is then forwarded exactly once. This is what lets a
//!   non-deterministic subnetwork live inside a deterministic scope
//!   without breaking the outer ordering guarantee.
//!
//! Branches may join dynamically (replicators unfold on demand). A
//! joining branch carries a *watermark* — the number of sorts per level
//! already broadcast before it joined — so the merger knows which sorts
//! the branch will never deliver and does not wait for them.
//!
//! Sort records are a native [`Msg`] variant, so detecting one is an
//! enum-discriminant test, and *record* comparisons (the det-output
//! byte-identity checks this module's guarantees are verified by)
//! short-circuit on the interned shape id before touching any value —
//! no per-record label probing anywhere on the merge path.
//!
//! # Bounded edges: branch inputs are exempt
//!
//! When the network runs with bounded data edges (see
//! [`crate::stream`]), every stream a merger drains from is **exempted
//! from its bound** at the moment it becomes a branch
//! ([`Branch::from_spec`]). The merger consumes branches in an order
//! its producers cannot observe — fixed rounds in det mode, sort
//! barriers in non-det mode — so a credit-gated producer on a branch
//! the merger is *not* currently draining could park forever: producer
//! waits for credit, merger waits for the round's sort from that very
//! producer. Exemption removes the wait-for edge and restores the
//! unbounded-drain guarantee the round protocol's termination argument
//! assumes; queue growth on branch edges stays bounded *upstream*
//! instead, because the dispatcher that feeds every branch sends data
//! through its own bounded edge. The merger's *output* stays gated
//! (data goes through the credit-aware `feed` path; resolved sorts use
//! the ungated `send`). The system-wide no-deadlock argument is in
//! [`crate::sched`].

use crate::ctx::Ctx;
use crate::path::CompPath;
use crate::stream::chan::{self, TryRecvError};
use crate::stream::{
    feed_batch, yield_now, Msg, ReadySource, Receiver, SelectReady, Sender, RECV_BATCH,
};
use snet_types::Record;
use std::collections::HashMap;
use std::sync::Arc;

/// Sorts-per-level already broadcast when a branch joins: the branch
/// will only ever deliver `Sort { level, counter }` with
/// `counter >= watermark[level]`.
pub type Watermark = HashMap<u32, u64>;

/// A branch handed to the merger, either at construction or later via
/// the control channel.
pub struct BranchSpec {
    pub rx: Receiver,
    pub watermark: Watermark,
}

impl BranchSpec {
    pub fn new(rx: Receiver) -> BranchSpec {
        BranchSpec {
            rx,
            watermark: Watermark::new(),
        }
    }
}

/// The fused-fan merge tail: where an unfused lane publishes to a
/// per-branch channel for a merger task to drain, a fused lane's
/// emissions land here — an in-component buffer flushed straight to
/// the combinator's output edge, bypassing both the branch channel
/// and the merger wakeup. Legal because the fused-fan driver (see
/// [`crate::fused`]) runs each record through its lane synchronously
/// in input order: the "merge" degenerates to a concatenation in
/// arrival order, which for det scopes *is* input order — no
/// per-branch round bookkeeping, and no sort records between lanes.
/// Outer-scope sorts are pushed at their stream position, exactly
/// where the unfused merger would forward them once per round.
pub(crate) struct FusedTail {
    out: Sender,
    buf: Vec<Msg>,
    gated: bool,
}

impl FusedTail {
    pub(crate) fn new(out: Sender) -> FusedTail {
        let gated = out.is_bounded();
        FusedTail {
            out,
            buf: Vec::new(),
            gated,
        }
    }

    pub(crate) fn push(&mut self, rec: Record) {
        self.buf.push(Msg::Rec(rec));
    }

    pub(crate) fn extend(&mut self, recs: impl Iterator<Item = Record>) {
        self.buf.extend(recs.map(Msg::Rec));
    }

    pub(crate) fn push_sort(&mut self, level: u32, counter: u64) {
        self.buf.push(Msg::Sort { level, counter });
    }

    /// Publishes everything buffered, in order: records go through
    /// the credit gate when the output edge is bounded (a full edge
    /// parks the fused component, as it would park the unfused
    /// merger), sorts stay ungated. `Err` means downstream
    /// disconnected — teardown, like every component's send failure.
    pub(crate) async fn flush(&mut self) -> Result<(), ()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.gated {
            feed_batch(&self.out, &mut self.buf).await.map_err(|_| ())
        } else {
            self.out
                .send_each(self.buf.drain(..))
                .map(|_| ())
                .map_err(|_| ())
        }
    }
}

/// Merge flavour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeMode {
    /// Forward-as-available; enclosing-scope sorts act as barriers.
    NonDet,
    /// Round-ordered merging for the deterministic combinators; sorts
    /// of `level` are consumed here, outer sorts are forwarded.
    Det { level: u32 },
}

struct Branch {
    rx: Receiver,
    watermark: Watermark,
    /// A delivered sort this branch is parked on (non-det mode).
    blocked: Option<(u32, u64)>,
    done: bool,
}

impl Branch {
    /// Adopts a spec as a live branch, lifting any capacity bound from
    /// the branch stream first: merger-drained edges must never gate
    /// their producer (see module docs, *branch inputs are exempt*).
    fn from_spec(spec: BranchSpec) -> Branch {
        spec.rx.exempt();
        Branch {
            rx: spec.rx,
            watermark: spec.watermark,
            blocked: None,
            done: false,
        }
    }

    fn exempt(&self, level: u32, counter: u64) -> bool {
        counter < self.watermark.get(&level).copied().unwrap_or(0)
    }
}

/// Spawns a merger over an initial set of branches plus a control
/// channel for late joiners, writing merged output to `out`.
///
/// The merger terminates (dropping `out`) when every branch has
/// disconnected and the control channel is closed.
pub fn spawn_merge(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    mode: MergeMode,
    initial: Vec<BranchSpec>,
    control: chan::Receiver<BranchSpec>,
    out: Sender,
) {
    let path = path.into().child("merge");
    ctx.spawn(path.as_str(), async move {
        match mode {
            MergeMode::NonDet => run_nondet(initial, control, out).await,
            MergeMode::Det { level } => run_det(level, initial, control, out).await,
        }
    });
}

// ---------------------------------------------------------------------------
// Non-deterministic merge
// ---------------------------------------------------------------------------

async fn run_nondet(initial: Vec<BranchSpec>, control: chan::Receiver<BranchSpec>, out: Sender) {
    let mut branches: Vec<Branch> = initial.into_iter().map(Branch::from_spec).collect();
    let mut control_open = true;
    // Whether the merged output is credit-gated (data records go
    // through `feed`; sorts always take the ungated `send`).
    let gated = out.is_bounded();
    // Sorts already forwarded, per level (counters are contiguous and
    // increasing at any point of the network, so a high-water mark is
    // an exact dedup).
    let mut forwarded: HashMap<u32, u64> = HashMap::new();
    // Rotating scan start so no source starves across awaits.
    let mut rotate: usize = 0;

    loop {
        // Fold in any late joiners *before* resolving barriers: a
        // branch registered by the dispatcher before it broadcast a
        // sort is guaranteed to be visible here by the time every
        // older branch has delivered that sort, and resolving without
        // it could emit the sort ahead of the newcomer's data.
        while control_open {
            match control.try_recv() {
                Ok(spec) => branches.push(Branch::from_spec(spec)),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    control_open = false;
                }
            }
        }
        // Resolve any barrier that has become satisfiable.
        resolve_barriers(&mut branches, &mut forwarded, &out);

        if !control_open && branches.iter().all(|b| b.done) {
            return; // dropping `out` = EOS
        }

        // Await readiness of the control channel and all readable
        // branches. A branch whose watermark says sorts up to w[L]
        // were broadcast before it joined carries data from *after*
        // those sorts; it must stay parked until the merge has
        // forwarded them all, or its data would leak ahead of the
        // barrier.
        let mut sel_branches: Vec<usize> = Vec::new();
        for (i, b) in branches.iter().enumerate() {
            let parked_behind_watermark = b
                .watermark
                .iter()
                .any(|(l, w)| forwarded.get(l).copied().unwrap_or(0) < *w);
            if !b.done && b.blocked.is_none() && !parked_behind_watermark {
                sel_branches.push(i);
            }
        }
        if !control_open && sel_branches.is_empty() {
            // All remaining branches are blocked on a sort that cannot
            // resolve — impossible by construction (the dispatcher
            // broadcasts sorts to every branch); treat as a bug.
            unreachable!("non-det merge deadlocked on unresolvable sort barrier");
        }

        let chosen = {
            let mut sources: Vec<&dyn ReadySource> = Vec::new();
            if control_open {
                sources.push(&control);
            }
            for &i in &sel_branches {
                sources.push(&branches[i].rx);
            }
            let start = rotate % sources.len();
            SelectReady { sources, start }.await
        };
        rotate = chosen + 1;
        if control_open && chosen == 0 {
            match control.try_recv() {
                Ok(spec) => branches.push(Branch::from_spec(spec)),
                Err(TryRecvError::Disconnected) => control_open = false,
                // Readiness raced with the top-of-loop joiner fold;
                // nothing to consume this round.
                Err(TryRecvError::Empty) => {}
            }
            continue;
        }
        // Map the select index back to the branch, then drain a
        // bounded burst from it: one select round-trip amortises over
        // up to RECV_BATCH queued messages (batched delivery) while
        // per-branch FIFO keeps the output order the same as a
        // one-message loop. The burst ends at a sort (the branch
        // parks), at EOS, on empty, or at the batch bound — with a
        // cooperative yield there so a deep backlog cannot monopolise
        // a pool worker.
        let bi = sel_branches[chosen - usize::from(control_open)];
        let mut burst = 0;
        loop {
            match branches[bi].rx.try_recv() {
                Ok(Msg::Rec(rec)) => {
                    if gated {
                        // Awaiting credit here is safe: the merger
                        // never holds up a producer by parking (its
                        // branch inputs are exempt), so this wait
                        // only chains downstream.
                        let _ = out.feed(Msg::Rec(rec)).await;
                    } else {
                        let _ = out.send(Msg::Rec(rec));
                    }
                    burst += 1;
                    if burst >= RECV_BATCH {
                        yield_now().await;
                        break;
                    }
                }
                Ok(Msg::Sort { level, counter }) => {
                    // Park the branch until the barrier resolves.
                    branches[bi].blocked = Some((level, counter));
                    break;
                }
                Err(TryRecvError::Disconnected) => {
                    branches[bi].done = true;
                    break;
                }
                // Empty after the first message is just the burst
                // running dry; empty on the first is a spurious wake.
                Err(TryRecvError::Empty) => break,
            }
        }
    }
}

/// Forwards every sort on which all branches agree (each branch is
/// done, parked on it, or exempt), unparking the parked branches.
/// Loops until no further sort resolves.
fn resolve_barriers(branches: &mut [Branch], forwarded: &mut HashMap<u32, u64>, out: &Sender) {
    loop {
        // Candidate sorts: the distinct values branches are parked on.
        let mut candidates: Vec<(u32, u64)> = Vec::new();
        for b in branches.iter() {
            if let Some(s) = b.blocked {
                if !candidates.contains(&s) {
                    candidates.push(s);
                }
            }
        }
        let mut resolved_any = false;
        for (level, counter) in candidates {
            let ok = branches
                .iter()
                .all(|b| b.done || b.blocked == Some((level, counter)) || b.exempt(level, counter));
            if ok {
                let hwm = forwarded.entry(level).or_insert(0);
                if counter >= *hwm {
                    let _ = out.send(Msg::Sort { level, counter });
                    *hwm = counter + 1;
                }
                for b in branches.iter_mut() {
                    if b.blocked == Some((level, counter)) {
                        b.blocked = None;
                    }
                }
                resolved_any = true;
            }
        }
        if !resolved_any {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic merge
// ---------------------------------------------------------------------------

async fn run_det(
    level: u32,
    initial: Vec<BranchSpec>,
    control: chan::Receiver<BranchSpec>,
    out: Sender,
) {
    let mut branches: Vec<Branch> = initial.into_iter().map(Branch::from_spec).collect();
    let mut control_open = true;
    let mut forwarded_outer: HashMap<u32, u64> = HashMap::new();
    let mut round: u64 = 0;

    loop {
        // The round counter must not advance while there is nothing to
        // drain — a branch joining later would then see its sorts
        // treated as stale. Block on the control channel instead.
        if branches.iter().all(|b| b.done) {
            if !control_open {
                return;
            }
            match control.recv_async().await {
                Ok(spec) => branches.push(Branch::from_spec(spec)),
                Err(_) => return,
            }
            continue;
        }

        // Round `round`: drain each branch, in join order, up to its
        // own-level sort for this round.
        let mut i = 0;
        while i < branches.len() {
            drain_branch_round(level, round, &mut branches[i], &mut forwarded_outer, &out).await;
            i += 1;
            // Late joiners must be folded into the current round: a
            // branch registered before the round's sort was broadcast
            // may hold this round's data. Its registration message is
            // guaranteed to be visible here because the control send
            // happens-before the sort broadcast we just consumed.
            if i == branches.len() && control_open {
                loop {
                    match control.try_recv() {
                        Ok(spec) => branches.push(Branch::from_spec(spec)),
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            control_open = false;
                            break;
                        }
                    }
                }
            }
        }
        round += 1;
    }
}

/// Drains one branch up to (and including) its own-level sort for
/// `round`. Data records are forwarded; outer sorts are forwarded once
/// (first encounter wins — every branch carries them in identical
/// positions).
///
/// Queued messages are taken greedily through `try_recv` (no future
/// per message), falling back to an await only when the branch runs
/// dry mid-round; a cooperative yield every [`RECV_BATCH`] messages
/// keeps a deep round from monopolising a pool worker. The message
/// *order* consumed is identical to a plain `recv_async` loop, so the
/// round protocol is unchanged.
async fn drain_branch_round(
    level: u32,
    round: u64,
    b: &mut Branch,
    forwarded_outer: &mut HashMap<u32, u64>,
    out: &Sender,
) {
    if b.done || b.exempt(level, round) {
        return;
    }
    let gated = out.is_bounded();
    let mut since_yield = 0;
    loop {
        let msg = match b.rx.try_recv() {
            Ok(m) => Ok(m),
            Err(TryRecvError::Empty) => b.rx.recv_async().await,
            Err(TryRecvError::Disconnected) => Err(chan::RecvError),
        };
        since_yield += 1;
        if since_yield >= RECV_BATCH {
            yield_now().await;
            since_yield = 0;
        }
        match msg {
            Ok(Msg::Rec(rec)) => {
                if gated {
                    // Safe to wait: branch inputs are exempt, so this
                    // merger parks no producer while it parks here.
                    let _ = out.feed(Msg::Rec(rec)).await;
                } else {
                    let _ = out.send(Msg::Rec(rec));
                }
            }
            Ok(Msg::Sort { level: l, counter }) => {
                if l == level {
                    debug_assert!(
                        counter >= round,
                        "deterministic merge saw stale sort {counter} in round {round}"
                    );
                    // Own sort: consumed, ends this branch's round.
                    // (counter > round cannot happen: exemption skips
                    // rounds the branch never sees, and sorts are
                    // broadcast to every live branch.)
                    return;
                } else if l < level {
                    // Outer sort: forward exactly once.
                    let hwm = forwarded_outer.entry(l).or_insert(0);
                    if counter >= *hwm {
                        let _ = out.send(Msg::Sort { level: l, counter });
                        *hwm = counter + 1;
                    }
                } else {
                    // Inner sorts are consumed by their own mergers and
                    // cannot escape; seeing one is a wiring bug.
                    debug_assert!(false, "sort of inner level {l} escaped to level {level}");
                }
            }
            Err(_) => {
                b.done = true;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::stream::stream;
    use snet_types::Record;

    fn rec(v: i64) -> Msg {
        Msg::Rec(Record::build().tag("v", v).finish())
    }

    fn val(m: &Msg) -> i64 {
        match m {
            Msg::Rec(r) => r.tag("v").unwrap(),
            other => panic!("expected record, got {other:?}"),
        }
    }

    fn test_ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    fn closed_control() -> chan::Receiver<BranchSpec> {
        let (tx, rx) = chan::channel();
        drop(tx);
        rx
    }

    #[test]
    fn nondet_merges_all_records() {
        let ctx = test_ctx();
        let (t1, r1) = stream();
        let (t2, r2) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::NonDet,
            vec![BranchSpec::new(r1), BranchSpec::new(r2)],
            closed_control(),
            out_tx,
        );
        for i in 0..5 {
            t1.send(rec(i)).unwrap();
            t2.send(rec(100 + i)).unwrap();
        }
        drop(t1);
        drop(t2);
        let mut got: Vec<i64> = Vec::new();
        while let Ok(m) = out_rx.recv() {
            got.push(val(&m));
        }
        ctx.join_all();
        assert_eq!(got.len(), 10);
        got.sort();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 100, 101, 102, 103, 104]);
    }

    #[test]
    fn nondet_preserves_per_branch_order() {
        let ctx = test_ctx();
        let (t1, r1) = stream();
        let (t2, r2) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::NonDet,
            vec![BranchSpec::new(r1), BranchSpec::new(r2)],
            closed_control(),
            out_tx,
        );
        for i in 0..50 {
            t1.send(rec(i)).unwrap();
            t2.send(rec(1000 + i)).unwrap();
        }
        drop(t1);
        drop(t2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        while let Ok(m) = out_rx.recv() {
            let v = val(&m);
            if v < 1000 {
                a.push(v);
            } else {
                b.push(v);
            }
        }
        ctx.join_all();
        assert_eq!(a, (0..50).collect::<Vec<_>>());
        assert_eq!(b, (1000..1050).collect::<Vec<_>>());
    }

    #[test]
    fn det_orders_rounds_by_input_order() {
        // Branch streams as a det dispatcher would produce them for
        // inputs routed 0->A, 1->B, 2->A. Branch B is slow conceptually
        // but det merge must still emit 0,1,2.
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (tb, rb) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::Det { level: 0 },
            vec![BranchSpec::new(ra), BranchSpec::new(rb)],
            closed_control(),
            out_tx,
        );
        // Round 0: data in A.
        ta.send(rec(0)).unwrap();
        ta.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        tb.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        // Round 1: data in B — send B's data *after* A's round-2 data
        // to prove ordering is by round, not arrival.
        ta.send(Msg::Sort {
            level: 0,
            counter: 1,
        })
        .unwrap();
        ta.send(rec(2)).unwrap();
        ta.send(Msg::Sort {
            level: 0,
            counter: 2,
        })
        .unwrap();
        tb.send(rec(1)).unwrap();
        tb.send(Msg::Sort {
            level: 0,
            counter: 1,
        })
        .unwrap();
        tb.send(Msg::Sort {
            level: 0,
            counter: 2,
        })
        .unwrap();
        drop(ta);
        drop(tb);
        let mut got = Vec::new();
        while let Ok(m) = out_rx.recv() {
            got.push(val(&m));
        }
        ctx.join_all();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn det_consumes_own_sorts() {
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::Det { level: 3 },
            vec![BranchSpec::new(ra)],
            closed_control(),
            out_tx,
        );
        ta.send(rec(7)).unwrap();
        ta.send(Msg::Sort {
            level: 3,
            counter: 0,
        })
        .unwrap();
        drop(ta);
        let msgs: Vec<Msg> = out_rx.iter().collect();
        ctx.join_all();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(msgs[0], Msg::Rec(_)));
    }

    #[test]
    fn det_forwards_outer_sorts_once() {
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (tb, rb) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::Det { level: 1 },
            vec![BranchSpec::new(ra), BranchSpec::new(rb)],
            closed_control(),
            out_tx,
        );
        // An outer sort (level 0) arrives at the start of round 0 in
        // both branches; it must be forwarded exactly once.
        for t in [&ta, &tb] {
            t.send(Msg::Sort {
                level: 0,
                counter: 0,
            })
            .unwrap();
            t.send(Msg::Sort {
                level: 1,
                counter: 0,
            })
            .unwrap();
        }
        ta.send(rec(1)).unwrap();
        ta.send(Msg::Sort {
            level: 1,
            counter: 1,
        })
        .unwrap();
        tb.send(Msg::Sort {
            level: 1,
            counter: 1,
        })
        .unwrap();
        drop(ta);
        drop(tb);
        let msgs: Vec<Msg> = out_rx.iter().collect();
        ctx.join_all();
        assert_eq!(
            msgs,
            vec![
                Msg::Sort {
                    level: 0,
                    counter: 0
                },
                rec(1)
            ]
        );
    }

    #[test]
    fn nondet_sort_barrier_holds_back_later_data() {
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (tb, rb) = stream();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::NonDet,
            vec![BranchSpec::new(ra), BranchSpec::new(rb)],
            closed_control(),
            out_tx,
        );
        // Branch A races ahead: data, sort 0, more data. Branch B
        // lags: its pre-sort data must still precede A's post-sort data
        // in the merged stream.
        ta.send(rec(1)).unwrap();
        ta.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        ta.send(rec(2)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(30));
        tb.send(rec(10)).unwrap();
        tb.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        drop(ta);
        drop(tb);
        let msgs: Vec<Msg> = out_rx.iter().collect();
        ctx.join_all();
        let pos = |needle: &Msg| msgs.iter().position(|m| m == needle).unwrap();
        let sort_pos = pos(&Msg::Sort {
            level: 0,
            counter: 0,
        });
        assert!(pos(&rec(1)) < sort_pos);
        assert!(
            pos(&rec(10)) < sort_pos,
            "pre-barrier data leaked: {msgs:?}"
        );
        assert!(pos(&rec(2)) > sort_pos);
    }

    #[test]
    fn dynamic_branch_join_nondet() {
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (ctl_tx, ctl_rx) = chan::channel::<BranchSpec>();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::NonDet,
            vec![BranchSpec::new(ra)],
            ctl_rx,
            out_tx,
        );
        ta.send(rec(1)).unwrap();
        // Join a second branch later.
        let (tb, rb) = stream();
        ctl_tx.send(BranchSpec::new(rb)).unwrap();
        tb.send(rec(2)).unwrap();
        drop(ta);
        drop(tb);
        drop(ctl_tx);
        let mut got: Vec<i64> = out_rx.iter().map(|m| val(&m)).collect();
        ctx.join_all();
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn dynamic_branch_with_watermark_is_exempt_from_old_sorts() {
        let ctx = test_ctx();
        let (ta, ra) = stream();
        let (ctl_tx, ctl_rx) = chan::channel::<BranchSpec>();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::Det { level: 0 },
            vec![BranchSpec::new(ra)],
            ctl_rx,
            out_tx,
        );
        // Round 0 happens with only branch A.
        ta.send(rec(0)).unwrap();
        ta.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        // Branch B joins before round 1's sort is broadcast; it will
        // deliver sorts from counter 1 onward (watermark level 0 -> 1).
        let (tb, rb) = stream();
        let mut wm = Watermark::new();
        wm.insert(0, 1);
        ctl_tx
            .send(BranchSpec {
                rx: rb,
                watermark: wm,
            })
            .unwrap();
        tb.send(rec(1)).unwrap();
        tb.send(Msg::Sort {
            level: 0,
            counter: 1,
        })
        .unwrap();
        ta.send(Msg::Sort {
            level: 0,
            counter: 1,
        })
        .unwrap();
        drop(ta);
        drop(tb);
        drop(ctl_tx);
        let got: Vec<i64> = out_rx.iter().map(|m| val(&m)).collect();
        ctx.join_all();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn empty_merge_terminates() {
        let ctx = test_ctx();
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t",
            MergeMode::NonDet,
            Vec::new(),
            closed_control(),
            out_tx,
        );
        assert!(out_rx.recv().is_err());
        let (out_tx, out_rx) = stream();
        spawn_merge(
            &ctx,
            "t2",
            MergeMode::Det { level: 0 },
            Vec::new(),
            closed_control(),
            out_tx,
        );
        assert!(out_rx.recv().is_err());
        ctx.join_all();
    }
}
