//! Compilation: from `snet-lang` ASTs to executable plans.
//!
//! Compilation resolves names (inlining net references), binds box
//! implementations, performs the full static type inference of
//! `snet-types` at every node, and assigns sort levels to the
//! deterministic combinators (a det combinator nested inside `d` other
//! det combinators stamps sort records at level `d`; see
//! [`crate::merge`]).
//!
//! The resulting [`Plan`] is an immutable `Arc` tree: the replicators
//! clone subtree handles to instantiate replicas on demand without
//! re-running any analysis.

use crate::boxfn::BoxImpl;
use snet_lang::{Env, ExitPattern, FilterDef, NetAst};
use snet_types::{BoxSig, Label, NetSig, TypeError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled plan node. Every variant carries what its instantiation
/// needs and nothing else.
pub enum PNode {
    Box {
        name: String,
        sig: BoxSig,
        imp: BoxImpl,
    },
    Filter {
        def: FilterDef,
    },
    Serial {
        a: Arc<PNode>,
        b: Arc<PNode>,
    },
    Parallel {
        left: Arc<PNode>,
        right: Arc<PNode>,
        left_sig: NetSig,
        right_sig: NetSig,
        det: bool,
        level: u32,
    },
    Star {
        inner: Arc<PNode>,
        exit: ExitPattern,
        det: bool,
        level: u32,
    },
    Split {
        inner: Arc<PNode>,
        tag: Label,
        det: bool,
        level: u32,
    },
}

impl fmt::Debug for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PNode::Box { name, .. } => write!(f, "Box({name})"),
            PNode::Filter { def } => write!(f, "Filter({def})"),
            PNode::Serial { a, b } => write!(f, "Serial({a:?}, {b:?})"),
            PNode::Parallel {
                left, right, det, ..
            } => write!(f, "Parallel(det={det}, {left:?}, {right:?})"),
            PNode::Star {
                inner, exit, det, ..
            } => write!(f, "Star(det={det}, exit={exit}, {inner:?})"),
            PNode::Split {
                inner, tag, det, ..
            } => write!(f, "Split(det={det}, tag={tag}, {inner:?})"),
        }
    }
}

/// A compiled, type-checked network ready for instantiation.
#[derive(Clone, Debug)]
pub struct Plan {
    pub root: Arc<PNode>,
    pub sig: NetSig,
}

/// Box-name → implementation bindings. The S-Net layer "cannot
/// compute": every box named in the network must be bound to a
/// computational component before the network can run.
#[derive(Default, Clone)]
pub struct Bindings {
    map: HashMap<String, BoxImpl>,
}

impl Bindings {
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds a box implementation by name.
    pub fn bind(
        mut self,
        name: &str,
        imp: impl Fn(&snet_types::Record, &mut crate::boxfn::Emitter) + Send + Sync + 'static,
    ) -> Self {
        self.map.insert(name.to_string(), Arc::new(imp));
        self
    }

    pub fn get(&self, name: &str) -> Option<BoxImpl> {
        self.map.get(name).cloned()
    }
}

/// An error found while compiling a network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Static type inference failed.
    Type(TypeError),
    /// A referenced name is neither a declared box nor a net.
    Unknown(String),
    /// A declared box has no bound implementation.
    Unbound(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Unknown(n) => write!(f, "unknown box or net '{n}'"),
            CompileError::Unbound(n) => write!(f, "box '{n}' has no bound implementation"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

/// Compiles a network expression against declarations and bindings.
pub fn compile(ast: &NetAst, env: &Env, bindings: &Bindings) -> Result<Plan, CompileError> {
    let (root, sig) = compile_node(ast, env, bindings, 0)?;
    Ok(Plan { root, sig })
}

fn compile_node(
    ast: &NetAst,
    env: &Env,
    bindings: &Bindings,
    det_depth: u32,
) -> Result<(Arc<PNode>, NetSig), CompileError> {
    match ast {
        NetAst::Ref(name) => {
            if let Some(box_sig) = env.lookup_box(name) {
                let imp = bindings
                    .get(name)
                    .ok_or_else(|| CompileError::Unbound(name.clone()))?;
                let sig = box_sig.net_sig();
                Ok((
                    Arc::new(PNode::Box {
                        name: name.clone(),
                        sig: box_sig.clone(),
                        imp,
                    }),
                    sig,
                ))
            } else if let Some(body) = env.lookup_net(name) {
                // Net references are inlined: replication must be able
                // to clone the full subtree.
                let body = body.clone();
                compile_node(&body, env, bindings, det_depth)
            } else {
                Err(CompileError::Unknown(name.clone()))
            }
        }
        NetAst::Filter(def) => {
            let sig = def.net_sig();
            Ok((Arc::new(PNode::Filter { def: def.clone() }), sig))
        }
        NetAst::Serial(a, b) => {
            let (pa, sa) = compile_node(a, env, bindings, det_depth)?;
            let (pb, sb) = compile_node(b, env, bindings, det_depth)?;
            let sig = snet_types::serial(&sa, &sb)?;
            Ok((Arc::new(PNode::Serial { a: pa, b: pb }), sig))
        }
        NetAst::Parallel { left, right, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pl, sl) = compile_node(left, env, bindings, inner_depth)?;
            let (pr, sr) = compile_node(right, env, bindings, inner_depth)?;
            let sig = snet_types::parallel(&sl, &sr);
            Ok((
                Arc::new(PNode::Parallel {
                    left: pl,
                    right: pr,
                    left_sig: sl,
                    right_sig: sr,
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
        NetAst::Star { inner, exit, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pi, si) = compile_node(inner, env, bindings, inner_depth)?;
            let sig = snet_types::star(&si, &exit.pattern)?;
            Ok((
                Arc::new(PNode::Star {
                    inner: pi,
                    exit: exit.clone(),
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
        NetAst::Split { inner, tag, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pi, si) = compile_node(inner, env, bindings, inner_depth)?;
            let tag = Label::tag(tag);
            let sig = snet_types::split(&si, tag);
            Ok((
                Arc::new(PNode::Split {
                    inner: pi,
                    tag,
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_lang::parse_program;

    fn bindings_id() -> Bindings {
        Bindings::new()
            .bind("f", |rec, em| em.emit(rec.clone()))
            .bind("g", |rec, em| em.emit(rec.clone()))
    }

    fn env_fg() -> Env {
        parse_program(
            "box f (a) -> (b);\n\
             box g (b) -> (c);\n\
             net fg = f .. g;",
        )
        .unwrap()
        .env()
        .unwrap()
    }

    #[test]
    fn compile_box_and_serial() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f .. g").unwrap();
        let plan = compile(&ast, &env, &bindings_id()).unwrap();
        assert!(matches!(&*plan.root, PNode::Serial { .. }));
        assert_eq!(plan.sig.output_type().to_string(), "{c}");
    }

    #[test]
    fn net_references_are_inlined() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("fg").unwrap();
        let plan = compile(&ast, &env, &bindings_id()).unwrap();
        assert!(matches!(&*plan.root, PNode::Serial { .. }));
    }

    #[test]
    fn unbound_box_is_an_error() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f").unwrap();
        let err = compile(&ast, &env, &Bindings::new()).unwrap_err();
        assert_eq!(err, CompileError::Unbound("f".into()));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("nosuch").unwrap();
        let err = compile(&ast, &env, &bindings_id()).unwrap_err();
        assert_eq!(err, CompileError::Unknown("nosuch".into()));
    }

    #[test]
    fn type_errors_surface() {
        // g requires {b}; composing g .. g needs {b} again but g
        // consumed it and produced {c} — ill-typed.
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("g .. g").unwrap();
        assert!(matches!(
            compile(&ast, &env, &bindings_id()),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn det_levels_are_nesting_depths() {
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        // Outer det parallel (level 0) containing a det split (level 1).
        let ast = snet_lang::parse_net_expr("(f ! <t>) | g").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        match &*plan.root {
            PNode::Parallel {
                det: true,
                level,
                left,
                ..
            } => {
                assert_eq!(*level, 0);
                match &**left {
                    PNode::Split {
                        det: true, level, ..
                    } => assert_eq!(*level, 1),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-det combinators do not increase depth.
        let ast = snet_lang::parse_net_expr("(f ! <t>) || g").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        match &*plan.root {
            PNode::Parallel {
                det: false, left, ..
            } => match &**left {
                PNode::Split {
                    det: true, level, ..
                } => assert_eq!(*level, 0),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
