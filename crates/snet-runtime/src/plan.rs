//! Compilation: from `snet-lang` ASTs to executable plans.
//!
//! Compilation resolves names (inlining net references), binds box
//! implementations, performs the full static type inference of
//! `snet-types` at every node, and assigns sort levels to the
//! deterministic combinators (a det combinator nested inside `d` other
//! det combinators stamps sort records at level `d`; see
//! [`crate::merge`]).
//!
//! The resulting [`Plan`] is an immutable `Arc` tree: the replicators
//! clone subtree handles to instantiate replicas on demand without
//! re-running any analysis.
//!
//! # The fusion pass
//!
//! The paper's `..` combinator is a *coordination* construct, not an
//! execution mandate: a pipeline of boxes is semantically a function
//! composition, and running every stage as its own component taxes
//! each record with a channel send, a wakeup and a scheduler
//! round-trip per stage. The [`fuse`] rewrite removes that tax by
//! collapsing maximal `Serial` chains into [`PNode::Fused`] nodes that
//! [`crate::instantiate`] spawns as **one** component (see
//! [`crate::fused`]): one `recv_each` at the head, one send at the
//! tail, every intermediate record handed stage-to-stage on the
//! component's own stack.
//!
//! **Legality rules.** Only single-input/single-output stages fuse —
//! `Box` and `Filter` nodes, nothing else:
//!
//! * fusion never crosses a `Parallel`, `Split`, `Star` or merge
//!   boundary (those nodes own dispatchers, mergers and dynamically
//!   unfolded replicas; the pass recurses *into* their inner plans but
//!   a chain interrupted by one continues as a separate run);
//! * boxes and filters carry no det sort level — they forward sort
//!   records transparently — so a `Serial` chain of them can never
//!   straddle a sort-level change; the combinators that do stamp or
//!   consume sort records are exactly the ones fusion refuses to
//!   cross. Processing messages strictly in stream order (data records
//!   cascade fully through the stages before the next message is
//!   looked at) keeps the fused chain's output byte-identical to the
//!   unfused chain's, sort records included.
//!
//! **Metrics-path preservation.** Every fused stage remembers the
//! `s0`/`s1` path suffix the binary `Serial` instantiation would have
//! derived ([`FusedStage::suffix`], [`ChainPart::suffix`]), and the
//! fused driver registers each stage's [`crate::path::CompPath`]
//! sub-path at spawn exactly as the standalone components do — so the
//! string metrics query API, observers and per-stage counters are
//! indistinguishable between the fused and unfused topologies.
//!
//! # Fan fusion (replica fusion)
//!
//! The same argument extends across replicator boundaries. A
//! `Split`/`Parallel`/`Star` whose body fused to a single SISO run
//! pays three scheduled hops per record — dispatcher, lane, merger —
//! where one suffices: the dispatcher's classification is a few
//! table lookups, each lane is a stage vector the fused driver can
//! run in place, and because the records are then processed
//! **synchronously in stream order**, the input order the
//! deterministic merger would laboriously re-establish from sort
//! records is simply never disturbed. The pass rewrites such
//! combinators to [`PNode::FusedFan`] nodes, spawned by
//! [`crate::fused::spawn_fused_fan`] as one component that runs
//! dispatch, the lanes' stage cores and the merge handoff together
//! (the merge side is [`crate::merge`]'s branch buffer minus the
//! channel).
//!
//! **Fan legality rules.** Dispatch/merge fusion is legal only when
//! the whole fan is self-contained:
//!
//! * **SISO fused bodies only.** A body must itself have fused to a
//!   single stage run (`Fused`, or a lone `Box`/`Filter`). A nested
//!   combinator inside the body owns its *own* dispatcher and merge
//!   point, and fan fusion never crosses a nested combinator's merge
//!   point: the outer combinator then stays a regular replicator
//!   (whose replicas may well contain fused fans of their own — the
//!   nested fan-in-fan case).
//! * **No external taps.** Every stream the fan's merge consumes must
//!   originate in one of its own lanes. That holds by construction
//!   for all three combinators today; a scope whose merger adopted
//!   branches from outside the fan (e.g. a hypothetical external tap
//!   into a nondet merge) could not be co-scheduled without changing
//!   its interleaving guarantees.
//! * **Runtime conditions** (checked at instantiation, falling back
//!   to the unfused replicator spawn — see
//!   [`crate::fused::fan_fusable_here`]): per-lane `"dispatch"` edges
//!   must not carry an explicit capacity override (a user bounding
//!   replica edges asked for per-lane backpressure, which fusion
//!   erases — the net-global default bound still applies to the
//!   fan's input and merged output edges, so default-bounded nets do
//!   fuse); and the fault policy must not be
//!   [`crate::fault::FaultPolicy::Restart`], whose backoff sleeps
//!   would stall every co-scheduled lane where the unfused topology
//!   stalls one replica. Per-stage containment of `SkipRecord` and
//!   chaos injection is unaffected by fusion — the fault boundary
//!   lives inside the stage cores, keyed by stage paths fusion
//!   preserves.
//!
//! Determinism needs no sort records inside a fused fan: processing
//! each input record to completion before the next starts makes the
//! merged output order the input order (for `Star`, depth-by-depth
//! frontier processing reproduces the det merger's
//! join-order-by-guard drain), and enclosing scopes' sort records
//! forward at their stream position. The nondeterministic variants
//! fuse too: the inline order is one of the schedules their
//! semantics admit, and enclosing-scope barrier ordering (all data
//! dispatched before a sort is emitted before it) holds trivially.
//!
//! Fusion is on by default; `SNET_FUSE=0` (process-wide) or
//! [`crate::NetBuilder::fuse`]`(false)` (per net) keep the unfused
//! topology buildable, [`crate::NetBuilder::fuse_fan`] /
//! [`crate::NetBuilder::fuse_fan_for`] give per-net and
//! per-combinator control over fan fusion alone, and [`compile_cfg`]
//! gives explicit control.

use crate::boxfn::BoxImpl;
use snet_lang::{Env, ExitPattern, FilterDef, NetAst};
use snet_types::{BoxSig, Label, NetSig, TypeError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled plan node. Every variant carries what its instantiation
/// needs and nothing else.
pub enum PNode {
    Box {
        name: String,
        sig: BoxSig,
        imp: BoxImpl,
    },
    Filter {
        def: FilterDef,
    },
    Serial {
        a: Arc<PNode>,
        b: Arc<PNode>,
    },
    Parallel {
        left: Arc<PNode>,
        right: Arc<PNode>,
        left_sig: NetSig,
        right_sig: NetSig,
        det: bool,
        level: u32,
    },
    Star {
        inner: Arc<PNode>,
        exit: ExitPattern,
        det: bool,
        level: u32,
    },
    Split {
        inner: Arc<PNode>,
        tag: Label,
        det: bool,
        level: u32,
    },
    /// A maximal run of SISO stages collapsed by the [`fuse`] pass:
    /// instantiated as **one** component running every stage in-place
    /// (see [`crate::fused`]).
    Fused {
        stages: Vec<FusedStage>,
    },
    /// A `Serial` spine whose leaves were partially fused: parts run
    /// in sequence, each instantiated under its recorded path suffix
    /// so component paths match the unfused topology exactly.
    Chain {
        parts: Vec<ChainPart>,
    },
    /// A replicator whose body fused to a single SISO stage run,
    /// collapsed by the [`fuse`] pass (see module docs, *Fan
    /// fusion*): dispatch, every lane's stages and the merge handoff
    /// run as **one** component
    /// ([`crate::fused::spawn_fused_fan`]), unless the runtime
    /// legality check falls back to the unfused replicator spawn.
    FusedFan {
        kind: FanKind,
        det: bool,
        level: u32,
    },
}

/// What a [`PNode::FusedFan`] dispatches on. Each body handle is a
/// SISO-fusable subplan (`Fused`, or a lone `Box`/`Filter`): the fan
/// driver builds lane stage cores directly from it, and the runtime
/// fallback instantiates it as an ordinary replica plan.
pub enum FanKind {
    /// `body ! <tag>` / `body !! <tag>`.
    Split { body: Arc<PNode>, tag: Label },
    /// `left | right` / `left || right`.
    Parallel {
        left: Arc<PNode>,
        right: Arc<PNode>,
        left_sig: NetSig,
        right_sig: NetSig,
    },
    /// `body * {exit}` / `body ** {exit}`.
    Star { body: Arc<PNode>, exit: ExitPattern },
}

/// One stage of a [`PNode::Fused`] pipeline.
pub struct FusedStage {
    /// The `s0`/`s1` child segments the binary `Serial` instantiation
    /// would have derived for this stage, relative to the fused node's
    /// instantiation path — so per-stage metrics and observer paths
    /// are byte-identical to the unfused topology.
    pub suffix: Vec<&'static str>,
    pub kind: FusedKind,
}

/// What a fused stage executes.
pub enum FusedKind {
    Box {
        name: String,
        sig: BoxSig,
        imp: BoxImpl,
    },
    Filter {
        def: FilterDef,
    },
}

/// One part of a [`PNode::Chain`]: a subplan plus the path suffix it
/// instantiates under (relative to the chain's instantiation path).
pub struct ChainPart {
    pub suffix: Vec<&'static str>,
    pub node: Arc<PNode>,
}

impl fmt::Debug for PNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PNode::Box { name, .. } => write!(f, "Box({name})"),
            PNode::Filter { def } => write!(f, "Filter({def})"),
            PNode::Serial { a, b } => write!(f, "Serial({a:?}, {b:?})"),
            PNode::Parallel {
                left, right, det, ..
            } => write!(f, "Parallel(det={det}, {left:?}, {right:?})"),
            PNode::Star {
                inner, exit, det, ..
            } => write!(f, "Star(det={det}, exit={exit}, {inner:?})"),
            PNode::Split {
                inner, tag, det, ..
            } => write!(f, "Split(det={det}, tag={tag}, {inner:?})"),
            PNode::Fused { stages } => {
                write!(f, "Fused(")?;
                for (i, s) in stages.iter().enumerate() {
                    if i > 0 {
                        write!(f, " .. ")?;
                    }
                    match &s.kind {
                        FusedKind::Box { name, .. } => write!(f, "box:{name}")?,
                        FusedKind::Filter { def } => write!(f, "filter:{def}")?,
                    }
                }
                write!(f, ")")
            }
            PNode::Chain { parts } => {
                write!(f, "Chain(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " .. ")?;
                    }
                    write!(f, "{:?}", p.node)?;
                }
                write!(f, ")")
            }
            PNode::FusedFan { kind, det, .. } => match kind {
                FanKind::Split { body, tag } => {
                    write!(f, "FusedFan(split det={det}, tag={tag}, {body:?})")
                }
                FanKind::Parallel { left, right, .. } => {
                    write!(f, "FusedFan(par det={det}, {left:?}, {right:?})")
                }
                FanKind::Star { body, exit } => {
                    write!(f, "FusedFan(star det={det}, exit={exit}, {body:?})")
                }
            },
        }
    }
}

/// A compiled, type-checked network ready for instantiation.
#[derive(Clone, Debug)]
pub struct Plan {
    pub root: Arc<PNode>,
    pub sig: NetSig,
}

/// Box-name → implementation bindings. The S-Net layer "cannot
/// compute": every box named in the network must be bound to a
/// computational component before the network can run.
#[derive(Default, Clone)]
pub struct Bindings {
    map: HashMap<String, BoxImpl>,
}

impl Bindings {
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Binds a box implementation by name.
    pub fn bind(
        mut self,
        name: &str,
        imp: impl Fn(&snet_types::Record, &mut crate::boxfn::Emitter) + Send + Sync + 'static,
    ) -> Self {
        self.map.insert(name.to_string(), Arc::new(imp));
        self
    }

    pub fn get(&self, name: &str) -> Option<BoxImpl> {
        self.map.get(name).cloned()
    }
}

/// An error found while compiling a network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// Static type inference failed.
    Type(TypeError),
    /// A referenced name is neither a declared box nor a net.
    Unknown(String),
    /// A declared box has no bound implementation.
    Unbound(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Type(e) => write!(f, "{e}"),
            CompileError::Unknown(n) => write!(f, "unknown box or net '{n}'"),
            CompileError::Unbound(n) => write!(f, "box '{n}' has no bound implementation"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TypeError> for CompileError {
    fn from(e: TypeError) -> Self {
        CompileError::Type(e)
    }
}

/// Whether the fusion pass runs by default: on, unless `SNET_FUSE=0`
/// (the process-wide escape hatch keeping the unfused topology
/// testable; [`crate::NetBuilder::fuse`] overrides per net).
pub fn fuse_default() -> bool {
    !matches!(std::env::var("SNET_FUSE"), Ok(v) if v == "0")
}

/// Compiles a network expression against declarations and bindings,
/// applying the fusion pass per [`fuse_default`].
pub fn compile(ast: &NetAst, env: &Env, bindings: &Bindings) -> Result<Plan, CompileError> {
    compile_cfg(ast, env, bindings, fuse_default())
}

/// [`compile`] with explicit control over the fusion pass.
pub fn compile_cfg(
    ast: &NetAst,
    env: &Env,
    bindings: &Bindings,
    fuse_pass: bool,
) -> Result<Plan, CompileError> {
    let (root, sig) = compile_node(ast, env, bindings, 0)?;
    let root = if fuse_pass { fuse(&root) } else { root };
    Ok(Plan { root, sig })
}

/// True for the single-input/single-output stage nodes the fusion
/// pass may collapse.
fn is_siso(node: &PNode) -> bool {
    matches!(node, PNode::Box { .. } | PNode::Filter { .. })
}

/// True for an (already fused) subplan a fused fan may adopt as a
/// lane body: a single SISO stage run, nothing that owns its own
/// dispatcher or merge point (see module docs, *Fan legality rules*).
fn fan_fusable(node: &PNode) -> bool {
    matches!(
        node,
        PNode::Fused { .. } | PNode::Box { .. } | PNode::Filter { .. }
    )
}

/// The fusion rewrite (see the module docs for legality rules):
/// collapses maximal `Serial` runs of SISO stages into
/// [`PNode::Fused`] nodes and recurses into combinator inners.
/// Idempotent; component paths are preserved exactly.
pub fn fuse(node: &Arc<PNode>) -> Arc<PNode> {
    match &**node {
        PNode::Serial { .. } => fuse_serial(node),
        PNode::Parallel {
            left,
            right,
            left_sig,
            right_sig,
            det,
            level,
        } => {
            let left = fuse(left);
            let right = fuse(right);
            if fan_fusable(&left) && fan_fusable(&right) {
                Arc::new(PNode::FusedFan {
                    kind: FanKind::Parallel {
                        left,
                        right,
                        left_sig: left_sig.clone(),
                        right_sig: right_sig.clone(),
                    },
                    det: *det,
                    level: *level,
                })
            } else {
                Arc::new(PNode::Parallel {
                    left,
                    right,
                    left_sig: left_sig.clone(),
                    right_sig: right_sig.clone(),
                    det: *det,
                    level: *level,
                })
            }
        }
        PNode::Star {
            inner,
            exit,
            det,
            level,
        } => {
            let inner = fuse(inner);
            if fan_fusable(&inner) {
                Arc::new(PNode::FusedFan {
                    kind: FanKind::Star {
                        body: inner,
                        exit: exit.clone(),
                    },
                    det: *det,
                    level: *level,
                })
            } else {
                Arc::new(PNode::Star {
                    inner,
                    exit: exit.clone(),
                    det: *det,
                    level: *level,
                })
            }
        }
        PNode::Split {
            inner,
            tag,
            det,
            level,
        } => {
            let inner = fuse(inner);
            if fan_fusable(&inner) {
                Arc::new(PNode::FusedFan {
                    kind: FanKind::Split {
                        body: inner,
                        tag: *tag,
                    },
                    det: *det,
                    level: *level,
                })
            } else {
                Arc::new(PNode::Split {
                    inner,
                    tag: *tag,
                    det: *det,
                    level: *level,
                })
            }
        }
        // Leaves (and already-fused nodes) pass through by handle.
        PNode::Box { .. }
        | PNode::Filter { .. }
        | PNode::Fused { .. }
        | PNode::Chain { .. }
        | PNode::FusedFan { .. } => Arc::clone(node),
    }
}

/// Flattens a `Serial` spine into its leaves, recording for each the
/// `s0`/`s1` path suffix the binary instantiation derives.
fn flatten_serial(
    node: &Arc<PNode>,
    prefix: &mut Vec<&'static str>,
    out: &mut Vec<(Vec<&'static str>, Arc<PNode>)>,
) {
    match &**node {
        PNode::Serial { a, b } => {
            prefix.push("s0");
            flatten_serial(a, prefix, out);
            prefix.pop();
            prefix.push("s1");
            flatten_serial(b, prefix, out);
            prefix.pop();
        }
        _ => out.push((prefix.clone(), Arc::clone(node))),
    }
}

fn fuse_serial(node: &Arc<PNode>) -> Arc<PNode> {
    let mut leaves = Vec::new();
    flatten_serial(node, &mut Vec::new(), &mut leaves);
    let mut parts: Vec<ChainPart> = Vec::new();
    let mut run: Vec<(Vec<&'static str>, Arc<PNode>)> = Vec::new();
    let flush = |run: &mut Vec<(Vec<&'static str>, Arc<PNode>)>, parts: &mut Vec<ChainPart>| {
        if run.len() >= 2 {
            // A fusable run: one component for the whole stretch.
            let stages = run
                .drain(..)
                .map(|(suffix, leaf)| FusedStage {
                    suffix,
                    kind: match &*leaf {
                        PNode::Box { name, sig, imp } => FusedKind::Box {
                            name: name.clone(),
                            sig: sig.clone(),
                            imp: Arc::clone(imp),
                        },
                        PNode::Filter { def } => FusedKind::Filter { def: def.clone() },
                        other => unreachable!("non-SISO node {other:?} in a fusable run"),
                    },
                })
                .collect();
            parts.push(ChainPart {
                suffix: Vec::new(),
                node: Arc::new(PNode::Fused { stages }),
            });
        } else {
            // A lone stage stays a plain component.
            for (suffix, leaf) in run.drain(..) {
                parts.push(ChainPart { suffix, node: leaf });
            }
        }
    };
    for (suffix, leaf) in leaves {
        if is_siso(&leaf) {
            run.push((suffix, leaf));
        } else {
            flush(&mut run, &mut parts);
            parts.push(ChainPart {
                suffix,
                node: fuse(&leaf),
            });
        }
    }
    flush(&mut run, &mut parts);
    if parts.len() == 1 && parts[0].suffix.is_empty() {
        // The whole spine fused into one node.
        return parts.pop().expect("one part").node;
    }
    Arc::new(PNode::Chain { parts })
}

fn compile_node(
    ast: &NetAst,
    env: &Env,
    bindings: &Bindings,
    det_depth: u32,
) -> Result<(Arc<PNode>, NetSig), CompileError> {
    match ast {
        NetAst::Ref(name) => {
            if let Some(box_sig) = env.lookup_box(name) {
                let imp = bindings
                    .get(name)
                    .ok_or_else(|| CompileError::Unbound(name.clone()))?;
                let sig = box_sig.net_sig();
                Ok((
                    Arc::new(PNode::Box {
                        name: name.clone(),
                        sig: box_sig.clone(),
                        imp,
                    }),
                    sig,
                ))
            } else if let Some(body) = env.lookup_net(name) {
                // Net references are inlined: replication must be able
                // to clone the full subtree.
                let body = body.clone();
                compile_node(&body, env, bindings, det_depth)
            } else {
                Err(CompileError::Unknown(name.clone()))
            }
        }
        NetAst::Filter(def) => {
            let sig = def.net_sig();
            Ok((Arc::new(PNode::Filter { def: def.clone() }), sig))
        }
        NetAst::Serial(a, b) => {
            let (pa, sa) = compile_node(a, env, bindings, det_depth)?;
            let (pb, sb) = compile_node(b, env, bindings, det_depth)?;
            let sig = snet_types::serial(&sa, &sb)?;
            Ok((Arc::new(PNode::Serial { a: pa, b: pb }), sig))
        }
        NetAst::Parallel { left, right, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pl, sl) = compile_node(left, env, bindings, inner_depth)?;
            let (pr, sr) = compile_node(right, env, bindings, inner_depth)?;
            let sig = snet_types::parallel(&sl, &sr);
            Ok((
                Arc::new(PNode::Parallel {
                    left: pl,
                    right: pr,
                    left_sig: sl,
                    right_sig: sr,
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
        NetAst::Star { inner, exit, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pi, si) = compile_node(inner, env, bindings, inner_depth)?;
            let sig = snet_types::star(&si, &exit.pattern)?;
            Ok((
                Arc::new(PNode::Star {
                    inner: pi,
                    exit: exit.clone(),
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
        NetAst::Split { inner, tag, det } => {
            let inner_depth = det_depth + u32::from(*det);
            let (pi, si) = compile_node(inner, env, bindings, inner_depth)?;
            let tag = Label::tag(tag);
            let sig = snet_types::split(&si, tag);
            Ok((
                Arc::new(PNode::Split {
                    inner: pi,
                    tag,
                    det: *det,
                    level: det_depth,
                }),
                sig,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_lang::parse_program;

    fn bindings_id() -> Bindings {
        Bindings::new()
            .bind("f", |rec, em| em.emit(rec.clone()))
            .bind("g", |rec, em| em.emit(rec.clone()))
    }

    fn env_fg() -> Env {
        parse_program(
            "box f (a) -> (b);\n\
             box g (b) -> (c);\n\
             net fg = f .. g;",
        )
        .unwrap()
        .env()
        .unwrap()
    }

    #[test]
    fn compile_box_and_serial() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f .. g").unwrap();
        let plan = compile_cfg(&ast, &env, &bindings_id(), false).unwrap();
        assert!(matches!(&*plan.root, PNode::Serial { .. }));
        assert_eq!(plan.sig.output_type().to_string(), "{c}");
    }

    #[test]
    fn net_references_are_inlined() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("fg").unwrap();
        let plan = compile_cfg(&ast, &env, &bindings_id(), false).unwrap();
        assert!(matches!(&*plan.root, PNode::Serial { .. }));
    }

    #[test]
    fn fusion_collapses_a_box_chain_into_one_node() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f .. g").unwrap();
        let plan = compile_cfg(&ast, &env, &bindings_id(), true).unwrap();
        match &*plan.root {
            PNode::Fused { stages } => {
                assert_eq!(stages.len(), 2);
                assert_eq!(stages[0].suffix, vec!["s0"]);
                assert_eq!(stages[1].suffix, vec!["s1"]);
                assert!(matches!(&stages[0].kind, FusedKind::Box { name, .. } if name == "f"));
                assert!(matches!(&stages[1].kind, FusedKind::Box { name, .. } if name == "g"));
            }
            other => panic!("expected Fused, got {other:?}"),
        }
        // The signature is untouched by fusion.
        assert_eq!(plan.sig.output_type().to_string(), "{c}");
    }

    #[test]
    fn fusion_records_serial_tree_suffixes() {
        // Three stages: the suffixes must be exactly what the binary
        // Serial instantiation would derive, so metric paths match.
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        let ast = snet_lang::parse_net_expr("f .. g .. f").unwrap();
        let unfused = compile_cfg(&ast, &env, &b, false).unwrap();
        let fused = fuse(&unfused.root);
        // Oracle: flatten the unfused tree.
        let mut leaves = Vec::new();
        flatten_serial(&unfused.root, &mut Vec::new(), &mut leaves);
        let want: Vec<Vec<&'static str>> = leaves.into_iter().map(|(s, _)| s).collect();
        match &*fused {
            PNode::Fused { stages } => {
                assert_eq!(stages.len(), 3);
                let got: Vec<Vec<&'static str>> = stages.iter().map(|s| s.suffix.clone()).collect();
                assert_eq!(got, want);
            }
            other => panic!("expected Fused, got {other:?}"),
        }
    }

    #[test]
    fn fusion_stops_at_combinator_boundaries() {
        // f .. (g ! <t>) .. f .. g: the split interrupts the chain —
        // the runs on either side stay separate, the lone leading `f`
        // stays a plain box, and the trailing pair fuses.
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        let ast = snet_lang::parse_net_expr("f .. (g ! <t>) .. f .. g").unwrap();
        let plan = compile_cfg(&ast, &env, &b, true).unwrap();
        match &*plan.root {
            PNode::Chain { parts } => {
                assert_eq!(parts.len(), 3, "{:?}", plan.root);
                assert!(matches!(&*parts[0].node, PNode::Box { .. }));
                // The split interrupts the chain, but its lone-box
                // body is itself SISO — so it fan-fuses in place.
                assert!(matches!(&*parts[1].node, PNode::FusedFan { .. }));
                match &*parts[2].node {
                    PNode::Fused { stages } => assert_eq!(stages.len(), 2),
                    other => panic!("expected trailing Fused, got {other:?}"),
                }
                // Lone stages keep their Serial-derived suffix; the
                // fused part embeds suffixes in its stages instead.
                assert!(!parts[0].suffix.is_empty());
                assert!(!parts[1].suffix.is_empty());
                assert!(parts[2].suffix.is_empty());
            }
            other => panic!("expected Chain, got {other:?}"),
        }
    }

    #[test]
    fn fusion_recurses_into_combinator_inners() {
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        let ast = snet_lang::parse_net_expr("(f .. g) ! <t>").unwrap();
        let plan = compile_cfg(&ast, &env, &b, true).unwrap();
        match &*plan.root {
            PNode::FusedFan {
                kind: FanKind::Split { body, .. },
                det: true,
                ..
            } => {
                assert!(matches!(&**body, PNode::Fused { .. }), "{body:?}");
            }
            other => panic!("expected FusedFan(split), got {other:?}"),
        }
    }

    #[test]
    fn fan_fusion_refuses_nested_combinator_bodies() {
        // (f ! <u>) ! <t>: the outer split's body is itself a
        // combinator — fan fusion must not cross its merge point. The
        // outer stays a regular Split; the inner (lone SISO body)
        // fan-fuses.
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        let ast = snet_lang::parse_net_expr("(f ! <u>) ! <t>").unwrap();
        let plan = compile_cfg(&ast, &env, &b, true).unwrap();
        match &*plan.root {
            PNode::Split { inner, .. } => match &**inner {
                PNode::FusedFan {
                    kind: FanKind::Split { body, .. },
                    ..
                } => assert!(matches!(&**body, PNode::Box { .. })),
                other => panic!("expected inner FusedFan, got {other:?}"),
            },
            other => panic!("expected outer Split, got {other:?}"),
        }
        // Star and parallel refuse the same way.
        let ast = snet_lang::parse_net_expr("((f ! <u>) | g) ** {a}").unwrap();
        let plan = compile_cfg(&ast, &env, &b, true).unwrap();
        match &*plan.root {
            PNode::Star { inner, .. } => {
                assert!(matches!(&**inner, PNode::Parallel { .. }), "{inner:?}");
            }
            other => panic!("expected Star, got {other:?}"),
        }
    }

    #[test]
    fn fan_fusion_is_idempotent_and_off_without_the_pass() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("(f .. g) ! <t>").unwrap();
        let plan = compile_cfg(&ast, &env, &bindings_id(), true).unwrap();
        assert!(matches!(&*plan.root, PNode::FusedFan { .. }));
        let again = fuse(&plan.root);
        assert!(Arc::ptr_eq(&plan.root, &again));
        // With the pass off, no FusedFan exists anywhere.
        let unfused = compile_cfg(&ast, &env, &bindings_id(), false).unwrap();
        assert!(matches!(&*unfused.root, PNode::Split { .. }));
    }

    #[test]
    fn fusion_is_idempotent() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f .. g").unwrap();
        let plan = compile_cfg(&ast, &env, &bindings_id(), true).unwrap();
        let again = fuse(&plan.root);
        assert!(Arc::ptr_eq(&plan.root, &again));
    }

    #[test]
    fn unbound_box_is_an_error() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("f").unwrap();
        let err = compile(&ast, &env, &Bindings::new()).unwrap_err();
        assert_eq!(err, CompileError::Unbound("f".into()));
    }

    #[test]
    fn unknown_name_is_an_error() {
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("nosuch").unwrap();
        let err = compile(&ast, &env, &bindings_id()).unwrap_err();
        assert_eq!(err, CompileError::Unknown("nosuch".into()));
    }

    #[test]
    fn type_errors_surface() {
        // g requires {b}; composing g .. g needs {b} again but g
        // consumed it and produced {c} — ill-typed.
        let env = env_fg();
        let ast = snet_lang::parse_net_expr("g .. g").unwrap();
        assert!(matches!(
            compile(&ast, &env, &bindings_id()),
            Err(CompileError::Type(_))
        ));
    }

    #[test]
    fn det_levels_are_nesting_depths() {
        let env = parse_program(
            "box f (a) -> (a);\n\
             box g (a) -> (a);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("f", |r, e| e.emit(r.clone()))
            .bind("g", |r, e| e.emit(r.clone()));
        // Outer det parallel (level 0) containing a det split (level 1).
        // Fusion off: levels are a compile_node property, and the
        // unfused tree shows them directly.
        let ast = snet_lang::parse_net_expr("(f ! <t>) | g").unwrap();
        let plan = compile_cfg(&ast, &env, &b, false).unwrap();
        match &*plan.root {
            PNode::Parallel {
                det: true,
                level,
                left,
                ..
            } => {
                assert_eq!(*level, 0);
                match &**left {
                    PNode::Split {
                        det: true, level, ..
                    } => assert_eq!(*level, 1),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Non-det combinators do not increase depth.
        let ast = snet_lang::parse_net_expr("(f ! <t>) || g").unwrap();
        let plan = compile_cfg(&ast, &env, &b, false).unwrap();
        match &*plan.root {
            PNode::Parallel {
                det: false, left, ..
            } => match &**left {
                PNode::Split {
                    det: true, level, ..
                } => assert_eq!(*level, 0),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }
}
