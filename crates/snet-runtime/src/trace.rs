//! Stream tracing — the paper's debugging story made concrete.
//!
//! "Debugging the concurrent behaviour becomes rather straightforward
//! as all streams can be observed individually" (paper, Section 1).
//! [`TraceLog`] is a ready-made observer that records every record
//! crossing every component boundary, with its component path,
//! direction and record *type* (payloads stay opaque — this is the
//! coordination layer's view).

use crate::fault::{Fault, FaultObserver};
use crate::stream::{Dir, Observer};
use parking_lot::Mutex;
use snet_types::RecordType;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One observed record crossing.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Microseconds since the log was created.
    pub t_us: u128,
    /// Component path, e.g. `net/s1/starnd/stage3/box:solveOneLevel`.
    pub path: String,
    pub dir: Dir,
    /// The record's type (label set) at the crossing.
    pub rtype: RecordType,
}

/// One observed component fault (see [`crate::fault`]).
#[derive(Clone, Debug)]
pub struct FaultEntry {
    /// Microseconds since the log was created.
    pub t_us: u128,
    /// Faulting component path (or task name for component deaths).
    pub component: String,
    /// The panic message.
    pub msg: String,
    /// Whether the fault dropped a record (terminal skip) as opposed
    /// to a recovered restart or component death.
    pub dropped: bool,
}

/// A shared, thread-safe trace of stream activity.
pub struct TraceLog {
    start: Instant,
    entries: Mutex<Vec<TraceEntry>>,
    faults: Mutex<Vec<FaultEntry>>,
}

impl TraceLog {
    pub fn new() -> Arc<TraceLog> {
        Arc::new(TraceLog {
            start: Instant::now(),
            entries: Mutex::new(Vec::new()),
            faults: Mutex::new(Vec::new()),
        })
    }

    /// An [`Observer`] feeding this log; pass to
    /// [`crate::NetBuilder::observe`].
    pub fn observer(self: &Arc<Self>) -> Observer {
        let log = Arc::clone(self);
        Arc::new(move |path, dir, rec| {
            let entry = TraceEntry {
                t_us: log.start.elapsed().as_micros(),
                path: path.to_string(),
                dir,
                rtype: rec.record_type(),
            };
            log.entries.lock().push(entry);
        })
    }

    /// A [`FaultObserver`] feeding this log; pass to
    /// [`crate::NetBuilder::on_fault`]. Every contained fault —
    /// skipped records, recovered restarts, component deaths — lands
    /// as a [`FaultEntry`] alongside the stream trace.
    pub fn fault_observer(self: &Arc<Self>) -> FaultObserver {
        let log = Arc::clone(self);
        Arc::new(move |fault: &Fault| {
            let entry = FaultEntry {
                t_us: log.start.elapsed().as_micros(),
                component: fault.component.clone(),
                msg: fault.msg.clone(),
                dropped: fault.dropped.is_some(),
            };
            log.faults.lock().push(entry);
        })
    }

    /// A snapshot of all entries so far, in observation order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().clone()
    }

    /// A snapshot of all fault entries so far, in observation order.
    pub fn faults(&self) -> Vec<FaultEntry> {
        self.faults.lock().clone()
    }

    /// Entries whose component path contains `needle` — "observe one
    /// stream individually".
    pub fn for_stream(&self, needle: &str) -> Vec<TraceEntry> {
        self.entries
            .lock()
            .iter()
            .filter(|e| e.path.contains(needle))
            .cloned()
            .collect()
    }

    /// Per-component traffic counts (in, out).
    pub fn summary(&self) -> BTreeMap<String, (usize, usize)> {
        let mut m: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for e in self.entries.lock().iter() {
            let slot = m.entry(e.path.clone()).or_insert((0, 0));
            match e.dir {
                Dir::In => slot.0 += 1,
                Dir::Out => slot.1 += 1,
            }
        }
        m
    }

    /// Renders the log as text, one line per crossing, with `[FAULT]`
    /// lines appended for observed faults.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for e in self.entries.lock().iter() {
            let arrow = match e.dir {
                Dir::In => "<-",
                Dir::Out => "->",
            };
            let _ = writeln!(out, "[{:>9}us] {} {} {}", e.t_us, e.path, arrow, e.rtype);
        }
        for f in self.faults.lock().iter() {
            let _ = writeln!(
                out,
                "[{:>9}us] [FAULT] {} {}: {}",
                f.t_us,
                f.component,
                if f.dropped {
                    "dropped record"
                } else {
                    "no drop"
                },
                f.msg
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;
    use snet_types::Record;

    fn traced_net(log: &Arc<TraceLog>) -> crate::net::Net {
        NetBuilder::from_source(
            "box up (x) -> (x);
             net main = up .. [{x} -> {y=x}];",
        )
        .unwrap()
        .bind("up", |r, e| e.emit(r.clone()))
        .observe(log.observer())
        .build("main")
        .unwrap()
    }

    #[test]
    fn trace_captures_all_crossings() {
        let log = TraceLog::new();
        let net = traced_net(&log);
        for i in 0..3i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let _ = net.finish();
        let summary = log.summary();
        let box_stats = summary
            .iter()
            .find(|(k, _)| k.contains("box:up"))
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(box_stats, (3, 3));
        let filter_stats = summary
            .iter()
            .find(|(k, _)| k.contains("filter"))
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(filter_stats, (3, 3));
    }

    #[test]
    fn individual_stream_observation() {
        let log = TraceLog::new();
        let net = traced_net(&log);
        net.send(Record::build().field("x", 9i64).finish()).unwrap();
        let _ = net.finish();
        let filter_only = log.for_stream("filter");
        assert!(!filter_only.is_empty());
        assert!(filter_only.iter().all(|e| e.path.contains("filter")));
        // The filter's outputs carry the renamed label.
        assert!(filter_only
            .iter()
            .any(|e| e.dir == Dir::Out && e.rtype.to_string() == "{y}"));
    }

    #[test]
    fn render_is_line_oriented_and_timestamped() {
        let log = TraceLog::new();
        let net = traced_net(&log);
        net.send(Record::build().field("x", 1i64).finish()).unwrap();
        let _ = net.finish();
        let text = log.render();
        assert!(text.lines().count() >= 4);
        assert!(text.contains("us]"));
        assert!(text.contains("box:up"));
    }

    #[test]
    fn timestamps_are_monotone() {
        let log = TraceLog::new();
        let net = traced_net(&log);
        for i in 0..5i64 {
            net.send(Record::build().field("x", i).finish()).unwrap();
        }
        let _ = net.finish();
        let entries = log.entries();
        assert!(entries.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }
}
