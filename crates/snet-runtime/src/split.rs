//! Indexed parallel replication `A !! <tag>` and `A ! <tag>`.
//!
//! "The parallel replicator ... replicates network A infinitely far,
//! but this time the replicas are connected in parallel. ... All
//! incoming records must have the tag specified and the value of this
//! tag decides to which replica a record is sent. ... While the actual
//! number of replicas is adjusted by the runtime system on demand, it
//! is guaranteed that any two records whose replication tags have the
//! same (integer) value are sent to the same replica" (paper,
//! Section 4).
//!
//! Replicas are created lazily, one per distinct tag value observed —
//! this is what makes the Figure 3 throttle work: after
//! `[{<k>} -> {<k>=<k>%4}]` only four distinct values reach the
//! replicator, so at most four replicas unfold per stage.
//!
//! # Bounded lane namespace (opt-in)
//!
//! Branch paths embed the routing tag *value* (`.../branch{v}`), so a
//! service splitting on an unbounded tag domain (e.g. a session id)
//! grows the process-wide path interner without reclaim — the known
//! growth mode the `runtime/interner_paths` gauge observes. The
//! `NetBuilder::split_lanes(n)` knob caps it: tag values are hashed
//! into `n` lanes (`.../lane{i}`), so at most `n` replicas — and at
//! most `n` interned branch paths — exist per replicator, no matter
//! how many distinct values flow. The bound resolves **per
//! replicator**: `NetBuilder::split_lanes_for(tag, n)` binds a lane
//! count to one routing-tag name, winning over the net-global knob,
//! so a net can cap its session-id splitter without collapsing a
//! small fixed-domain splitter elsewhere (see
//! [`crate::ctx::Ctx::split_lanes_for`]). The paper's guarantee is
//! preserved
//! (equal tag values still always reach the same replica; hashing is
//! deterministic); what is given up is isolation *between* distinct
//! values that collide into one lane, which is exactly the trade the
//! Figure 3 modulo filter makes explicitly. Deterministic variants
//! are unaffected in output order: sort records re-establish input
//! order regardless of lane assignment.
//!
//! The per-record tag lookup itself is shape-keyed (PR 4): the tag's
//! value slot is resolved once per record shape and then read by
//! index, with no per-record label search.

use crate::ctx::Ctx;
use crate::instantiate::instantiate;
use crate::merge::{spawn_merge, BranchSpec, MergeMode, Watermark};
use crate::metrics::keys;
use crate::path::CompPath;
use crate::plan::PNode;
use crate::stream::{chan, for_each_msg, stream, Dir, Msg, Receiver, Sender};
use snet_types::{Label, Record};
use std::collections::HashMap;
use std::sync::Arc;

/// Hashes a routing-tag value into one of `n` lanes (deterministic
/// across runs and processes: a fixed splitmix64 finalizer, so lane
/// assignment — and therefore replica reuse — is reproducible).
pub fn lane_of(v: i64, n: u32) -> i64 {
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % u64::from(n.max(1))) as i64
}

/// The indexed replicator's per-record classification — the split
/// half of the dispatch core shared between the standalone
/// dispatcher task and the fused-fan driver ([`crate::fused`]): a
/// shape-cached routing-tag slot read plus the optional lane hash.
/// Equal tag values always map to equal keys, so replica affinity —
/// and the branch path namespace — is identical however the
/// replicator executes.
pub(crate) struct TagDispatch {
    tag: Label,
    lanes: Option<u32>,
    /// Routing-tag slot per record shape: resolved once per shape,
    /// then a direct value-array read (streams are overwhelmingly
    /// shape-monomorphic, so a one-entry cache suffices; a shape
    /// change just re-resolves).
    tag_slot: Option<(u32, Option<usize>)>,
}

impl TagDispatch {
    pub(crate) fn new(ctx: &Ctx, tag: Label) -> TagDispatch {
        TagDispatch {
            tag,
            lanes: ctx.split_lanes_for(tag.name()),
            tag_slot: None,
        }
    }

    /// The branch key for a record: the raw tag value, or its lane
    /// hash under a bounded lane namespace. Panics (a routing error)
    /// on a record without the tag — `dpath` names the replicator in
    /// the message.
    pub(crate) fn key(&mut self, rec: &Record, dpath: CompPath) -> i64 {
        let sid = rec.shape().id();
        let slot = match self.tag_slot {
            Some((cached, slot)) if cached == sid => slot,
            _ => {
                let slot = rec.shape().tag_index(self.tag);
                self.tag_slot = Some((sid, slot));
                slot
            }
        };
        let tag = self.tag;
        let v = slot.map(|i| rec.tag_value_at(i)).unwrap_or_else(|| {
            panic!(
                "record {rec:?} reached parallel replicator at '{dpath}' without \
                 routing tag {tag}"
            )
        });
        match self.lanes {
            Some(n) => lane_of(v, n),
            None => v,
        }
    }

    /// The branch path segment for `key` — built once per unfolded
    /// replica, never per record.
    pub(crate) fn seg(&self, key: i64) -> String {
        match self.lanes {
            Some(_) => format!("lane{key}"),
            None => format!("branch{key}"),
        }
    }
}

/// Spawns an indexed parallel replicator; returns its output stream.
pub fn spawn_split(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    inner: &Arc<PNode>,
    tag: Label,
    det: bool,
    level: u32,
    input: Receiver,
) -> Receiver {
    let comb = path.into().child(if det { "split" } else { "splitnd" });
    let (ctl_tx, ctl_rx) = chan::channel::<BranchSpec>();
    let (out_tx, out_rx) = ctx.data_stream(comb, "merge");
    let mode = if det {
        MergeMode::Det { level }
    } else {
        MergeMode::NonDet
    };
    // The "spine": a permanent pseudo-branch carrying every sort record
    // straight from the dispatcher to the merger. Without it, sorts
    // broadcast while no replica exists yet would vanish, deadlocking
    // any enclosing deterministic scope waiting on the barrier.
    let (spine_tx, spine_rx) = stream();
    spawn_merge(
        ctx,
        comb,
        mode,
        vec![BranchSpec::new(spine_rx)],
        ctl_rx,
        out_tx,
    );

    // Dispatcher: counters are registered once at spawn; the record
    // loop's only per-record work is a shape-keyed tag-slot read and
    // a branch-map hit. Path/metric strings are only built on the
    // demand-driven replica unfolding path (once per distinct tag
    // value, or per lane when the lane namespace is bounded).
    let ctx2 = Arc::clone(ctx);
    let inner = Arc::clone(inner);
    let dpath = comb;
    let mut route = TagDispatch::new(ctx, tag);
    // When replica input edges are bounded, data routes through the
    // credit gate (an async path), so the dispatcher runs a
    // per-message loop instead of the batched closure drain. Sort
    // broadcasts stay on the ungated `send` path either way: a det
    // round boundary must reach *every* replica — including the ones
    // the merger is not currently draining — without waiting.
    let gated = ctx.edge_bounded("dispatch");
    let records_in = ctx.metrics.handle_at(dpath, keys::RECORDS_IN);
    let branches_created = ctx.metrics.handle_at(dpath, keys::BRANCHES);
    if gated {
        ctx.spawn(format!("{dpath}/dispatch"), async move {
            let mut branches: HashMap<i64, Sender> = HashMap::new();
            let mut watermark = Watermark::new();
            let mut counter: u64 = 0;
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    Msg::Rec(rec) => {
                        if ctx2.has_observers() {
                            ctx2.observe(dpath, Dir::In, &rec);
                        }
                        records_in.inc(1);
                        let key = route.key(&rec, dpath);
                        let branch_tx = branches.entry(key).or_insert_with(|| {
                            let bpath = dpath.child(&route.seg(key));
                            let (btx, brx) = ctx2.data_stream(bpath, "dispatch");
                            let replica_out = instantiate(&ctx2, &inner, bpath, brx);
                            branches_created.inc(1);
                            let _ = ctl_tx.send(BranchSpec {
                                rx: replica_out,
                                watermark: watermark.clone(),
                            });
                            btx
                        });
                        // A full replica edge parks the dispatcher here
                        // — and transitively everything upstream —
                        // instead of growing the replica's queue.
                        let _ = branch_tx.feed(Msg::Rec(rec)).await;
                        if det {
                            let sort = Msg::Sort { level, counter };
                            for tx in branches.values() {
                                let _ = tx.send(sort.clone());
                            }
                            let _ = spine_tx.send(sort);
                            watermark.insert(level, counter + 1);
                            counter += 1;
                        }
                    }
                    Msg::Sort {
                        level: l,
                        counter: c,
                    } => {
                        for tx in branches.values() {
                            let _ = tx.send(Msg::Sort {
                                level: l,
                                counter: c,
                            });
                        }
                        let _ = spine_tx.send(Msg::Sort {
                            level: l,
                            counter: c,
                        });
                        watermark.insert(l, c + 1);
                    }
                }
            }
        });
        return out_rx;
    }
    ctx.spawn(format!("{dpath}/dispatch"), async move {
        let mut branches: HashMap<i64, Sender> = HashMap::new();
        // Sorts broadcast so far, per level: the watermark handed to
        // replicas created later (they will never see earlier sorts).
        let mut watermark = Watermark::new();
        let mut counter: u64 = 0;
        for_each_msg(input, |msg| match msg {
            Msg::Rec(rec) => {
                if ctx2.has_observers() {
                    ctx2.observe(dpath, Dir::In, &rec);
                }
                records_in.inc(1);
                // With a bounded lane namespace, the branch key is the
                // lane index; equal tag values still hash to the same
                // lane, preserving the paper's same-value-same-replica
                // guarantee.
                let key = route.key(&rec, dpath);
                let branch_tx = branches.entry(key).or_insert_with(|| {
                    // Demand-driven unfolding of a fresh replica.
                    let (btx, brx) = stream();
                    let replica_out = instantiate(&ctx2, &inner, dpath.child(&route.seg(key)), brx);
                    branches_created.inc(1);
                    // Register the tap before any subsequent sort
                    // broadcast so the merger can account for it.
                    let _ = ctl_tx.send(BranchSpec {
                        rx: replica_out,
                        watermark: watermark.clone(),
                    });
                    btx
                });
                let _ = branch_tx.send(Msg::Rec(rec));
                if det {
                    let sort = Msg::Sort { level, counter };
                    for tx in branches.values() {
                        let _ = tx.send(sort.clone());
                    }
                    let _ = spine_tx.send(sort);
                    watermark.insert(level, counter + 1);
                    counter += 1;
                }
            }
            Msg::Sort {
                level: l,
                counter: c,
            } => {
                // Outer sorts: broadcast to every live replica (and
                // the spine) and remember for future replicas'
                // watermarks.
                for tx in branches.values() {
                    let _ = tx.send(Msg::Sort {
                        level: l,
                        counter: c,
                    });
                }
                let _ = spine_tx.send(Msg::Sort {
                    level: l,
                    counter: c,
                });
                watermark.insert(l, c + 1);
            }
        })
        .await;
        // EOS: branch senders and the control sender drop here.
    });

    out_rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile, Bindings};
    use snet_lang::{parse_net_expr, parse_program};
    use snet_types::Record;

    fn ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    /// `mark (x) -> (x, y)` records which replica (by first tag value
    /// seen) processed each record, by echoing a thread-local id.
    fn mark_plan(det: bool) -> (Arc<Ctx>, crate::plan::Plan) {
        let env = parse_program("box mark (x) -> (x, y);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("mark", |r, e| {
            // Replica identity: boxes are stateless in S-Net, but the
            // *thread* is a fine identity proxy for tests.
            let tid = format!("{:?}", std::thread::current().id());
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(
                Record::build()
                    .field("x", x)
                    .field("y", tid.as_str())
                    .finish(),
            );
        });
        let src = if det { "mark ! <k>" } else { "mark !! <k>" };
        let ast = parse_net_expr(src).unwrap();
        (ctx(), compile(&ast, &env, &b).unwrap())
    }

    #[test]
    fn same_tag_value_same_replica() {
        // Replica identity is the interned branch *path* (observed at
        // the box boundary) — not the OS thread, which is an executor
        // detail: under a work-stealing pool one replica's task
        // migrates between workers.
        let seen: Arc<parking_lot::Mutex<Vec<(i64, String)>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let obs: crate::stream::Observer = Arc::new(move |path, dir, rec| {
            if dir == crate::stream::Dir::In && path.contains("box:mark") {
                seen2.lock().push((rec.tag("k").unwrap(), path.to_string()));
            }
        });
        let env = parse_program("box mark (x) -> (x, y);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("mark", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            e.emit(Record::build().field("x", x).field("y", x).finish());
        });
        let ast = parse_net_expr("mark !! <k>").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = Ctx::new(Metrics::new(), vec![obs]);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..30i64 {
            tx.send(Msg::Rec(
                Record::build().field("x", i).tag("k", i % 3).finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 30);
        // Exactly three replicas were created.
        assert_eq!(ctx.metrics.sum_matching(keys::BRANCHES), 3);
        // All records with the same k entered the same replica path,
        // and distinct ks used distinct replicas.
        let mut by_k: HashMap<i64, std::collections::BTreeSet<String>> = HashMap::new();
        for (k, path) in seen.lock().iter() {
            by_k.entry(*k).or_default().insert(path.clone());
        }
        assert_eq!(by_k.len(), 3);
        let mut all_paths = std::collections::BTreeSet::new();
        for (k, paths) in by_k {
            assert_eq!(paths.len(), 1, "tag value {k} used multiple replicas");
            all_paths.extend(paths);
        }
        assert_eq!(all_paths.len(), 3, "replicas were shared across tags");
    }

    #[test]
    fn replicas_unfold_on_demand_only() {
        let (ctx, plan) = mark_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        // A single tag value: exactly one replica, no matter how many
        // records.
        for i in 0..10i64 {
            tx.send(Msg::Rec(
                Record::build().field("x", i).tag("k", 42).finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 10);
        assert_eq!(ctx.metrics.sum_matching(keys::BRANCHES), 1);
    }

    #[test]
    fn routing_tag_flow_inherits_through_replica() {
        // The tag is not consumed by the inner box (not in its input
        // type), so it must reappear on outputs via flow inheritance.
        let (ctx, plan) = mark_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(
            Record::build().field("x", 1i64).tag("k", 7).finish(),
        ))
        .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs[0].tag("k"), Some(7));
    }

    #[test]
    fn missing_tag_panics() {
        let (ctx, plan) = mark_plan(false);
        let (tx, in_rx) = stream();
        let _out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }

    #[test]
    fn det_split_preserves_input_order() {
        let (ctx, plan) = mark_plan(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..50i64 {
            tx.send(Msg::Rec(
                Record::build().field("x", i).tag("k", i % 5).finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let xs: Vec<i64> = recs
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(xs, (0..50).collect::<Vec<_>>());
        assert_eq!(ctx.metrics.sum_matching(keys::BRANCHES), 5);
    }

    #[test]
    fn negative_tag_values_route_correctly() {
        // Tag values are arbitrary integers; negative lanes must work.
        let (ctx, plan) = mark_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..12i64 {
            tx.send(Msg::Rec(
                Record::build()
                    .field("x", i)
                    .tag("k", -(i % 3) - 1)
                    .finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 12);
        assert_eq!(ctx.metrics.sum_matching(keys::BRANCHES), 3);
    }

    #[test]
    fn det_split_with_zero_records_terminates() {
        // EOS before any record: the spine lets the merger terminate
        // cleanly with zero replicas.
        let (ctx, plan) = mark_plan(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert!(recs.is_empty());
        assert_eq!(ctx.metrics.sum_matching(keys::BRANCHES), 0);
    }

    #[test]
    fn det_split_single_lane_is_fifo() {
        let (ctx, plan) = mark_plan(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..100i64 {
            tx.send(Msg::Rec(Record::build().field("x", i).tag("k", 0).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let xs: Vec<i64> = recs
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nondet_split_preserves_per_replica_order() {
        let (ctx, plan) = mark_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..60i64 {
            tx.send(Msg::Rec(
                Record::build().field("x", i).tag("k", i % 2).finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        for kv in 0..2 {
            let xs: Vec<i64> = recs
                .iter()
                .filter(|r| r.tag("k") == Some(kv))
                .map(|r| r.field("x").unwrap().as_int().unwrap())
                .collect();
            let mut sorted = xs.clone();
            sorted.sort();
            assert_eq!(xs, sorted, "per-replica order violated for k={kv}");
        }
    }
}
