//! Runtime metrics: handle-based counters behind a string-queryable
//! registry.
//!
//! The paper argues about its networks through *structural bounds*:
//! Figure 1's pipeline "cannot lead to pipelines longer than 81
//! replicas", Figure 2 guarantees "a maximum of 9 × 81 = 729
//! solveOneLevel boxes", Figure 3's modulo filter "implicitly limits
//! the parallel unfolding to a maximum of 4 instances". The metrics
//! registry makes those bounds *measurable*: every component counts
//! records and replicas, and the experiment harness asserts the
//! paper's numbers instead of eyeballing them.
//!
//! # Design: register at spawn, count through handles
//!
//! Counting must not be what the coordination layer spends its time
//! on. The registry therefore splits the two rates apart:
//!
//! * **Registration** happens once per component at spawn time:
//!   [`Metrics::handle`] interns the full key (component path +
//!   metric name) into a `BTreeMap` under a mutex and returns a
//!   [`Counter`] — a cloned `Arc<AtomicU64>` pointing at the
//!   registered cell. Registering the same key twice returns handles
//!   to the *same* cell, so dynamically re-spawned components
//!   accumulate rather than reset.
//! * **Counting** happens per record through the handle: a single
//!   relaxed `fetch_add`/`fetch_max`, no lock, no allocation, no
//!   string formatting. Relaxed ordering is sufficient — counters are
//!   independent monotone quantities, and every reader takes the
//!   registry lock, which synchronizes with the component threads'
//!   channel operations at termination.
//! * **Queries** ([`Metrics::get`], [`Metrics::sum_matching`], ...)
//!   take the registry lock and read the atomics. They observe
//!   counters registered *after* the network started (replicators
//!   spawn components dynamically), because registration inserts into
//!   the same map queries iterate.
//!
//! The string-keyed [`Metrics::inc`]/[`Metrics::max`] API is kept for
//! call sites outside the record loop (and as the comparison baseline
//! in the `runtime_primitives` bench); it pays the registry lock per
//! call and allocates on first use of a key.
//!
//! # Sharding
//!
//! Registration used to serialise on a single registry mutex — fine
//! for static networks, but mass dynamic unfolding (a thousand split
//! replicas appearing at once, each registering several counters at
//! spawn) turns one mutex into a thundering herd. The registry is
//! therefore split into [`SHARD_COUNT`] shards selected by a hash of
//! the key's component-path prefix (everything before the final `/`):
//! concurrent registrations of *different* components take *different*
//! locks, while all counters of one component stay in one shard.
//! Queries aggregate across shards; key order is preserved because
//! each shard is itself a `BTreeMap` and aggregate views re-merge.

use crate::path::CompPath;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of registry shards (a power of two; 16 is plenty beyond the
/// worker counts this runtime targets).
const SHARD_COUNT: usize = 16;

/// FNV-1a over the component-path prefix of a key (up to the last
/// `/`, so `net/box:f/records_in` and `net/box:f/records_out` land in
/// the same shard while different components spread).
fn shard_of(key: &str) -> usize {
    let prefix = key.rsplit_once('/').map(|(p, _)| p).unwrap_or(key);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prefix.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

/// A registered counter: one atomic cell shared with the registry.
/// Cloning is cheap (an `Arc` bump) and clones address the same cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta`. Lock-free, allocation-free.
    #[inline]
    pub fn inc(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the counter to at least `v` (high-water marks such as
    /// pipeline depth). Lock-free, allocation-free.
    #[inline]
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Shared metrics registry for one running network (sharded; see
/// module docs).
#[derive(Default)]
pub struct Metrics {
    shards: [Mutex<BTreeMap<String, Arc<AtomicU64>>>; SHARD_COUNT],
}

impl Metrics {
    pub fn new() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    /// Registers (or re-attaches to) the counter under `key` and
    /// returns its handle. Spawn-time API: this takes the key's shard
    /// lock and may allocate; per-record code must go through the
    /// returned [`Counter`] instead.
    pub fn handle(&self, key: impl AsRef<str>) -> Counter {
        let mut m = self.shards[shard_of(key.as_ref())].lock();
        let cell = match m.get(key.as_ref()) {
            Some(cell) => Arc::clone(cell),
            None => {
                let cell = Arc::new(AtomicU64::new(0));
                m.insert(key.as_ref().to_string(), Arc::clone(&cell));
                cell
            }
        };
        Counter(cell)
    }

    /// [`Metrics::handle`] under the conventional `{path}/{name}` key.
    pub fn handle_at(&self, path: CompPath, name: &str) -> Counter {
        self.handle(format!("{path}/{name}"))
    }

    /// Adds `delta` to a counter by key (legacy string-keyed path:
    /// takes the registry lock per call).
    pub fn inc(&self, key: impl AsRef<str>, delta: u64) {
        self.handle(key).inc(delta);
    }

    /// Raises a counter to at least `v` by key (legacy string-keyed
    /// path).
    pub fn max(&self, key: impl AsRef<str>, v: u64) {
        self.handle(key).max(v);
    }

    /// Reads one counter (0 when absent).
    pub fn get(&self, key: impl AsRef<str>) -> u64 {
        self.shards[shard_of(key.as_ref())]
            .lock()
            .get(key.as_ref())
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Folds over every `(key, value)` pair, shard by shard. Queries
    /// observe counters registered after the network started
    /// (replicators spawn components dynamically).
    fn fold<A>(&self, init: A, mut f: impl FnMut(A, &str, u64) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let m = shard.lock();
            for (k, v) in m.iter() {
                acc = f(acc, k, v.load(Ordering::Relaxed));
            }
        }
        acc
    }

    /// Sum of all counters whose key contains `needle`.
    pub fn sum_matching(&self, needle: &str) -> u64 {
        self.fold(
            0u64,
            |acc, k, v| if k.contains(needle) { acc + v } else { acc },
        )
    }

    /// Maximum over all counters whose key contains `needle`.
    pub fn max_matching(&self, needle: &str) -> u64 {
        self.fold(
            0u64,
            |acc, k, v| if k.contains(needle) { acc.max(v) } else { acc },
        )
    }

    /// Number of distinct counters whose key contains `needle`.
    pub fn count_matching(&self, needle: &str) -> usize {
        self.fold(
            0usize,
            |acc, k, _| if k.contains(needle) { acc + 1 } else { acc },
        )
    }

    /// A stable snapshot of all counters (key-sorted: shards re-merge
    /// into one `BTreeMap`).
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.fold(BTreeMap::new(), |mut acc, k, v| {
            acc.insert(k.to_string(), v);
            acc
        })
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        writeln!(f, "Metrics ({} counters):", snap.len())?;
        for (k, v) in snap.iter() {
            writeln!(f, "  {k} = {v}")?;
        }
        Ok(())
    }
}

/// Well-known metric name suffixes used across the runtime.
pub mod keys {
    /// A component instance was spawned.
    pub const SPAWNED: &str = "spawned";
    /// Records consumed from the input stream.
    pub const RECORDS_IN: &str = "records_in";
    /// Records produced to the output stream.
    pub const RECORDS_OUT: &str = "records_out";
    /// Replicas created by a serial replicator (pipeline depth).
    pub const STAGES: &str = "stages";
    /// Branches created by an indexed parallel replicator.
    pub const BRANCHES: &str = "branches";
    /// Records that left through a star's exit tap.
    pub const EXITS: &str = "exits";
    /// Gauge (full key, not a suffix): high-water mark of the
    /// process-wide component-path interner, sampled at network spawn
    /// and finish. Distinct paths are leaked by design (see
    /// `crate::path`); this makes the growth observable.
    pub const INTERNER_PATHS: &str = "runtime/interner_paths";
    /// High-water mark of queued messages on one bounded edge
    /// (suffix, keyed `{path}/stream_depth`; also mirrored into
    /// [`STREAM_DEPTH_GLOBAL`]).
    pub const STREAM_DEPTH: &str = "stream_depth";
    /// Producer park episodes awaiting credit on one bounded edge
    /// (suffix, keyed `{path}/credit_stalls`; also mirrored into
    /// [`CREDIT_STALLS_GLOBAL`]).
    pub const CREDIT_STALLS: &str = "credit_stalls";
    /// Gauge (full key): net-global high-water queue depth across all
    /// bounded edges.
    pub const STREAM_DEPTH_GLOBAL: &str = "runtime/stream_depth";
    /// Counter (full key): net-global credit stalls across all
    /// bounded edges.
    pub const CREDIT_STALLS_GLOBAL: &str = "runtime/credit_stalls";
    /// Counter (full key): requests accepted by a [`crate::serve`]
    /// front door (tagged and injected into the network).
    pub const SERVE_REQUESTS: &str = "serve/requests";
    /// Counter (full key): requests completed with their full
    /// response (every expected record correlated back).
    pub const SERVE_COMPLETED: &str = "serve/completed";
    /// Counter (full key): egress records that could not be
    /// correlated to a pending request — a record that lost its
    /// request-id tag (misrouted) or arrived after its caller gave up
    /// (late). A healthy service holds this at zero apart from
    /// deliberately abandoned calls.
    pub const SERVE_STRAY: &str = "serve/stray";
    /// Gauge (full key): high-water mark of concurrently in-flight
    /// requests at the serve front door.
    pub const SERVE_INFLIGHT: &str = "serve/inflight";
    /// Counter (full key): fault incidents across the net — one per
    /// faulted record (skipped or recovered-by-restart) or dead
    /// component, not per retry attempt. See [`crate::fault`].
    pub const COMPONENT_PANICS: &str = "runtime/component_panics";
    /// Counter (full key): panics injected by the chaos layer (one
    /// per poisoned record; see [`crate::ChaosConfig`]).
    pub const CHAOS_INJECTED: &str = "runtime/chaos_injected";
    /// Fault incidents at one component (suffix, keyed
    /// `{path}/panics`).
    pub const PANICS: &str = "panics";
    /// Poison records dropped at one guarded stage (suffix, keyed
    /// `{path}/records_skipped`; terminal skips only — a record
    /// recovered by restart is not skipped).
    pub const RECORDS_SKIPPED: &str = "records_skipped";
    /// Restart attempts at one guarded stage (suffix, keyed
    /// `{path}/restarts`; one per retry, so a record that needed two
    /// attempts counts one restart).
    pub const RESTARTS: &str = "restarts";
    /// Counter (full key): serve requests resolved as
    /// [`crate::CallError::Faulted`] because a component fault
    /// dropped one of their records.
    pub const SERVE_FAULTED: &str = "serve/faulted";
    /// Counter (full key): panics of the serve demux thread itself
    /// (each fails all open slots with `ServiceStopped` — callers are
    /// never stranded).
    pub const SERVE_DEMUX_PANICS: &str = "serve/demux_panics";
    /// Counter (full key): calls served from a recycled completion
    /// slot instead of a fresh allocation (the serve front door keeps
    /// a small free list; see `serve::service`).
    pub const SERVE_SLOT_REUSE: &str = "serve/slot_reuse";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_roundtrip() {
        let m = Metrics::new();
        m.inc("a/b", 1);
        m.inc("a/b", 2);
        assert_eq!(m.get("a/b"), 3);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn max_is_high_water_mark() {
        let m = Metrics::new();
        m.max("depth", 5);
        m.max("depth", 3);
        assert_eq!(m.get("depth"), 5);
        m.max("depth", 9);
        assert_eq!(m.get("depth"), 9);
    }

    #[test]
    fn matching_aggregates() {
        let m = Metrics::new();
        m.inc("net/stage0/box:solve/records_in", 4);
        m.inc("net/stage1/box:solve/records_in", 6);
        m.inc("net/stage1/box:other/records_in", 100);
        assert_eq!(m.sum_matching("box:solve/"), 10);
        assert_eq!(m.max_matching("box:solve/"), 6);
        assert_eq!(m.count_matching("box:solve/"), 2);
        assert_eq!(m.sum_matching("zzz"), 0);
        assert_eq!(m.max_matching("zzz"), 0);
    }

    #[test]
    fn concurrent_increments_are_consistent() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.inc("hot", 1);
                    }
                });
            }
        });
        assert_eq!(m.get("hot"), 8000);
    }

    #[test]
    fn snapshot_is_stable_copy() {
        let m = Metrics::new();
        m.inc("x", 1);
        let snap = m.snapshot();
        m.inc("x", 1);
        assert_eq!(snap.get("x"), Some(&1));
        assert_eq!(m.get("x"), 2);
    }

    #[test]
    fn handle_and_string_key_share_one_cell() {
        let m = Metrics::new();
        let h = m.handle("net/box:f/records_in");
        h.inc(3);
        m.inc("net/box:f/records_in", 2);
        assert_eq!(m.get("net/box:f/records_in"), 5);
        assert_eq!(h.get(), 5);
        // A second handle for the same key attaches to the same cell.
        let h2 = m.handle("net/box:f/records_in");
        h2.inc(1);
        assert_eq!(h.get(), 6);
    }

    #[test]
    fn handle_at_uses_path_name_convention() {
        let m = Metrics::new();
        let p = CompPath::root("net").child("box:g");
        let h = m.handle_at(p, keys::RECORDS_OUT);
        h.inc(7);
        assert_eq!(m.get("net/box:g/records_out"), 7);
        assert_eq!(m.sum_matching("box:g/"), 7);
    }

    #[test]
    fn concurrent_handle_increments_are_consistent() {
        let m = Metrics::new();
        let h = m.handle("hot");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.inc(1);
                    }
                });
            }
        });
        assert_eq!(m.get("hot"), 8000);
        assert_eq!(h.get(), 8000);
    }

    #[test]
    fn queries_see_counters_registered_later() {
        let m = Metrics::new();
        m.handle("a/records_in").inc(1);
        assert_eq!(m.count_matching("records_in"), 1);
        // A component spawned after the first query (dynamic replica).
        m.handle("b/records_in").inc(4);
        assert_eq!(m.count_matching("records_in"), 2);
        assert_eq!(m.sum_matching("records_in"), 5);
    }

    #[test]
    fn sharded_registration_is_consistent_across_shards() {
        // Mass registration from many threads with distinct component
        // paths (the dynamic-unfolding shape sharding exists for):
        // every counter must be registered exactly once and visible to
        // aggregate queries.
        let m = Metrics::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..200 {
                        let path = format!("net/split/branch{}/box:f", t * 200 + i);
                        m.handle(format!("{path}/records_in")).inc(1);
                        m.handle(format!("{path}/spawned")).inc(1);
                    }
                });
            }
        });
        assert_eq!(m.count_matching("records_in"), 1600);
        assert_eq!(m.sum_matching("records_in"), 1600);
        assert_eq!(m.sum_matching("spawned"), 1600);
        assert_eq!(m.snapshot().len(), 3200);
        // Same-component counters share a shard; cross-shard reads
        // still resolve individual keys.
        assert_eq!(m.get("net/split/branch0/box:f/records_in"), 1);
    }

    #[test]
    fn snapshot_is_key_sorted_across_shards() {
        let m = Metrics::new();
        for k in ["z/one", "a/two", "m/three", "a/zzz"] {
            m.inc(k, 1);
        }
        let keys: Vec<String> = m.snapshot().into_keys().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn handle_max_is_high_water_mark() {
        let m = Metrics::new();
        let h = m.handle("stages");
        h.max(4);
        h.max(2);
        assert_eq!(h.get(), 4);
        h.max(9);
        assert_eq!(m.get("stages"), 9);
    }
}
