//! Runtime metrics.
//!
//! The paper argues about its networks through *structural bounds*:
//! Figure 1's pipeline "cannot lead to pipelines longer than 81
//! replicas", Figure 2 guarantees "a maximum of 9 × 81 = 729
//! solveOneLevel boxes", Figure 3's modulo filter "implicitly limits
//! the parallel unfolding to a maximum of 4 instances". The metrics
//! registry makes those bounds *measurable*: every component increments
//! named counters, and the experiment harness asserts the paper's
//! numbers instead of eyeballing them.
//!
//! Counters are keyed by component path (e.g.
//! `net/star/stage3/split/branch2/box:solveOneLevel`) plus a metric
//! name. A mutex-protected map is plenty: counter updates are per
//! record, and records are coarse-grained messages.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Shared metrics registry for one running network.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
}

impl Metrics {
    pub fn new() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    /// Adds `delta` to a counter.
    pub fn inc(&self, key: impl AsRef<str>, delta: u64) {
        let mut m = self.counters.lock();
        *m.entry(key.as_ref().to_string()).or_insert(0) += delta;
    }

    /// Sets a counter to the maximum of its current value and `v`
    /// (used for high-water marks such as pipeline depth).
    pub fn max(&self, key: impl AsRef<str>, v: u64) {
        let mut m = self.counters.lock();
        let e = m.entry(key.as_ref().to_string()).or_insert(0);
        *e = (*e).max(v);
    }

    /// Reads one counter (0 when absent).
    pub fn get(&self, key: impl AsRef<str>) -> u64 {
        self.counters.lock().get(key.as_ref()).copied().unwrap_or(0)
    }

    /// Sum of all counters whose key contains `needle`.
    pub fn sum_matching(&self, needle: &str) -> u64 {
        self.counters
            .lock()
            .iter()
            .filter(|(k, _)| k.contains(needle))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Maximum over all counters whose key contains `needle`.
    pub fn max_matching(&self, needle: &str) -> u64 {
        self.counters
            .lock()
            .iter()
            .filter(|(k, _)| k.contains(needle))
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// Number of distinct counters whose key contains `needle`.
    pub fn count_matching(&self, needle: &str) -> usize {
        self.counters
            .lock()
            .iter()
            .filter(|(k, _)| k.contains(needle))
            .count()
    }

    /// A stable snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.counters.lock().clone()
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.counters.lock();
        writeln!(f, "Metrics ({} counters):", m.len())?;
        for (k, v) in m.iter() {
            writeln!(f, "  {k} = {v}")?;
        }
        Ok(())
    }
}

/// Well-known metric name suffixes used across the runtime.
pub mod keys {
    /// A component instance was spawned.
    pub const SPAWNED: &str = "spawned";
    /// Records consumed from the input stream.
    pub const RECORDS_IN: &str = "records_in";
    /// Records produced to the output stream.
    pub const RECORDS_OUT: &str = "records_out";
    /// Replicas created by a serial replicator (pipeline depth).
    pub const STAGES: &str = "stages";
    /// Branches created by an indexed parallel replicator.
    pub const BRANCHES: &str = "branches";
    /// Records that left through a star's exit tap.
    pub const EXITS: &str = "exits";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_get_roundtrip() {
        let m = Metrics::new();
        m.inc("a/b", 1);
        m.inc("a/b", 2);
        assert_eq!(m.get("a/b"), 3);
        assert_eq!(m.get("missing"), 0);
    }

    #[test]
    fn max_is_high_water_mark() {
        let m = Metrics::new();
        m.max("depth", 5);
        m.max("depth", 3);
        assert_eq!(m.get("depth"), 5);
        m.max("depth", 9);
        assert_eq!(m.get("depth"), 9);
    }

    #[test]
    fn matching_aggregates() {
        let m = Metrics::new();
        m.inc("net/stage0/box:solve/records_in", 4);
        m.inc("net/stage1/box:solve/records_in", 6);
        m.inc("net/stage1/box:other/records_in", 100);
        assert_eq!(m.sum_matching("box:solve/"), 10);
        assert_eq!(m.max_matching("box:solve/"), 6);
        assert_eq!(m.count_matching("box:solve/"), 2);
        assert_eq!(m.sum_matching("zzz"), 0);
        assert_eq!(m.max_matching("zzz"), 0);
    }

    #[test]
    fn concurrent_increments_are_consistent() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.inc("hot", 1);
                    }
                });
            }
        });
        assert_eq!(m.get("hot"), 8000);
    }

    #[test]
    fn snapshot_is_stable_copy() {
        let m = Metrics::new();
        m.inc("x", 1);
        let snap = m.snapshot();
        m.inc("x", 1);
        assert_eq!(snap.get("x"), Some(&1));
        assert_eq!(m.get("x"), 2);
    }
}
