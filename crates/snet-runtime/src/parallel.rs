//! Parallel composition `A || B` and `A | B`.
//!
//! "Parallel combination constructs a network where all incoming
//! records are either sent to A or to B and the resulting record
//! streams are merged to form the overall output stream. ... Any
//! incoming record is directed towards the subnetwork whose input type
//! better matches the type of the record itself. If both branches
//! match equally well, one is selected non-deterministically" (paper,
//! Section 4).

use crate::ctx::Ctx;
use crate::instantiate::instantiate;
use crate::merge::{spawn_merge, BranchSpec, MergeMode};
use crate::metrics::keys;
use crate::plan::PNode;
use crate::stream::{stream, Dir, Msg, Receiver};
use snet_types::NetSig;
use std::sync::Arc;

/// Spawns a parallel composition; returns its output stream.
#[allow(clippy::too_many_arguments)]
pub fn spawn_parallel(
    ctx: &Arc<Ctx>,
    path: &str,
    left: &Arc<PNode>,
    right: &Arc<PNode>,
    left_sig: &NetSig,
    right_sig: &NetSig,
    det: bool,
    level: u32,
    input: Receiver,
) -> Receiver {
    let comb = format!("{path}/{}", if det { "par" } else { "parnd" });
    let (ltx, lrx) = stream();
    let (rtx, rrx) = stream();
    let left_out = instantiate(ctx, left, &format!("{comb}/L"), lrx);
    let right_out = instantiate(ctx, right, &format!("{comb}/R"), rrx);

    // Static two-branch merge: the control channel is closed
    // immediately.
    let (ctl_tx, ctl_rx) = crossbeam::channel::unbounded::<BranchSpec>();
    drop(ctl_tx);
    let (out_tx, out_rx) = stream();
    let mode = if det {
        MergeMode::Det { level }
    } else {
        MergeMode::NonDet
    };
    spawn_merge(
        ctx,
        &comb,
        mode,
        vec![BranchSpec::new(left_out), BranchSpec::new(right_out)],
        ctl_rx,
        out_tx,
    );

    // Dispatcher.
    let ctx2 = Arc::clone(ctx);
    let lsig = left_sig.clone();
    let rsig = right_sig.clone();
    let dpath = comb.clone();
    ctx.spawn(format!("{comb}/dispatch"), move || {
        let mut counter: u64 = 0;
        let mut flip = false;
        while let Ok(msg) = input.recv() {
            match msg {
                Msg::Rec(rec) => {
                    if ctx2.has_observers() {
                        ctx2.observe(&dpath, Dir::In, &rec);
                    }
                    ctx2.metrics.inc(format!("{dpath}/{}", keys::RECORDS_IN), 1);
                    let rt = rec.record_type();
                    let sl = lsig.match_score(&rt);
                    let sr = rsig.match_score(&rt);
                    let go_left = match (sl, sr) {
                        (Some(a), Some(b)) if a == b => {
                            // Equal match: non-deterministic choice.
                            flip = !flip;
                            flip
                        }
                        (Some(a), Some(b)) => a > b,
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => panic!(
                            "record {rec:?} matches neither branch of parallel composition \
                             at '{dpath}' (left {}, right {})",
                            lsig.input_type(),
                            rsig.input_type()
                        ),
                    };
                    let target = if go_left { &ltx } else { &rtx };
                    ctx2.metrics.inc(
                        format!("{dpath}/{}", if go_left { "routed_left" } else { "routed_right" }),
                        1,
                    );
                    let _ = target.send(Msg::Rec(rec));
                    if det {
                        let sort = Msg::Sort { level, counter };
                        let _ = ltx.send(sort.clone());
                        let _ = rtx.send(sort);
                        counter += 1;
                    }
                }
                sort @ Msg::Sort { .. } => {
                    // Outer sorts are broadcast to both branches.
                    let _ = ltx.send(sort.clone());
                    let _ = rtx.send(sort);
                }
            }
        }
        // EOS: dropping both senders propagates.
    });

    out_rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile, Bindings};
    use snet_lang::{parse_net_expr, parse_program};
    use snet_types::Record;

    fn ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    /// Two boxes with different input types: `pick_a (a) -> (ra)`,
    /// `pick_b (b) -> (rb)`.
    fn plan_ab(det: bool) -> (Arc<Ctx>, crate::plan::Plan) {
        let env = parse_program(
            "box pick_a (a) -> (ra);\n\
             box pick_b (b) -> (rb);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("pick_a", |r, e| {
                let v = r.field("a").unwrap().as_int().unwrap();
                e.emit(Record::build().field("ra", v).finish());
            })
            .bind("pick_b", |r, e| {
                let v = r.field("b").unwrap().as_int().unwrap();
                e.emit(Record::build().field("rb", v).finish());
            });
        let src = if det { "pick_a | pick_b" } else { "pick_a || pick_b" };
        let ast = parse_net_expr(src).unwrap();
        (ctx(), compile(&ast, &env, &b).unwrap())
    }

    #[test]
    fn routes_by_input_type() {
        let (ctx, plan) = plan_ab(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("a", 1i64).finish()))
            .unwrap();
        tx.send(Msg::Rec(Record::build().field("b", 2i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|r| r.field("ra").is_some()));
        assert!(recs.iter().any(|r| r.field("rb").is_some()));
        assert_eq!(ctx.metrics.sum_matching("routed_left"), 1);
        assert_eq!(ctx.metrics.sum_matching("routed_right"), 1);
    }

    #[test]
    fn best_match_prefers_more_specific_branch() {
        // Branch L takes {x}, branch R takes {x,y}: a record {x,y,z}
        // must go right (better match), {x} must go left.
        let env = parse_program(
            "box loose (x) -> (out_l);\n\
             box tight (x, y) -> (out_r);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("loose", |_r, e| {
                e.emit(Record::build().field("out_l", 1i64).finish())
            })
            .bind("tight", |_r, e| {
                e.emit(Record::build().field("out_r", 1i64).finish())
            });
        let ast = parse_net_expr("loose || tight").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(
            Record::build()
                .field("x", 1i64)
                .field("y", 2i64)
                .field("z", 3i64)
                .finish(),
        ))
        .unwrap();
        tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs.iter().filter(|r| r.field("out_r").is_some()).count(),
            1
        );
        assert_eq!(
            recs.iter().filter(|r| r.field("out_l").is_some()).count(),
            1
        );
    }

    #[test]
    fn equal_match_reaches_both_branches() {
        // Identical input types: the non-deterministic choice must be
        // observably non-deterministic (both branches used across many
        // records) — paper Section 4.
        let env = parse_program(
            "box one (x) -> (x);\n\
             box two (x) -> (x);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("one", |r, e| e.emit(r.clone()))
            .bind("two", |r, e| e.emit(r.clone()));
        let ast = parse_net_expr("one || two").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..20i64 {
            tx.send(Msg::Rec(Record::build().field("x", i).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 20);
        assert!(ctx.metrics.sum_matching("routed_left") > 0);
        assert!(ctx.metrics.sum_matching("routed_right") > 0);
    }

    #[test]
    fn det_parallel_preserves_input_order() {
        let (ctx, plan) = plan_ab(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        // Alternate branches; output must interleave in input order
        // even though branches run at different speeds.
        let mut expected = Vec::new();
        for i in 0..30i64 {
            if i % 2 == 0 {
                tx.send(Msg::Rec(Record::build().field("a", i).finish()))
                    .unwrap();
                expected.push(("ra", i));
            } else {
                tx.send(Msg::Rec(Record::build().field("b", i).finish()))
                    .unwrap();
                expected.push(("rb", i));
            }
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let got: Vec<(&str, i64)> = recs
            .iter()
            .map(|r| {
                if let Some(v) = r.field("ra") {
                    ("ra", v.as_int().unwrap())
                } else {
                    ("rb", r.field("rb").unwrap().as_int().unwrap())
                }
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn unroutable_record_panics() {
        let (ctx, plan) = plan_ab(false);
        let (tx, in_rx) = stream();
        let _out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("zzz", 1i64).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }
}
