//! Parallel composition `A || B` and `A | B`.
//!
//! "Parallel combination constructs a network where all incoming
//! records are either sent to A or to B and the resulting record
//! streams are merged to form the overall output stream. ... Any
//! incoming record is directed towards the subnetwork whose input type
//! better matches the type of the record itself. If both branches
//! match equally well, one is selected non-deterministically" (paper,
//! Section 4).
//!
//! # Memoized routing
//!
//! The routing decision depends only on the *type* of a record — the
//! set of labels it carries — and the label universe of a coordination
//! program is fixed (see `snet_types::label`). The dispatcher
//! therefore resolves `match_score` subset tests once per distinct
//! record type and caches the outcome in a [`RouteCache`]: subsequent
//! records of a seen type cost one shape-id map hit (shapes are
//! interned label sets, so the id *is* the type — no hashing of label
//! sequences, no element-wise verification), with no allocation.
//! Equal-match types are cached as [`RouteClass::Tie`]
//! — the cache stores the *class*, never a fixed branch, so the
//! non-deterministic choice the paper requires stays an explicit
//! round-robin over time (see [`RouteCache::decide`]).

use crate::ctx::Ctx;
use crate::instantiate::instantiate;
use crate::memo::TypeMemo;
use crate::merge::{spawn_merge, BranchSpec, MergeMode};
use crate::metrics::keys;
use crate::path::CompPath;
use crate::plan::PNode;
use crate::stream::{chan, for_each_msg, Dir, Msg, Receiver};
use snet_types::{NetSig, Record};
use std::sync::Arc;

/// How records of one type route through a two-branch dispatcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteClass {
    /// Only, or better, matched by the left branch.
    Left,
    /// Only, or better, matched by the right branch.
    Right,
    /// Both branches match equally well: the paper's non-deterministic
    /// case. Never pinned — resolved per record by round-robin.
    Tie,
    /// Matched by neither branch (a routing error the dispatcher
    /// reports; cached so repeated offenders stay cheap to reject).
    Unroutable,
}

/// Memoized best-match routing for a parallel composition, built on
/// the generic [`TypeMemo`] (see [`crate::memo`]): the first record of
/// each type pays one `record_type()` allocation and two
/// `match_score` subset tests; every later record of that type is an
/// O(1) shape-id lookup with zero allocation.
pub struct RouteCache {
    lsig: NetSig,
    rsig: NetSig,
    memo: TypeMemo<RouteClass>,
    /// Round-robin state for [`RouteClass::Tie`]: flipped on every tie
    /// decision, so equal-match records alternate branches
    /// deterministically over time — the documented rendering of the
    /// paper's "selected non-deterministically". Alternation (rather
    /// than e.g. random choice) also guarantees both branches make
    /// progress under a pure tie workload.
    flip: bool,
}

impl RouteCache {
    pub fn new(lsig: NetSig, rsig: NetSig) -> RouteCache {
        RouteCache {
            lsig,
            rsig,
            memo: TypeMemo::new(),
            flip: false,
        }
    }

    /// The route class for a record's type, from cache or computed.
    pub fn classify(&mut self, rec: &Record) -> RouteClass {
        let RouteCache {
            lsig, rsig, memo, ..
        } = self;
        memo.get_or_insert_with(rec, |rt| {
            // First record of this type: run the real subset tests.
            match (lsig.match_score(rt), rsig.match_score(rt)) {
                (Some(a), Some(b)) if a == b => RouteClass::Tie,
                (Some(a), Some(b)) => {
                    if a > b {
                        RouteClass::Left
                    } else {
                        RouteClass::Right
                    }
                }
                (Some(_), None) => RouteClass::Left,
                (None, Some(_)) => RouteClass::Right,
                (None, None) => RouteClass::Unroutable,
            }
        })
    }

    /// Routes one record: `Some(true)` = left, `Some(false)` = right,
    /// `None` = unroutable. Ties alternate round-robin.
    pub fn decide(&mut self, rec: &Record) -> Option<bool> {
        match self.classify(rec) {
            RouteClass::Left => Some(true),
            RouteClass::Right => Some(false),
            RouteClass::Tie => {
                self.flip = !self.flip;
                Some(self.flip)
            }
            RouteClass::Unroutable => None,
        }
    }

    /// The branch signatures (used in the dispatcher's panic message).
    pub fn sigs(&self) -> (&NetSig, &NetSig) {
        (&self.lsig, &self.rsig)
    }

    /// Number of distinct record types cached.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.memo.is_empty()
    }
}

/// Routes one record or dies: the shared decision step for the
/// standalone dispatcher task and the fused-fan driver (see
/// [`crate::fused`]), so an unroutable record produces the same
/// diagnostic either way. `true` = left.
pub(crate) fn decide_or_panic(routes: &mut RouteCache, rec: &Record, dpath: CompPath) -> bool {
    routes.decide(rec).unwrap_or_else(|| {
        let (lsig, rsig) = routes.sigs();
        panic!(
            "record {rec:?} matches neither branch of parallel composition \
             at '{dpath}' (left {}, right {})",
            lsig.input_type(),
            rsig.input_type()
        )
    })
}

/// Spawns a parallel composition; returns its output stream.
#[allow(clippy::too_many_arguments)]
pub fn spawn_parallel(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    left: &Arc<PNode>,
    right: &Arc<PNode>,
    left_sig: &NetSig,
    right_sig: &NetSig,
    det: bool,
    level: u32,
    input: Receiver,
) -> Receiver {
    let comb = path.into().child(if det { "par" } else { "parnd" });
    let (ltx, lrx) = ctx.data_stream(comb.child("L"), "dispatch");
    let (rtx, rrx) = ctx.data_stream(comb.child("R"), "dispatch");
    let left_out = instantiate(ctx, left, comb.child("L"), lrx);
    let right_out = instantiate(ctx, right, comb.child("R"), rrx);

    // Static two-branch merge: the control channel is closed
    // immediately.
    let (ctl_tx, ctl_rx) = chan::channel::<BranchSpec>();
    drop(ctl_tx);
    let (out_tx, out_rx) = ctx.data_stream(comb, "merge");
    let mode = if det {
        MergeMode::Det { level }
    } else {
        MergeMode::NonDet
    };
    spawn_merge(
        ctx,
        comb,
        mode,
        vec![BranchSpec::new(left_out), BranchSpec::new(right_out)],
        ctl_rx,
        out_tx,
    );

    // Dispatcher. Counters and the route cache are resolved at spawn
    // time; the record loop performs no allocation for bookkeeping and
    // no repeated subset tests for previously-seen record types.
    let ctx2 = Arc::clone(ctx);
    let mut routes = RouteCache::new(left_sig.clone(), right_sig.clone());
    let dpath = comb;
    let records_in = ctx.metrics.handle_at(dpath, keys::RECORDS_IN);
    let routed_left = ctx.metrics.handle_at(dpath, "routed_left");
    let routed_right = ctx.metrics.handle_at(dpath, "routed_right");
    if ltx.is_bounded() {
        // Bounded branch edges: data routes through the credit gate
        // (an async path), so the dispatcher runs per-message. Sort
        // broadcasts stay on the ungated `send` path — a det round
        // boundary must reach *both* branches, including the one the
        // merger is not currently draining, without waiting.
        ctx.spawn(format!("{dpath}/dispatch"), async move {
            let mut counter: u64 = 0;
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    Msg::Rec(rec) => {
                        if ctx2.has_observers() {
                            ctx2.observe(dpath, Dir::In, &rec);
                        }
                        records_in.inc(1);
                        let go_left = decide_or_panic(&mut routes, &rec, dpath);
                        let target = if go_left { &ltx } else { &rtx };
                        if go_left {
                            routed_left.inc(1);
                        } else {
                            routed_right.inc(1);
                        }
                        // A full branch edge parks the dispatcher —
                        // and transitively everything upstream.
                        let _ = target.feed(Msg::Rec(rec)).await;
                        if det {
                            let sort = Msg::Sort { level, counter };
                            let _ = ltx.send(sort.clone());
                            let _ = rtx.send(sort);
                            counter += 1;
                        }
                    }
                    sort @ Msg::Sort { .. } => {
                        let _ = ltx.send(sort.clone());
                        let _ = rtx.send(sort);
                    }
                }
            }
        });
        return out_rx;
    }
    ctx.spawn(format!("{dpath}/dispatch"), async move {
        let mut counter: u64 = 0;
        for_each_msg(input, |msg| match msg {
            Msg::Rec(rec) => {
                if ctx2.has_observers() {
                    ctx2.observe(dpath, Dir::In, &rec);
                }
                records_in.inc(1);
                let go_left = decide_or_panic(&mut routes, &rec, dpath);
                let target = if go_left { &ltx } else { &rtx };
                if go_left {
                    routed_left.inc(1);
                } else {
                    routed_right.inc(1);
                }
                let _ = target.send(Msg::Rec(rec));
                if det {
                    let sort = Msg::Sort { level, counter };
                    let _ = ltx.send(sort.clone());
                    let _ = rtx.send(sort);
                    counter += 1;
                }
            }
            sort @ Msg::Sort { .. } => {
                // Outer sorts are broadcast to both branches.
                let _ = ltx.send(sort.clone());
                let _ = rtx.send(sort);
            }
        })
        .await;
        // EOS: dropping both senders propagates.
    });

    out_rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile, Bindings};
    use crate::stream::stream;
    use snet_lang::{parse_net_expr, parse_program};
    use snet_types::Record;

    fn ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    /// Two boxes with different input types: `pick_a (a) -> (ra)`,
    /// `pick_b (b) -> (rb)`.
    fn plan_ab(det: bool) -> (Arc<Ctx>, crate::plan::Plan) {
        let env = parse_program(
            "box pick_a (a) -> (ra);\n\
             box pick_b (b) -> (rb);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("pick_a", |r, e| {
                let v = r.field("a").unwrap().as_int().unwrap();
                e.emit(Record::build().field("ra", v).finish());
            })
            .bind("pick_b", |r, e| {
                let v = r.field("b").unwrap().as_int().unwrap();
                e.emit(Record::build().field("rb", v).finish());
            });
        let src = if det {
            "pick_a | pick_b"
        } else {
            "pick_a || pick_b"
        };
        let ast = parse_net_expr(src).unwrap();
        (ctx(), compile(&ast, &env, &b).unwrap())
    }

    #[test]
    fn routes_by_input_type() {
        let (ctx, plan) = plan_ab(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("a", 1i64).finish()))
            .unwrap();
        tx.send(Msg::Rec(Record::build().field("b", 2i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().any(|r| r.field("ra").is_some()));
        assert!(recs.iter().any(|r| r.field("rb").is_some()));
        assert_eq!(ctx.metrics.sum_matching("routed_left"), 1);
        assert_eq!(ctx.metrics.sum_matching("routed_right"), 1);
    }

    #[test]
    fn best_match_prefers_more_specific_branch() {
        // Branch L takes {x}, branch R takes {x,y}: a record {x,y,z}
        // must go right (better match), {x} must go left.
        let env = parse_program(
            "box loose (x) -> (out_l);\n\
             box tight (x, y) -> (out_r);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("loose", |_r, e| {
                e.emit(Record::build().field("out_l", 1i64).finish())
            })
            .bind("tight", |_r, e| {
                e.emit(Record::build().field("out_r", 1i64).finish())
            });
        let ast = parse_net_expr("loose || tight").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(
            Record::build()
                .field("x", 1i64)
                .field("y", 2i64)
                .field("z", 3i64)
                .finish(),
        ))
        .unwrap();
        tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs.iter().filter(|r| r.field("out_r").is_some()).count(),
            1
        );
        assert_eq!(
            recs.iter().filter(|r| r.field("out_l").is_some()).count(),
            1
        );
    }

    #[test]
    fn equal_match_reaches_both_branches() {
        // Identical input types: the non-deterministic choice must be
        // observably non-deterministic (both branches used across many
        // records) — paper Section 4.
        let env = parse_program(
            "box one (x) -> (x);\n\
             box two (x) -> (x);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("one", |r, e| e.emit(r.clone()))
            .bind("two", |r, e| e.emit(r.clone()));
        let ast = parse_net_expr("one || two").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..20i64 {
            tx.send(Msg::Rec(Record::build().field("x", i).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 20);
        assert!(ctx.metrics.sum_matching("routed_left") > 0);
        assert!(ctx.metrics.sum_matching("routed_right") > 0);
    }

    #[test]
    fn det_parallel_preserves_input_order() {
        let (ctx, plan) = plan_ab(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        // Alternate branches; output must interleave in input order
        // even though branches run at different speeds.
        let mut expected = Vec::new();
        for i in 0..30i64 {
            if i % 2 == 0 {
                tx.send(Msg::Rec(Record::build().field("a", i).finish()))
                    .unwrap();
                expected.push(("ra", i));
            } else {
                tx.send(Msg::Rec(Record::build().field("b", i).finish()))
                    .unwrap();
                expected.push(("rb", i));
            }
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let got: Vec<(&str, i64)> = recs
            .iter()
            .map(|r| {
                if let Some(v) = r.field("ra") {
                    ("ra", v.as_int().unwrap())
                } else {
                    ("rb", r.field("rb").unwrap().as_int().unwrap())
                }
            })
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn route_cache_memoizes_and_never_pins_ties() {
        let lsig = NetSig::simple(
            snet_types::RecordType::of(&["a"], &[]),
            vec![snet_types::RecordType::of(&["ra"], &[])],
        );
        let rsig = NetSig::simple(
            snet_types::RecordType::of(&["a"], &[]),
            vec![snet_types::RecordType::of(&["rb"], &[])],
        );
        let mut cache = RouteCache::new(lsig, rsig);
        let rec = Record::build().field("a", 1i64).finish();
        assert_eq!(cache.classify(&rec), RouteClass::Tie);
        assert_eq!(cache.len(), 1);
        // Ties alternate strictly — the cached class never pins a
        // branch.
        let mut lefts = 0;
        let mut rights = 0;
        for _ in 0..10 {
            match cache.decide(&rec) {
                Some(true) => lefts += 1,
                Some(false) => rights += 1,
                None => panic!("tie record became unroutable"),
            }
        }
        assert_eq!((lefts, rights), (5, 5));
        // Still a single cached type after repeated decisions.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn route_cache_distinguishes_types_and_kinds() {
        // Field `k` and tag `<k>` share an interner id; the cache must
        // not conflate them.
        let lsig = NetSig::simple(
            snet_types::RecordType::of(&["k"], &[]),
            vec![snet_types::RecordType::of(&["x"], &[])],
        );
        let rsig = NetSig::simple(
            snet_types::RecordType::of(&[], &["k"]),
            vec![snet_types::RecordType::of(&["y"], &[])],
        );
        let mut cache = RouteCache::new(lsig, rsig);
        let field_rec = Record::build().field("k", 1i64).finish();
        let tag_rec = Record::build().tag("k", 1).finish();
        assert_eq!(cache.decide(&field_rec), Some(true));
        assert_eq!(cache.decide(&tag_rec), Some(false));
        assert_eq!(cache.len(), 2);
        // Unroutable types are classified (and cached) as such.
        let bad = Record::build().field("zzz", 1i64).finish();
        assert_eq!(cache.decide(&bad), None);
        assert_eq!(cache.classify(&bad), RouteClass::Unroutable);
    }

    #[test]
    fn route_cache_agrees_with_direct_match_score() {
        // Best-match preference: {x} vs {x,y} for a record {x,y,z}.
        let loose = NetSig::simple(
            snet_types::RecordType::of(&["x"], &[]),
            vec![snet_types::RecordType::of(&["o"], &[])],
        );
        let tight = NetSig::simple(
            snet_types::RecordType::of(&["x", "y"], &[]),
            vec![snet_types::RecordType::of(&["o"], &[])],
        );
        let mut cache = RouteCache::new(loose, tight);
        let rich = Record::build()
            .field("x", 1i64)
            .field("y", 2i64)
            .field("z", 3i64)
            .finish();
        let plain = Record::build().field("x", 1i64).finish();
        assert_eq!(cache.decide(&rich), Some(false)); // tighter wins
        assert_eq!(cache.decide(&plain), Some(true)); // only loose matches
                                                      // Repeat from cache: same answers.
        assert_eq!(cache.decide(&rich), Some(false));
        assert_eq!(cache.decide(&plain), Some(true));
    }

    #[test]
    fn unroutable_record_panics() {
        let (ctx, plan) = plan_ab(false);
        let (tx, in_rx) = stream();
        let _out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("zzz", 1i64).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }
}
