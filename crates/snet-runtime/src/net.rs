//! The public face of the runtime: building and driving networks.
//!
//! ```
//! use snet_runtime::{NetBuilder, collect_records};
//! use snet_types::Record;
//!
//! let mut net = NetBuilder::from_source(
//!         "box inc (x) -> (x);\n\
//!          net main = inc .. inc;",
//!     )
//!     .unwrap()
//!     .bind("inc", |rec, em| {
//!         let x = rec.field("x").unwrap().as_int().unwrap();
//!         em.emit(Record::build().field("x", x + 1).finish());
//!     })
//!     .build("main")
//!     .unwrap();
//!
//! net.send(Record::build().field("x", 40i64).finish()).unwrap();
//! let outputs = net.finish();
//! assert_eq!(outputs[0].field("x").unwrap().as_int(), Some(42));
//! ```

use crate::ctx::{Ctx, RunCfg};
use crate::fault::{ChaosConfig, Fault, FaultObserver, FaultPolicy};
use crate::instantiate::instantiate;
use crate::memo::TypeMemo;
use crate::metrics::{keys, Metrics};
use crate::path::CompPath;
use crate::plan::{Bindings, CompileError, Plan};
use crate::sched::Executor;
use crate::stream::chan::TryFeedError;
use crate::stream::{Msg, Observer, Receiver, Sender};
use parking_lot::RwLock;
use snet_lang::{parse_net_expr, parse_program, Env, NetAst, ParseError, Program};
use snet_types::{MultiType, NetSig, Record};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced while building a network.
#[derive(Debug)]
pub enum BuildError {
    Parse(ParseError),
    Compile(CompileError),
    Type(snet_types::TypeError),
    UnknownNet(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Compile(e) => write!(f, "{e}"),
            BuildError::Type(e) => write!(f, "{e}"),
            BuildError::UnknownNet(n) => write!(f, "program declares no net '{n}'"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseError> for BuildError {
    fn from(e: ParseError) -> Self {
        BuildError::Parse(e)
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<snet_types::TypeError> for BuildError {
    fn from(e: snet_types::TypeError) -> Self {
        BuildError::Type(e)
    }
}

/// Builder: parse / declare, bind box implementations, then build.
pub struct NetBuilder {
    program: Program,
    bindings: Bindings,
    observers: Vec<Observer>,
    executor: Option<Arc<dyn Executor>>,
    split_lanes: Option<u32>,
    split_lanes_by_tag: HashMap<String, u32>,
    fuse: Option<bool>,
    fan_fuse: Option<bool>,
    fan_fuse_by_tag: HashMap<String, bool>,
    bound: Option<usize>,
    bound_overrides: HashMap<String, usize>,
    overload: OverloadPolicy,
    fault_policy: Option<FaultPolicy>,
    chaos: Option<ChaosConfig>,
    fault_observers: Vec<FaultObserver>,
}

impl NetBuilder {
    /// Starts from S-Net source text (box and net declarations).
    pub fn from_source(src: &str) -> Result<NetBuilder, BuildError> {
        let program = parse_program(src)?;
        Ok(NetBuilder::from_program(program))
    }

    /// Starts from an already-parsed program.
    pub fn from_program(program: Program) -> NetBuilder {
        NetBuilder {
            program,
            bindings: Bindings::new(),
            observers: Vec::new(),
            executor: None,
            split_lanes: None,
            split_lanes_by_tag: HashMap::new(),
            fuse: None,
            fan_fuse: None,
            fan_fuse_by_tag: HashMap::new(),
            bound: None,
            bound_overrides: HashMap::new(),
            overload: OverloadPolicy::Block,
            fault_policy: None,
            chaos: None,
            fault_observers: Vec::new(),
        }
    }

    /// Binds a box implementation by name.
    pub fn bind(
        mut self,
        name: &str,
        imp: impl Fn(&Record, &mut crate::boxfn::Emitter) + Send + Sync + 'static,
    ) -> Self {
        self.bindings = self.bindings.bind(name, imp);
        self
    }

    /// Registers a stream observer (called with component path,
    /// direction, record).
    pub fn observe(mut self, obs: Observer) -> Self {
        self.observers.push(obs);
        self
    }

    /// Selects the executor the network's components run on. Default:
    /// the process-default executor (`SNET_EXECUTOR`; see
    /// [`crate::sched`]).
    pub fn executor(mut self, executor: Arc<dyn Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Bounds every indexed parallel replicator (`!!`/`!`) of this
    /// network to `lanes` replicas: routing-tag values are hashed into
    /// a fixed lane namespace instead of unfolding one replica (and
    /// interning one branch path) per distinct value. Opt-in — the
    /// default is the paper's value-indexed unfolding. Use it when a
    /// split tag is drawn from an unbounded domain (session ids,
    /// request ids): the `runtime/interner_paths` gauge then plateaus
    /// instead of growing with the domain. Equal tag values still
    /// always reach the same replica; see [`crate::split`] for the
    /// trade-off discussion.
    pub fn split_lanes(mut self, lanes: u32) -> Self {
        assert!(lanes > 0, "split_lanes requires at least one lane");
        self.split_lanes = Some(lanes);
        self
    }

    /// Bounds only the replicators routing on the named tag to
    /// `lanes` lanes, leaving other replicators on the net-global
    /// [`NetBuilder::split_lanes`] setting (or unbounded unfolding).
    /// Use it when one tag is drawn from an unbounded domain but
    /// others are small and should keep the paper's value-indexed
    /// replicas.
    pub fn split_lanes_for(mut self, tag: &str, lanes: u32) -> Self {
        assert!(lanes > 0, "split_lanes_for requires at least one lane");
        self.split_lanes_by_tag.insert(tag.to_string(), lanes);
        self
    }

    /// Bounds every data edge of this network to `cap` queued
    /// records, enabling credit-based backpressure: producers of data
    /// records park when an edge fills instead of growing the queue.
    /// Sort records, merger-drained edges and the network's output
    /// edge stay exempt so deterministic merging cannot deadlock (see
    /// [`crate::stream`] and [`crate::sched`]). Default:
    /// [`crate::ctx::DEFAULT_STREAM_BOUND`], overridable process-wide
    /// with `SNET_STREAM_BOUND` (`0` = unbounded; see
    /// [`RunCfg::from_env`]). What happens when the *ingress* edge is
    /// full is the [`NetBuilder::overload`] policy.
    pub fn bound(mut self, cap: usize) -> Self {
        assert!(
            cap > 0,
            "bound requires a capacity of at least one (use unbounded() to lift the default)"
        );
        self.bound = Some(cap);
        self
    }

    /// Removes the data-edge bound for this network: every edge grows
    /// without backpressure, the seed's behaviour. The per-net
    /// rendering of `SNET_STREAM_BOUND=0`, and the escape hatch from
    /// the bounded default.
    pub fn unbounded(mut self) -> Self {
        self.bound = Some(0);
        self
    }

    /// Overrides the capacity of the data edges named `edge` (the
    /// edge-name suffixes used by the spawn sites: `"ingress"`,
    /// `"dispatch"`, `"merge"`, `"filter"`, `"fused"`, or a box
    /// path's last segment). `0` keeps those edges unbounded even
    /// when [`NetBuilder::bound`] is set.
    pub fn bound_for(mut self, edge: &str, cap: usize) -> Self {
        self.bound_overrides.insert(edge.to_string(), cap);
        self
    }

    /// Selects what [`Net::send`] does when the bounded ingress edge
    /// is full (default: [`OverloadPolicy::Block`]). Irrelevant while
    /// the network is unbounded.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = policy;
        self
    }

    /// Enables or disables the pipeline fusion pass for this network
    /// (see [`crate::plan`]): fused, a maximal `Serial` chain of boxes
    /// and filters runs as **one** scheduled component instead of one
    /// per stage. Default: on, unless `SNET_FUSE=0` is set
    /// process-wide. Output (including deterministic ordering) and
    /// per-stage metrics paths are identical either way — the escape
    /// hatch exists to keep the unfused topology testable and to
    /// restore the paper's literal one-component-per-stage execution
    /// model.
    pub fn fuse(mut self, fuse: bool) -> Self {
        self.fuse = Some(fuse);
        self
    }

    /// Enables or disables *replica* fusion for this network's fan
    /// combinators (see [`crate::plan`], *fan fusion*): fused, a
    /// split/parallel/star whose body collapsed to a single stage run
    /// executes dispatch, lanes and merge as **one** component.
    /// Default: on whenever the fusion pass itself is on — this knob
    /// is the per-net escape hatch that keeps chains fused while
    /// restoring the dispatcher/lane/merger topology for every fan.
    /// Output and per-stage metrics paths are identical either way.
    pub fn fuse_fan(mut self, fuse: bool) -> Self {
        self.fan_fuse = Some(fuse);
        self
    }

    /// Per-combinator rendering of [`NetBuilder::fuse_fan`]: applies
    /// only to the indexed replicators routing on the named tag,
    /// winning over the net-global setting. (Parallel and star
    /// combinators carry no routing tag; use `fuse_fan` for those.)
    pub fn fuse_fan_for(mut self, tag: &str, fuse: bool) -> Self {
        self.fan_fuse_by_tag.insert(tag.to_string(), fuse);
        self
    }

    /// Selects what a box/filter panic does to this network (see
    /// [`crate::fault`]): fail the whole net
    /// ([`FaultPolicy::FailNet`], the default), drop the poison
    /// record and keep the component alive
    /// ([`FaultPolicy::SkipRecord`]), or retry the stage with bounded
    /// exponential backoff before giving up to a skip
    /// ([`FaultPolicy::Restart`]). Per-net setting; the process
    /// default comes from `SNET_FAULT_POLICY`. Deterministic merge
    /// output is unaffected by containment — see the failure-model
    /// notes in [`crate::sched`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Enables deterministic fault injection at every box/filter
    /// boundary of this network (see [`ChaosConfig`]): seeded
    /// probabilistic panics and stalls, reproducible run-to-run from
    /// the seed. Testing/soak knob; the process default comes from
    /// `SNET_CHAOS`.
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Registers a fault observer: called synchronously with every
    /// contained [`Fault`] (skipped records, restarts that recovered,
    /// component deaths). Pair with
    /// [`crate::TraceLog::fault_observer`] for a recording sink.
    pub fn on_fault(mut self, obs: FaultObserver) -> Self {
        self.fault_observers.push(obs);
        self
    }

    /// Compiles and spawns the named net.
    pub fn build(self, net_name: &str) -> Result<Net, BuildError> {
        let env = self.program.env()?;
        let body = self
            .program
            .net(net_name)
            .ok_or_else(|| BuildError::UnknownNet(net_name.to_string()))?
            .body
            .clone();
        self.build_ast(&env, &body)
    }

    /// Compiles and spawns a network expression given as text, resolved
    /// against the program's declarations.
    pub fn build_expr(self, expr: &str) -> Result<Net, BuildError> {
        let env = self.program.env()?;
        let ast = parse_net_expr(expr)?;
        self.build_ast(&env, &ast)
    }

    fn build_ast(self, env: &Env, ast: &NetAst) -> Result<Net, BuildError> {
        let fuse = self.fuse.unwrap_or_else(crate::plan::fuse_default);
        let plan = crate::plan::compile_cfg(ast, env, &self.bindings, fuse)?;
        let executor = self.executor.unwrap_or_else(crate::sched::default_executor);
        let cfg = RunCfg {
            // Per-net setting beats the process default; an explicit
            // `unbounded()` is stored as `Some(0)` and resolves to no
            // bound at all.
            bound: match self.bound {
                Some(0) => None,
                Some(n) => Some(n),
                None => RunCfg::from_env().bound,
            },
            bound_overrides: self.bound_overrides,
            split_lanes: self.split_lanes,
            split_lanes_by_tag: self.split_lanes_by_tag,
            fan_fuse: self.fan_fuse,
            fan_fuse_by_tag: self.fan_fuse_by_tag,
            fault_policy: self.fault_policy.unwrap_or_else(FaultPolicy::from_env),
            chaos: self.chaos.or_else(ChaosConfig::from_env),
        };
        let net = Net::spawn_full(plan, self.observers, executor, cfg, self.overload);
        // No records flow until the caller sends, so subscribing
        // right after spawn cannot miss a fault.
        for obs in self.fault_observers {
            net.ctx.on_fault(obs);
        }
        Ok(net)
    }
}

/// Boundary-memo size cap (distinct record types). Generously above
/// any legitimate program's type universe — label sets come from
/// declarations — while bounding memory against label-diverse
/// adversarial senders.
const BOUNDARY_MEMO_CAP: usize = 4096;

/// The ingress type gate of a running network: the signature plus the
/// memoized acceptance checks. Extracted from [`Net`] so the serve
/// layer ([`crate::serve`]) can take the gate with it when it
/// decomposes a network into its ingress/egress halves — both front
/// doors run the exact same acceptance logic.
pub(crate) struct Boundary {
    sig: NetSig,
    /// Memoized boundary type checks: one `match_score` per distinct
    /// record type ever injected, instead of per record (the
    /// [`TypeMemo`] generalisation of the dispatcher's route cache).
    /// Behind an `RwLock`: warm sends from concurrent driver threads
    /// share the read path; the write lock is taken once per distinct
    /// record type. Capped at [`BOUNDARY_MEMO_CAP`] entries — `send`
    /// accepts caller-controlled label sets (including rejected ones),
    /// so unlike the dispatcher's post-boundary cache this memo would
    /// otherwise grow with adversarial label diversity; past the cap,
    /// novel types fall back to the uncached check.
    memo: RwLock<TypeMemo<bool>>,
    /// Lock-free front line of the boundary memo: the most recently
    /// accepted shape id, `+1` (0 = none yet). Monomorphic streams —
    /// the overwhelmingly common case — check one relaxed atomic load
    /// per record instead of taking the memo's read lock. A stale
    /// value is harmless: acceptance is a pure function of the shape,
    /// and a mismatch just falls through to the memo.
    hot: std::sync::atomic::AtomicU64,
}

impl Boundary {
    pub(crate) fn new(sig: NetSig) -> Boundary {
        Boundary {
            sig,
            memo: RwLock::new(TypeMemo::new()),
            hot: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub(crate) fn sig(&self) -> &NetSig {
        &self.sig
    }

    /// Whether a record may enter the network (some input variant is a
    /// subtype of the record's type). Memoized per record shape.
    pub(crate) fn accepts(&self, rec: &Record) -> bool {
        use std::sync::atomic::Ordering;
        let hot = u64::from(rec.shape().id()) + 1;
        if self.hot.load(Ordering::Relaxed) == hot {
            // The stream's steady-state type: no lock at all.
            return true;
        }
        // Two statements on purpose: the read guard must drop before
        // the miss path takes the write lock (a `match` on the locked
        // expression would hold the read guard across both arms).
        let cached = self.memo.read().get(rec);
        let accepted = cached.unwrap_or_else(|| {
            let mut memo = self.memo.write();
            if memo.len() < BOUNDARY_MEMO_CAP {
                memo.get_or_insert_with(rec, |rt| self.sig.match_score(rt).is_some())
            } else {
                // Memo saturated (adversarially diverse label sets):
                // compute without caching.
                drop(memo);
                self.sig.match_score(&rec.record_type()).is_some()
            }
        });
        if accepted {
            self.hot.store(hot, Ordering::Relaxed);
        }
        accepted
    }

    /// The rejection error for a record that failed [`Boundary::accepts`]
    /// (error path only: rebuilds the type strings for the message).
    pub(crate) fn mismatch(&self, rec: &Record) -> SendRejected {
        SendRejected::TypeMismatch {
            record_type: rec.record_type().to_string(),
            input_type: self.sig.input_type().to_string(),
        }
    }
}

/// Publishes one record to an ingress edge under an overload policy:
/// the unbounded path is the seed's plain send; on a bounded edge the
/// policy decides between parking, shedding and a deadline. Shared by
/// [`Net::send`] and the serve layer's ingress ([`crate::serve`]).
pub(crate) fn send_policy(
    tx: &Sender,
    rec: Record,
    policy: OverloadPolicy,
) -> Result<(), SendRejected> {
    if !tx.is_bounded() {
        return tx.send(Msg::Rec(rec)).map_err(|_| SendRejected::Closed);
    }
    match policy {
        OverloadPolicy::Block => tx.feed_blocking(Msg::Rec(rec), None).map_err(|e| match e {
            // No deadline: `Full` is unreachable.
            TryFeedError::Full(_) | TryFeedError::Disconnected(_) => SendRejected::Closed,
        }),
        OverloadPolicy::Shed => tx.try_feed(Msg::Rec(rec)).map_err(|e| match e {
            TryFeedError::Full(_) => SendRejected::Overloaded,
            TryFeedError::Disconnected(_) => SendRejected::Closed,
        }),
        OverloadPolicy::Timeout(d) => tx
            .feed_blocking(Msg::Rec(rec), Some(Instant::now() + d))
            .map_err(|e| match e {
                TryFeedError::Full(_) => SendRejected::Timeout,
                TryFeedError::Disconnected(_) => SendRejected::Closed,
            }),
    }
}

/// The pieces of a running network the serve layer builds on: the
/// ingress sender, the egress receiver, the shared context and the
/// boundary type gate (see [`Net::into_serve_parts`]).
pub(crate) struct ServeParts {
    pub(crate) input: Sender,
    pub(crate) output: Receiver,
    pub(crate) ctx: Arc<Ctx>,
    pub(crate) boundary: Boundary,
    pub(crate) overload: OverloadPolicy,
}

/// A running network: one global input stream, one global output
/// stream (networks are SISO, like every component).
pub struct Net {
    input: Option<Sender>,
    output: Receiver,
    ctx: Arc<Ctx>,
    boundary: Boundary,
    /// What [`Net::send`] does when the bounded ingress edge is full.
    overload: OverloadPolicy,
}

impl Net {
    /// Spawns a compiled plan on the process-default executor (and
    /// the process-default stream bound, `SNET_STREAM_BOUND`).
    pub fn spawn(plan: Plan, observers: Vec<Observer>) -> Net {
        Net::spawn_on(plan, observers, crate::sched::default_executor())
    }

    /// Spawns a compiled plan on an explicit executor.
    pub fn spawn_on(plan: Plan, observers: Vec<Observer>, executor: Arc<dyn Executor>) -> Net {
        Net::spawn_full(
            plan,
            observers,
            executor,
            RunCfg::from_env(),
            OverloadPolicy::Block,
        )
    }

    /// Spawns a compiled plan on an explicit executor with runtime
    /// options (stream bounds, split-lane namespaces; see [`RunCfg`]).
    pub fn spawn_cfg(
        plan: Plan,
        observers: Vec<Observer>,
        executor: Arc<dyn Executor>,
        cfg: RunCfg,
    ) -> Net {
        Net::spawn_full(plan, observers, executor, cfg, OverloadPolicy::Block)
    }

    /// [`Net::spawn_cfg`] plus the ingress overload policy.
    pub fn spawn_full(
        plan: Plan,
        observers: Vec<Observer>,
        executor: Arc<dyn Executor>,
        cfg: RunCfg,
        overload: OverloadPolicy,
    ) -> Net {
        let metrics = Metrics::new();
        let ctx = Ctx::with_config(metrics, observers, executor, cfg);
        // The ingress edge is a data edge like any other: when the
        // net is bounded, `Net::send` is where backpressure reaches
        // the caller (via the overload policy).
        let root = CompPath::root("net");
        let (tx, rx) = ctx.data_stream(root, "ingress");
        let output = instantiate(&ctx, &plan.root, root, rx);
        // The final output edge is exempt from bounding: its consumer
        // is the driver thread, whose drain rate the runtime cannot
        // schedule — a bounded output would deadlock the ubiquitous
        // send-everything-then-finish() driver pattern. Memory at the
        // boundary is the driver's contract, exactly as in the seed.
        output.exempt();
        // Gauge, not counter: the high-water mark of the process-wide
        // path interner, re-sampled at finish() after dynamic
        // unfolding. Makes the known unbounded-tag-domain interner
        // growth observable in production (ROADMAP; reclamation is a
        // follow-on).
        ctx.metrics
            .handle(keys::INTERNER_PATHS)
            .max(crate::path::interned_paths() as u64);
        Net {
            input: Some(tx),
            output,
            ctx,
            boundary: Boundary::new(plan.sig),
            overload,
        }
    }

    /// The network's inferred input type.
    pub fn input_type(&self) -> MultiType {
        self.boundary.sig().input_type()
    }

    /// The network's inferred output type.
    pub fn output_type(&self) -> MultiType {
        self.boundary.sig().output_type()
    }

    /// The network's full signature.
    pub fn sig(&self) -> &NetSig {
        self.boundary.sig()
    }

    /// Decomposes the running network into the parts the serve layer
    /// needs — the ingress sender, the egress receiver, the context
    /// and the boundary gate. Crate-internal: only [`crate::serve`]
    /// reassembles these into a request/response front door. Panics if
    /// the input was already closed.
    pub(crate) fn into_serve_parts(mut self) -> ServeParts {
        let input = self
            .input
            .take()
            .expect("cannot serve a network whose input is closed");
        ServeParts {
            input,
            output: self.output,
            ctx: self.ctx,
            boundary: self.boundary,
            overload: self.overload,
        }
    }

    /// Injects a record. Fails when the record does not match any
    /// input variant (the same check routing would fail on later, but
    /// surfaced synchronously at the boundary) or when the input was
    /// already closed.
    pub fn send(&self, rec: Record) -> Result<(), SendRejected> {
        if !self.boundary.accepts(&rec) {
            return Err(self.boundary.mismatch(&rec));
        }
        let tx = match &self.input {
            Some(tx) => tx,
            None => return Err(SendRejected::Closed),
        };
        send_policy(tx, rec, self.overload)
    }

    /// Closes the input stream; the network will drain and terminate.
    pub fn close(&mut self) {
        self.input = None;
    }

    /// Receives the next output record, blocking; `None` on
    /// end-of-stream. (Sort records are internal and never escape a
    /// well-formed network; any that do are skipped defensively.)
    pub fn recv(&self) -> Option<Record> {
        loop {
            match self.output.recv() {
                Ok(Msg::Rec(r)) => return Some(r),
                Ok(Msg::Sort { .. }) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Closes the input, drains every remaining output record and
    /// joins all component threads (propagating component panics).
    pub fn finish(mut self) -> Vec<Record> {
        self.close();
        let mut out = Vec::new();
        while let Some(r) = self.recv() {
            out.push(r);
        }
        self.ctx.join_all();
        // Re-sample the interner gauge: dynamic unfolding (replicas,
        // star stages) interns paths while the network runs.
        self.ctx
            .metrics
            .handle(keys::INTERNER_PATHS)
            .max(crate::path::interned_paths() as u64);
        out
    }

    /// The network's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.ctx.metrics
    }

    /// Subscribes a fault observer on the running network (see
    /// [`NetBuilder::on_fault`]).
    pub fn on_fault(&self, obs: FaultObserver) {
        self.ctx.on_fault(obs);
    }

    /// Snapshot of the network's fault log: every contained fault so
    /// far, oldest first (bounded; see [`crate::fault`]).
    pub fn faults(&self) -> Vec<Fault> {
        self.ctx.faults()
    }

    /// Number of components spawned so far (tasks, not OS threads —
    /// under a pool executor many components share few threads).
    pub fn threads_spawned(&self) -> usize {
        self.ctx.threads_spawned()
    }

    /// The executor the network's components run on.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        self.ctx.executor()
    }
}

impl fmt::Debug for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Net {{ input: {}, sig: {} -> {} }}",
            if self.input.is_some() {
                "open"
            } else {
                "closed"
            },
            self.input_type(),
            self.output_type()
        )
    }
}

/// What [`Net::send`] does when the network's bounded ingress edge is
/// full — the graceful-degradation knob ([`NetBuilder::overload`]).
/// Irrelevant while the network is unbounded (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Park the calling thread until capacity frees (or the network
    /// closes). The default: an open-loop producer is throttled to
    /// the network's service rate.
    #[default]
    Block,
    /// Reject immediately with [`SendRejected::Overloaded`] — a typed,
    /// retryable error the caller can back off on.
    Shed,
    /// Block up to the given duration, then reject with
    /// [`SendRejected::Timeout`].
    Timeout(Duration),
}

/// Why [`Net::send`] rejected a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendRejected {
    TypeMismatch {
        record_type: String,
        input_type: String,
    },
    Closed,
    /// The bounded ingress edge is full and the overload policy is
    /// [`OverloadPolicy::Shed`]. Retryable: capacity frees as the
    /// network drains.
    Overloaded,
    /// The bounded ingress edge stayed full past the
    /// [`OverloadPolicy::Timeout`] deadline. Retryable.
    Timeout,
}

impl fmt::Display for SendRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendRejected::TypeMismatch {
                record_type,
                input_type,
            } => write!(
                f,
                "record of type {record_type} does not match network input {input_type}"
            ),
            SendRejected::Closed => write!(f, "network input is closed"),
            SendRejected::Overloaded => write!(f, "network ingress is at capacity (shed)"),
            SendRejected::Timeout => {
                write!(f, "network ingress stayed at capacity past the deadline")
            }
        }
    }
}

impl std::error::Error for SendRejected {}

/// Drains a raw stream into its data records (test/bench helper).
pub fn collect_records(rx: Receiver) -> Vec<Record> {
    let mut out = Vec::new();
    while let Ok(msg) = rx.recv() {
        if let Msg::Rec(r) = msg {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::Dir;
    use parking_lot::Mutex;

    fn inc_builder() -> NetBuilder {
        NetBuilder::from_source(
            "box inc (x) -> (x);\n\
             net one = inc;\n\
             net three = inc .. inc .. inc;",
        )
        .unwrap()
        .bind("inc", |rec, em| {
            let x = rec.field("x").unwrap().as_int().unwrap();
            em.emit(Record::build().field("x", x + 1).finish());
        })
    }

    #[test]
    fn build_send_collect() {
        let net = inc_builder().build("three").unwrap();
        for x in 0..10i64 {
            net.send(Record::build().field("x", x).finish()).unwrap();
        }
        let out = net.finish();
        let got: Vec<i64> = out
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(got, (3..13).collect::<Vec<_>>());
    }

    #[test]
    fn build_expr_resolves_declarations() {
        let net = inc_builder().build_expr("one .. one").unwrap();
        net.send(Record::build().field("x", 0i64).finish()).unwrap();
        let out = net.finish();
        assert_eq!(out[0].field("x").unwrap().as_int(), Some(2));
    }

    #[test]
    fn send_rejects_type_mismatch() {
        let net = inc_builder().build("one").unwrap();
        let err = net
            .send(Record::build().field("wrong", 1i64).finish())
            .unwrap_err();
        assert!(matches!(err, SendRejected::TypeMismatch { .. }));
        let _ = net.finish();
    }

    #[test]
    fn unknown_net_is_build_error() {
        let err = inc_builder().build("nope").unwrap_err();
        assert!(matches!(err, BuildError::UnknownNet(_)));
    }

    #[test]
    fn unbound_box_is_build_error() {
        let err = NetBuilder::from_source("box f (x) -> (x);\nnet main = f;")
            .unwrap()
            .build("main")
            .unwrap_err();
        assert!(matches!(err, BuildError::Compile(CompileError::Unbound(_))));
    }

    #[test]
    fn observers_see_both_directions() {
        let log: Arc<Mutex<Vec<(String, Dir)>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let obs: Observer = Arc::new(move |path, dir, _rec| {
            log2.lock().push((path.to_string(), dir));
        });
        let net = inc_builder().observe(obs).build("one").unwrap();
        net.send(Record::build().field("x", 1i64).finish()).unwrap();
        let _ = net.finish();
        let log = log.lock();
        assert!(log
            .iter()
            .any(|(p, d)| p.contains("box:inc") && *d == Dir::In));
        assert!(log
            .iter()
            .any(|(p, d)| p.contains("box:inc") && *d == Dir::Out));
    }

    #[test]
    fn metrics_are_accessible() {
        let net = inc_builder().build("three").unwrap();
        net.send(Record::build().field("x", 0i64).finish()).unwrap();
        let metrics = Arc::clone(net.metrics());
        let _ = net.finish();
        assert_eq!(metrics.sum_matching("box:inc/records_in"), 3);
        assert_eq!(metrics.sum_matching("box:inc/spawned"), 3);
    }

    #[test]
    fn interner_paths_gauge_tracks_dynamic_unfolding() {
        // The gauge exists at spawn and grows (never shrinks) across
        // finish(): a split on fresh tag values interns new branch
        // paths while the net runs, and the finish-time re-sample
        // must observe them.
        let net = NetBuilder::from_source(
            "box id (x, <gaugek>) -> (x, <gaugek>);\n\
             net main = id !! <gaugek>;",
        )
        .unwrap()
        .bind("id", |r, e| e.emit(r.clone()))
        .build("main")
        .unwrap();
        let at_spawn = net.metrics().get(crate::metrics::keys::INTERNER_PATHS);
        assert!(at_spawn > 0, "gauge must be sampled at spawn");
        // Tag values no other test uses, so the branch paths (which
        // embed the value) are guaranteed fresh in the process-wide
        // interner even with tests running concurrently.
        for k in 0..32i64 {
            net.send(
                Record::build()
                    .field("x", k)
                    .tag("gaugek", 77_000_000 + k)
                    .finish(),
            )
            .unwrap();
        }
        let metrics = Arc::clone(net.metrics());
        let _ = net.finish();
        let at_finish = metrics.get(crate::metrics::keys::INTERNER_PATHS);
        assert!(
            at_finish >= at_spawn + 32,
            "32 fresh branch paths must be visible in the gauge \
             (spawn {at_spawn}, finish {at_finish})"
        );
        // Other tests may intern concurrently; the gauge can only lag.
        assert!(at_finish <= crate::path::interned_paths() as u64);
    }

    #[test]
    fn sig_is_exposed() {
        let net = inc_builder().build("one").unwrap();
        assert_eq!(net.input_type().to_string(), "{x}");
        assert_eq!(net.output_type().to_string(), "{x}");
        let _ = net.finish();
    }
}
