//! Shared execution context for a running network.
//!
//! # Interned-path invariant
//!
//! Component identity flows through [`CompPath`] handles. The
//! invariant the hot paths rely on: **every component's path is
//! interned exactly once, at `instantiate` time** — spawn functions
//! derive their path with [`CompPath::child`] before entering the
//! record loop, and per-record code (metrics, observers, panic
//! messages) only copies the handle or borrows its pre-rendered
//! `&'static str`. No component thread ever formats a path string per
//! record.

use crate::metrics::Metrics;
use crate::path::CompPath;
use crate::stream::{Dir, Observer};
use parking_lot::Mutex;
use snet_types::Record;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context threaded through instantiation and shared by all component
/// threads of one network: metrics, observers, and the join-handle
/// collector (components are created dynamically by the replicators,
/// so handles accumulate at runtime).
pub struct Ctx {
    pub metrics: Arc<Metrics>,
    observers: Vec<Observer>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Ctx {
    pub fn new(metrics: Arc<Metrics>, observers: Vec<Observer>) -> Arc<Ctx> {
        Arc::new(Ctx {
            metrics,
            observers,
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Spawns a named component thread and registers its handle.
    pub fn spawn(self: &Arc<Self>, name: impl Into<String>, f: impl FnOnce() + Send + 'static) {
        let h = std::thread::Builder::new()
            .name(name.into())
            .spawn(f)
            .expect("failed to spawn component thread");
        self.handles.lock().push(h);
    }

    /// Notifies observers of a record passing a component boundary.
    /// Observers receive the pre-rendered path string by reference —
    /// no allocation happens on this edge.
    pub fn observe(&self, path: CompPath, dir: Dir, rec: &Record) {
        for obs in &self.observers {
            obs(path.as_str(), dir, rec);
        }
    }

    /// True when at least one observer is registered (lets hot paths
    /// skip building observation arguments).
    pub fn has_observers(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Joins all component threads spawned so far, repeatedly, until no
    /// new ones appear (replicators spawn transitively). Panics if any
    /// component thread panicked, propagating the first panic payload.
    pub fn join_all(&self) {
        loop {
            let batch: Vec<JoinHandle<()>> = {
                let mut h = self.handles.lock();
                std::mem::take(&mut *h)
            };
            if batch.is_empty() {
                return;
            }
            for h in batch {
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    /// Number of component threads spawned so far.
    pub fn threads_spawned(&self) -> usize {
        self.handles.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_and_join() {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let n = Arc::clone(&n);
            ctx.spawn("t", move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.join_all();
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_all_catches_transitively_spawned_threads() {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let n = Arc::new(AtomicUsize::new(0));
        {
            let ctx2 = Arc::clone(&ctx);
            let n = Arc::clone(&n);
            ctx.spawn("outer", move || {
                let n2 = Arc::clone(&n);
                ctx2.spawn("inner", move || {
                    n2.fetch_add(10, Ordering::Relaxed);
                });
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.join_all();
        assert_eq!(n.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn join_all_propagates_panics() {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        ctx.spawn("boom", || panic!("component failure"));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }

    #[test]
    fn observers_receive_records() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let obs: Observer = Arc::new(move |_path, _dir, _rec| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        let ctx = Ctx::new(Metrics::new(), vec![obs]);
        assert!(ctx.has_observers());
        let p = CompPath::root("p");
        ctx.observe(p, Dir::In, &Record::new());
        ctx.observe(p, Dir::Out, &Record::new());
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }
}
