//! Shared execution context for a running network.
//!
//! # Interned-path invariant
//!
//! Component identity flows through [`CompPath`] handles. The
//! invariant the hot paths rely on: **every component's path is
//! interned exactly once, at `instantiate` time** — spawn functions
//! derive their path with [`CompPath::child`] before entering the
//! record loop, and per-record code (metrics, observers, panic
//! messages) only copies the handle or borrows its pre-rendered
//! `&'static str`. No component thread ever formats a path string per
//! record.
//!
//! # Executor indirection
//!
//! Components are spawned as futures through the context's
//! [`Executor`] (see [`crate::sched`]): one OS thread each under
//! [`crate::sched::ThreadPerComponent`] (the default), cooperative
//! tasks over a bounded worker set under
//! [`crate::sched::WorkStealingPool`]. Completion and panic
//! accounting goes through a [`Tracker`] instead of `JoinHandle`s, so
//! [`Ctx::join_all`] works identically under both backends — including
//! for components spawned transitively at runtime by the replicators.

use crate::fault::{
    payload_msg, ChaosConfig, Fault, FaultGuard, FaultHub, FaultObserver, FaultPolicy,
};
use crate::metrics::{keys, Metrics};
use crate::path::CompPath;
use crate::sched::{default_executor, Executor, Tracker};
use crate::stream::chan::EdgeStats;
use crate::stream::{stream, stream_bounded, Dir, Observer, Receiver, Sender};
use snet_types::Record;
use std::collections::HashMap;
use std::future::Future;
use std::sync::Arc;

/// The process-default data-edge capacity, applied when neither
/// `SNET_STREAM_BOUND` nor a per-net `NetBuilder::bound`/`unbounded`
/// overrides it. **Backpressure is on by default** since PR 7, with
/// the value picked from the open-loop serve harness
/// (`crates/bench/src/bin/serve_bench.rs`, BENCH_PR7.json): at
/// moderate load (300 req/s smoke) steady-state depth high-water is
/// single-digit on both service workloads, so 128 is an order of
/// magnitude above anything a stable system queues; at 60 % of
/// closed-loop capacity the sudoku workload's ingress briefly fills
/// to the cap (52 producer stalls across 12 000 requests, zero
/// losses, p99 still bounded) — i.e. the bound only ever engages when
/// arrivals genuinely outrun service, which is exactly when unbounded
/// edges would otherwise grow without limit. Escape hatches:
/// `SNET_STREAM_BOUND=0` process-wide or `NetBuilder::unbounded()`
/// per net restore the seed's unbounded edges.
pub const DEFAULT_STREAM_BOUND: usize = 128;

/// Runtime configuration for one network, threaded through the shared
/// [`Ctx`] to every component spawn site.
#[derive(Clone, Debug, Default)]
pub struct RunCfg {
    /// Default capacity for data edges; `None` = unbounded
    /// ([`DEFAULT_STREAM_BOUND`] applies unless `SNET_STREAM_BOUND`
    /// or `NetBuilder::bound`/`unbounded` says otherwise). See
    /// [`crate::stream`] for what a bound does and does not gate.
    pub bound: Option<usize>,
    /// Per-edge capacity overrides keyed by edge name (the `name`
    /// argument of [`Ctx::data_stream`], e.g. `"dispatch"`,
    /// `"merge"`, `"ingress"`). `0` keeps that edge unbounded even
    /// when `bound` is set.
    pub bound_overrides: HashMap<String, usize>,
    /// Opt-in bounded lane namespace for indexed-split routing paths:
    /// when set, parallel replicators hash tag values into this many
    /// lanes instead of one replica per distinct value, capping the
    /// path-interner growth on unbounded tag domains (see
    /// [`crate::split`] and the `NetBuilder::split_lanes` knob).
    pub split_lanes: Option<u32>,
    /// Per-replicator lane bounds keyed by routing-tag name; a tag's
    /// entry wins over the net-global `split_lanes`.
    pub split_lanes_by_tag: HashMap<String, u32>,
    /// Per-combinator escape hatch for replica fusion (see
    /// [`crate::plan`], *fan fusion*): `None` = fuse (the default),
    /// `Some(false)` = keep every fan unfused at runtime even when
    /// the plan carries `FusedFan` nodes. `SNET_FUSE=0` disables the
    /// whole fusion pass at compile time instead.
    pub fan_fuse: Option<bool>,
    /// Per-replicator fan-fusion overrides keyed by routing-tag name
    /// (indexed splits only — parallel and star have no tag to key
    /// on); a tag's entry wins over the net-global `fan_fuse`.
    pub fan_fuse_by_tag: HashMap<String, bool>,
    /// What a box/filter panic does to the net (see
    /// [`crate::fault`]): fail it (default), skip the poison record,
    /// or restart the stage with backoff.
    pub fault_policy: FaultPolicy,
    /// Deterministic fault injection at the box/filter boundary;
    /// `None` (the default) injects nothing.
    pub chaos: Option<ChaosConfig>,
}

impl RunCfg {
    /// Process-default configuration: the data-edge bound comes from
    /// `SNET_STREAM_BOUND` — `n` bounds every data edge at `n`, `0`
    /// restores unbounded edges, and unset (or unparsable) applies
    /// [`DEFAULT_STREAM_BOUND`]. The fault policy comes from
    /// `SNET_FAULT_POLICY` and chaos injection from `SNET_CHAOS` (see
    /// [`crate::fault`]).
    pub fn from_env() -> RunCfg {
        let bound = match std::env::var("SNET_STREAM_BOUND")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(DEFAULT_STREAM_BOUND),
        };
        RunCfg {
            bound,
            fault_policy: FaultPolicy::from_env(),
            chaos: ChaosConfig::from_env(),
            ..RunCfg::default()
        }
    }
}

/// Context threaded through instantiation and shared by all components
/// of one network: metrics, observers, the executor, and the task
/// tracker (components are created dynamically by the replicators, so
/// accounting accumulates at runtime).
pub struct Ctx {
    pub metrics: Arc<Metrics>,
    observers: Vec<Observer>,
    executor: Arc<dyn Executor>,
    tracker: Arc<Tracker>,
    faults: Arc<FaultHub>,
    cfg: RunCfg,
}

impl Ctx {
    /// Context on the process-default executor (`SNET_EXECUTOR`).
    pub fn new(metrics: Arc<Metrics>, observers: Vec<Observer>) -> Arc<Ctx> {
        Ctx::with_executor(metrics, observers, default_executor())
    }

    /// Context on an explicit executor.
    pub fn with_executor(
        metrics: Arc<Metrics>,
        observers: Vec<Observer>,
        executor: Arc<dyn Executor>,
    ) -> Arc<Ctx> {
        Ctx::with_config(metrics, observers, executor, RunCfg::default())
    }

    /// Context on an explicit executor with runtime options.
    pub fn with_config(
        metrics: Arc<Metrics>,
        observers: Vec<Observer>,
        executor: Arc<dyn Executor>,
        cfg: RunCfg,
    ) -> Arc<Ctx> {
        let tracker = Tracker::new();
        let faults = FaultHub::new(Arc::clone(&metrics));
        // Component-death leg of the fault channel: a task that dies
        // at the executor boundary (FailNet unwinds, coordination-
        // layer bugs) raises a typed Fault carrying its name, under
        // both executors (see sched *Failure model*).
        let hub = Arc::clone(&faults);
        tracker.set_panic_hook(move |name, payload| {
            hub.raise(Fault {
                component: name.to_string(),
                msg: payload_msg(payload),
                dropped: None,
            });
        });
        Arc::new(Ctx {
            metrics,
            observers,
            executor,
            tracker,
            faults,
            cfg,
        })
    }

    /// The indexed-split lane bound, if configured (net-global; see
    /// [`Ctx::split_lanes_for`] for the per-tag resolution replicators
    /// use).
    pub fn split_lanes(&self) -> Option<u32> {
        self.cfg.split_lanes
    }

    /// The lane bound for the replicator routing on `tag`: a per-tag
    /// binding wins over the net-global bound.
    pub fn split_lanes_for(&self, tag: &str) -> Option<u32> {
        self.cfg
            .split_lanes_by_tag
            .get(tag)
            .copied()
            .or(self.cfg.split_lanes)
    }

    /// Whether the fan combinator routing on `tag` (if any) may run
    /// fused at this net's runtime settings: a per-tag override wins
    /// over the net-global `fan_fuse`, and the default is on.
    pub fn fan_fuse_for(&self, tag: Option<&str>) -> bool {
        tag.and_then(|t| self.cfg.fan_fuse_by_tag.get(t).copied())
            .or(self.cfg.fan_fuse)
            .unwrap_or(true)
    }

    /// The net's fault policy (fused fans fall back to the unfused
    /// topology under `Restart`, whose backoff sleep must not park
    /// co-scheduled lanes).
    pub(crate) fn fault_policy(&self) -> FaultPolicy {
        self.cfg.fault_policy
    }

    /// An explicit per-edge capacity override for `name`, if one was
    /// configured (`Some(0)` = explicitly unbounded).
    pub(crate) fn edge_override(&self, name: &str) -> Option<usize> {
        self.cfg.bound_overrides.get(name).copied()
    }

    /// Creates a data edge owned by the component at `path`: bounded
    /// (with [`EdgeStats`] registered at `{path}/stream_depth` and
    /// `{path}/credit_stalls`, mirrored into the `runtime/*` globals)
    /// when the net's bound — or a per-edge override under `name` —
    /// says so; a plain unbounded stream otherwise. Spawn-time API:
    /// the bounded arm takes the metrics registry locks.
    pub fn data_stream(&self, path: CompPath, name: &str) -> (Sender, Receiver) {
        let cap = self.edge_cap(name);
        if cap == 0 {
            return stream();
        }
        let stats = EdgeStats {
            depth: self.metrics.handle_at(path, keys::STREAM_DEPTH),
            stalls: self.metrics.handle_at(path, keys::CREDIT_STALLS),
            depth_global: self.metrics.handle(keys::STREAM_DEPTH_GLOBAL),
            stalls_global: self.metrics.handle(keys::CREDIT_STALLS_GLOBAL),
        };
        stream_bounded(cap, Some(stats))
    }

    /// The capacity [`Ctx::data_stream`] would give an edge named
    /// `name` (`0` = unbounded). Dispatchers that unfold edges lazily
    /// use [`Ctx::edge_bounded`] to pick their record loop up front.
    fn edge_cap(&self, name: &str) -> usize {
        match self.cfg.bound_overrides.get(name) {
            Some(&n) => n,
            None => self.cfg.bound.unwrap_or(0),
        }
    }

    /// Whether [`Ctx::data_stream`] would return a bounded edge for
    /// `name`.
    pub fn edge_bounded(&self, name: &str) -> bool {
        self.edge_cap(name) > 0
    }

    /// Spawns a named component on the context's executor and
    /// registers it with the tracker.
    pub fn spawn(
        self: &Arc<Self>,
        name: impl Into<String>,
        fut: impl Future<Output = ()> + Send + 'static,
    ) {
        let name = name.into();
        let done = self.tracker.register(&name);
        self.executor.spawn(name, Box::pin(fut), done);
    }

    /// Subscribes a fault observer: called synchronously for every
    /// contained fault in this net (guarded-core skips/restarts and
    /// component-level deaths). See [`crate::fault`].
    pub fn on_fault(&self, obs: FaultObserver) {
        self.faults.subscribe(obs);
    }

    /// Snapshot of this net's fault log (oldest first, bounded).
    pub fn faults(&self) -> Vec<Fault> {
        self.faults.faults()
    }

    /// The fault guard for the execution core at `path`, per the
    /// net's policy and chaos config; `None` in the default
    /// (FailNet, no injection) configuration — the hot path then
    /// bypasses fault handling entirely.
    pub(crate) fn fault_guard(&self, path: CompPath) -> Option<FaultGuard> {
        FaultGuard::for_stage(
            self.cfg.fault_policy,
            self.cfg.chaos.as_ref(),
            &self.faults,
            &self.metrics,
            path,
        )
    }

    /// The executor components of this network run on.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.executor
    }

    /// Notifies observers of a record passing a component boundary.
    /// Observers receive the pre-rendered path string by reference —
    /// no allocation happens on this edge.
    pub fn observe(&self, path: CompPath, dir: Dir, rec: &Record) {
        for obs in &self.observers {
            obs(path.as_str(), dir, rec);
        }
    }

    /// True when at least one observer is registered (lets hot paths
    /// skip building observation arguments).
    pub fn has_observers(&self) -> bool {
        !self.observers.is_empty()
    }

    /// Waits until every component spawned so far — including ones
    /// spawned transitively at runtime — has completed. Panics if any
    /// component panicked, propagating the first panic payload.
    pub fn join_all(&self) {
        self.tracker.wait_quiescent();
    }

    /// Number of components spawned so far (tasks, not OS threads —
    /// under a pool executor many components share few threads; see
    /// [`crate::sched::Executor::os_thread_bound`]).
    pub fn threads_spawned(&self) -> usize {
        self.tracker.tasks_spawned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::WorkStealingPool;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_and_join() {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let n = Arc::clone(&n);
            ctx.spawn("t", async move {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        ctx.join_all();
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn join_all_catches_transitively_spawned_components() {
        // Under both executors: a component spawned *by* a component
        // is covered by the same join.
        for exec in [
            Arc::new(crate::sched::ThreadPerComponent) as Arc<dyn Executor>,
            Arc::new(WorkStealingPool::new(2)) as Arc<dyn Executor>,
        ] {
            let ctx = Ctx::with_executor(Metrics::new(), Vec::new(), exec);
            let n = Arc::new(AtomicUsize::new(0));
            {
                let ctx2 = Arc::clone(&ctx);
                let n = Arc::clone(&n);
                ctx.spawn("outer", async move {
                    let n2 = Arc::clone(&n);
                    ctx2.spawn("inner", async move {
                        n2.fetch_add(10, Ordering::Relaxed);
                    });
                    n.fetch_add(1, Ordering::Relaxed);
                });
            }
            ctx.join_all();
            assert_eq!(n.load(Ordering::Relaxed), 11);
        }
    }

    #[test]
    fn join_all_propagates_panics() {
        for exec in [
            Arc::new(crate::sched::ThreadPerComponent) as Arc<dyn Executor>,
            Arc::new(WorkStealingPool::new(1)) as Arc<dyn Executor>,
        ] {
            let ctx = Ctx::with_executor(Metrics::new(), Vec::new(), exec);
            ctx.spawn("boom", async { panic!("component failure") });
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
            assert!(r.is_err());
        }
    }

    #[test]
    fn observers_receive_records() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let obs: Observer = Arc::new(move |_path, _dir, _rec| {
            seen2.fetch_add(1, Ordering::Relaxed);
        });
        let ctx = Ctx::new(Metrics::new(), vec![obs]);
        assert!(ctx.has_observers());
        let p = CompPath::root("p");
        ctx.observe(p, Dir::In, &Record::new());
        ctx.observe(p, Dir::Out, &Record::new());
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }
}
