//! The executor subsystem: *where* components run.
//!
//! The paper's operational model gives every box, guard, dispatcher
//! and merger its own thread of control. The seed runtime mirrored
//! that literally — one OS thread per component — which is faithful
//! but does not scale: Fig. 2-style unfolding already instantiates
//! ~729 boxes plus guards and mergers, and star/split unfolding under
//! real load means thousands of replicas, which one-OS-thread-each
//! cannot sustain.
//!
//! This module makes the mapping *pluggable*. Components are written
//! as `async` state machines over pollable streams (see
//! [`crate::stream`]); an [`Executor`] decides how those state
//! machines map onto OS threads:
//!
//! * [`ThreadPerComponent`] — the paper's model and the default: each
//!   component future runs to completion on its own named OS thread
//!   via a park/unpark `block_on`. A component awaiting an empty
//!   stream parks its thread, exactly like the seed's blocking
//!   `recv()`.
//! * [`WorkStealingPool`] — N worker threads with one lock-free
//!   Chase–Lev deque each plus a shared injector; idle workers steal
//!   the oldest entry from their siblings' deques. A component
//!   awaiting an empty stream returns `Pending` and *yields its
//!   worker* to the next runnable component; the stream's send path
//!   wakes it back onto a run queue. Thousands of components share
//!   `N ≈ num_cpus` threads.
//!
//! # Why cooperative parking cannot deadlock the runtime
//!
//! The classic hazard of running blocking-style components on a
//! bounded pool is a wait cycle: every worker stuck in a component
//! that waits for a message only another, *unscheduled* component
//! could produce. Two properties rule this out here:
//!
//! 1. **Waiting components hold no worker.** A component waits only by
//!    awaiting a stream (`poll_recv`/`poll_ready`/`recv_batch`, and —
//!    on bounded edges — the sender-side `feed`/`acquire` credit
//!    futures); `Pending` returns the worker to the pool. There is no
//!    in-component blocking primitive, so "all workers stuck waiting"
//!    cannot occur — a waiting component *is not on a worker*.
//! 2. **Every sender-side wait edge points at a consumer that will
//!    run.** Edges are unbounded by default, so senders never wait at
//!    all. When a network opts into bounded data edges
//!    (`NetBuilder::bound` / `SNET_STREAM_BOUND`, see
//!    [`crate::stream`]), a data producer may additionally park
//!    awaiting credit — a wait edge pointing at the edge's *consumer*,
//!    which releases one credit per pop. That edge is only dangerous
//!    if the consumer can decline to pop until the parked producer
//!    itself makes progress, closing a cycle. Exactly one component
//!    family consumes selectively — the mergers, which drain branches
//!    in a fixed round order (det) or hold branches at sort barriers
//!    (non-det) — and every merger-drained edge is **exempted from
//!    bounding** at branch adoption ([`crate::merge`]), so no credit
//!    wait can point at a merger. Sort records are likewise never
//!    gated (dispatchers broadcast them to *all* branches, including
//!    ones the merger is not draining; see [`crate::stream`]), so a
//!    det round boundary always lands. What remains are credit waits
//!    into run-to-completion consumers (boxes, filters, fused chains,
//!    dispatchers, guards) that unconditionally drain their single
//!    input: each such wait edge points down the pipeline toward the
//!    network output, which the driver drains (and which
//!    `Net::spawn` exempts). The wait graph over bounded edges is
//!    therefore acyclic — a chain of parked producers always bottoms
//!    out in a consumer with no credit wait of its own.
//!
//! Together: every wait edge — empty-input *or* full-output — points
//! from a parked task to a *runnable* chain, and runnable tasks always
//! find a worker (workers only sleep when every run queue is empty).
//! Progress is guaranteed for any worker count ≥ 1 —
//! `WorkStealingPool::new(1)` is a valid, fully sequential scheduler,
//! which the determinism tests exploit to force adversarial
//! interleavings.
//!
//! ## …including under coalesced wakeups
//!
//! Since PR 3 the send path wakes a consumer only when it actually
//! *parked* (see [`crate::stream::chan`]); a running consumer is never
//! woken. The argument above leans on one invariant: **a task that
//! returned `Pending` has a wake in flight or genuinely nothing to
//! read**. That is exactly what the stream's post-registration
//! re-check guarantees — a consumer re-examines the queue (and the
//! end-of-stream condition) *after* publishing its waker, and a sender
//! checks the park state *after* publishing its message, with the two
//! edges ordered by SeqCst so no interleaving lets both miss each
//! other. Coalescing therefore removes wakes only on edges where the
//! consumer is demonstrably awake and will drain the message in its
//! current batch; no wait edge is ever left without a pending wake,
//! and the deadlock-freedom argument goes through unchanged. The
//! producer side of a bounded edge keeps the mirror-image invariant:
//! a producer parked on credit re-checks the credit word (and
//! receiver liveness) *after* publishing itself as parked, and the
//! pop path checks the park flag *after* releasing the credit, again
//! SeqCst-ordered — a parked producer always has a wake in flight or
//! genuinely no credit (see [`crate::stream::chan`], *why a parked
//! producer cannot be lost*).
//!
//! Fairness is budget-based, as in production async runtimes: a
//! worker grants each task a fixed message budget per poll
//! ([`crate::stream::set_poll_budget`]); a component with an
//! always-full input is forced to yield after spending it — and a
//! forced yield re-queues through the *global injector*, not the
//! worker's own LIFO deque, so its siblings run first even with a
//! single worker and no stealers (`SNET_WORKERS=1` starvation
//! freedom; see [`pool`]).
//!
//! # Determinism
//!
//! The sort-record protocol ([`crate::merge`]) encodes ordering in the
//! *data* (`Sort { level, counter }` rounds), not in scheduling.
//! Executors affect only *when* components run, never *what* they
//! forward, so the deterministic combinators produce byte-for-byte
//! identical output under either backend — verified by the
//! `executor_matrix` test suite, which runs the det-ordering oracles
//! under both.
//!
//! # Selection
//!
//! [`default_executor`] reads `SNET_EXECUTOR`: unset or `threads` →
//! [`ThreadPerComponent`]; `pool` → a process-wide shared
//! [`WorkStealingPool`] with `SNET_WORKERS` (default
//! `max(2, num_cpus)`) workers. `Ctx::with_executor` /
//! `NetBuilder::executor` select per network.
//!
//! # Failure model
//!
//! A component task that panics completes with its panic payload:
//! both executors catch the unwind at the task boundary (the
//! per-component thread's `catch_unwind` under [`ThreadPerComponent`],
//! the worker's `run_task` under [`WorkStealingPool`] — workers
//! themselves never die) and hand the payload to [`Completion`]. From
//! there two things happen, identically under either backend:
//!
//! 1. **Accounting.** The [`Tracker`] records the *first* payload and
//!    decrements the live count; [`Tracker::wait_quiescent`] (i.e.
//!    `Ctx::join_all`) re-raises it once the net is quiescent. This is
//!    [`crate::FaultPolicy::FailNet`] — the default: one dead
//!    component fails the whole net, loudly.
//! 2. **Observation.** The tracker's panic hook (installed once per
//!    net by `Ctx::with_config`) raises a typed [`crate::Fault`]
//!    carrying the task's name: `runtime/component_panics` increments,
//!    fault observers fire, and the serve front door (if any) can
//!    resolve affected requests instead of letting callers hang.
//!
//! Task-boundary death is the *backstop*. Under
//! [`crate::FaultPolicy::SkipRecord`] / [`crate::FaultPolicy::Restart`]
//! the per-record fault guard inside the box/filter execution cores
//! ([`crate::fault`]) contains user-code panics *before* they reach
//! the task boundary, so the component stays alive and only the poison
//! record is affected. Coordination-layer components — dispatchers,
//! mergers, guards, sync cells — are runtime code, not user code: a
//! panic there is a runtime bug and always fails the net regardless of
//! policy.
//!
//! Containment cannot break determinism: the det-merge protocol
//! ([`crate::merge`]) encodes ordering in sort records, which flow
//! through the stream loops and never enter the guarded per-record
//! cores. A skipped data record is indistinguishable from a box that
//! emitted nothing for it — round boundaries still arrive on every
//! branch, in order.

mod deque;
mod pool;
mod thread_per;

pub use pool::WorkStealingPool;
pub use thread_per::{block_on, ThreadPerComponent};

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A component body: a boxed, type-erased state machine. `async`
/// blocks in the spawn functions compile down to exactly the
/// resumable state machines the work-stealing backend needs.
pub type TaskFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// A pluggable component scheduler.
pub trait Executor: Send + Sync {
    /// Schedules a component to run to completion. The executor must
    /// fire `done` exactly once — with the panic payload if the
    /// component panicked — even if it shuts down before the
    /// component finishes (dropping `done` un-fired counts as
    /// completion, so [`Tracker::wait_quiescent`] can never hang on an
    /// abandoned task).
    fn spawn(&self, name: String, fut: TaskFuture, done: Completion);

    /// Executor kind label for diagnostics ("threads" / "pool").
    fn kind(&self) -> &'static str;

    /// Upper bound on OS threads this executor uses for components;
    /// `None` means one thread per component (unbounded).
    fn os_thread_bound(&self) -> Option<usize>;
}

struct TrackerState {
    live: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// Tracker panic hook: `(task name, panic payload)`, called once per
/// task death before completion accounting (see *Failure model*).
type PanicHook = Box<dyn Fn(&str, &(dyn Any + Send)) + Send + Sync>;

/// Counts live component tasks of one network and collects the first
/// panic. This replaces the seed's `Vec<JoinHandle>`: join handles are
/// an OS-thread concept, but components on a pool have no handle —
/// completion accounting must live above the executor.
pub struct Tracker {
    state: Mutex<TrackerState>,
    cv: Condvar,
    total: AtomicUsize,
    on_panic: OnceLock<PanicHook>,
}

impl Tracker {
    pub fn new() -> Arc<Tracker> {
        Arc::new(Tracker {
            state: Mutex::new(TrackerState {
                live: 0,
                panic: None,
            }),
            cv: Condvar::new(),
            total: AtomicUsize::new(0),
            on_panic: OnceLock::new(),
        })
    }

    /// Installs the panic hook (at most once per tracker; later calls
    /// are ignored). Called with the task name and payload whenever a
    /// task completes with a panic, before completion accounting —
    /// this is the component-death leg of the fault channel (see
    /// *Failure model*).
    pub fn set_panic_hook(&self, hook: impl Fn(&str, &(dyn Any + Send)) + Send + Sync + 'static) {
        let _ = self.on_panic.set(Box::new(hook));
    }

    /// Registers one task; the returned [`Completion`] must accompany
    /// it to the executor. Registration happens-before the spawning
    /// call returns, so a task that spawns children keeps `live`
    /// above zero until every transitively spawned child completed.
    pub fn register(self: &Arc<Self>, name: &str) -> Completion {
        self.state.lock().live += 1;
        self.total.fetch_add(1, Ordering::Relaxed);
        Completion {
            tracker: Arc::clone(self),
            name: name.to_string(),
            fired: false,
        }
    }

    /// Total tasks ever registered (the component count of the
    /// network, executor-independent).
    pub fn tasks_spawned(&self) -> usize {
        self.total.load(Ordering::Relaxed)
    }

    /// Blocks until every registered task completed; propagates the
    /// first recorded panic. Transitively spawned tasks are covered
    /// (see [`Tracker::register`]).
    pub fn wait_quiescent(&self) {
        let payload = {
            let mut st = self.state.lock();
            while st.live > 0 {
                self.cv.wait(&mut st);
            }
            st.panic.take()
        };
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
    }
}

/// One task's completion token (see [`Tracker::register`]).
pub struct Completion {
    tracker: Arc<Tracker>,
    name: String,
    fired: bool,
}

impl Completion {
    /// Marks the task complete, recording a panic payload if any.
    pub fn complete(mut self, result: Result<(), Box<dyn Any + Send>>) {
        self.fired = true;
        if let Err(p) = &result {
            // Hook first, outside the state lock: subscribers may take
            // their own locks (metrics, serve slot maps) and must not
            // nest inside tracker state.
            if let Some(hook) = self.tracker.on_panic.get() {
                hook(&self.name, p.as_ref());
            }
        }
        let mut st = self.tracker.state.lock();
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.live -= 1;
        if st.live == 0 {
            self.tracker.cv.notify_all();
        }
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.fired {
            // The executor dropped the task without running it to
            // completion (shutdown with work queued). Still counts as
            // done — the component's channels drop with its future,
            // cascading end-of-stream.
            let mut st = self.tracker.state.lock();
            st.live -= 1;
            if st.live == 0 {
                self.tracker.cv.notify_all();
            }
        }
    }
}

/// The process-default executor, selected by `SNET_EXECUTOR` (see
/// module docs).
pub fn default_executor() -> Arc<dyn Executor> {
    match std::env::var("SNET_EXECUTOR") {
        Ok(v) if v == "pool" => shared_pool(),
        _ => Arc::new(ThreadPerComponent),
    }
}

/// The process-wide shared [`WorkStealingPool`] (created on first
/// use). All networks selecting the pool backend share its workers —
/// that is the point: component count no longer dictates thread
/// count.
pub fn shared_pool() -> Arc<dyn Executor> {
    static POOL: OnceLock<Arc<WorkStealingPool>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Arc::new(WorkStealingPool::new(default_workers())));
    Arc::clone(pool) as Arc<dyn Executor>
}

fn default_workers() -> usize {
    std::env::var("SNET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn executors() -> Vec<(&'static str, Arc<dyn Executor>)> {
        vec![
            ("threads", Arc::new(ThreadPerComponent) as Arc<dyn Executor>),
            ("pool1", Arc::new(WorkStealingPool::new(1)) as _),
            ("pool4", Arc::new(WorkStealingPool::new(4)) as _),
        ]
    }

    #[test]
    fn runs_tasks_to_completion() {
        for (name, exec) in executors() {
            let tracker = Tracker::new();
            let n = Arc::new(AtomicUsize::new(0));
            for _ in 0..16 {
                let n = Arc::clone(&n);
                exec.spawn(
                    "t".into(),
                    Box::pin(async move {
                        n.fetch_add(1, Ordering::Relaxed);
                    }),
                    tracker.register("t"),
                );
            }
            tracker.wait_quiescent();
            assert_eq!(n.load(Ordering::Relaxed), 16, "executor {name}");
            assert_eq!(tracker.tasks_spawned(), 16);
        }
    }

    #[test]
    fn propagates_first_panic() {
        for (name, exec) in executors() {
            let tracker = Tracker::new();
            exec.spawn("ok".into(), Box::pin(async {}), tracker.register("t"));
            exec.spawn(
                "boom".into(),
                Box::pin(async { panic!("component failure") }),
                tracker.register("t"),
            );
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tracker.wait_quiescent()));
            assert!(r.is_err(), "executor {name} swallowed the panic");
        }
    }

    #[test]
    fn tasks_communicate_through_async_channels() {
        // A 3-stage pipeline of tasks over pollable channels: the
        // middle stage must park and resume without holding a thread
        // (on pool1 all three share the single worker).
        for (name, exec) in executors() {
            let tracker = Tracker::new();
            let (tx0, rx0) = crate::stream::chan::channel::<u64>();
            let (tx1, rx1) = crate::stream::chan::channel::<u64>();
            let (tx2, rx2) = crate::stream::chan::channel::<u64>();
            exec.spawn(
                "stage0".into(),
                Box::pin(async move {
                    while let Ok(v) = rx0.recv_async().await {
                        tx1.send(v + 1).unwrap();
                    }
                }),
                tracker.register("t"),
            );
            exec.spawn(
                "stage1".into(),
                Box::pin(async move {
                    while let Ok(v) = rx1.recv_async().await {
                        tx2.send(v * 2).unwrap();
                    }
                }),
                tracker.register("t"),
            );
            for i in 0..100 {
                tx0.send(i).unwrap();
            }
            drop(tx0);
            let got: Vec<u64> = rx2.iter().collect();
            tracker.wait_quiescent();
            assert_eq!(
                got,
                (0..100).map(|i| (i + 1) * 2).collect::<Vec<_>>(),
                "executor {name}"
            );
        }
    }

    #[test]
    fn panic_hook_sees_task_name_and_payload_under_both_executors() {
        use parking_lot::Mutex as PMutex;
        for (name, exec) in executors() {
            let tracker = Tracker::new();
            let seen: Arc<PMutex<Vec<(String, String)>>> = Arc::new(PMutex::new(Vec::new()));
            let seen2 = Arc::clone(&seen);
            tracker.set_panic_hook(move |task, payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .unwrap_or_default();
                seen2.lock().push((task.to_string(), msg));
            });
            exec.spawn("ok".into(), Box::pin(async {}), tracker.register("ok"));
            exec.spawn(
                "boom".into(),
                Box::pin(async { panic!("component failure") }),
                tracker.register("boom"),
            );
            let r =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tracker.wait_quiescent()));
            assert!(r.is_err(), "executor {name}");
            let seen = seen.lock();
            assert_eq!(
                seen.as_slice(),
                &[("boom".to_string(), "component failure".to_string())],
                "executor {name}"
            );
        }
    }

    #[test]
    fn pool_respects_thread_bound() {
        let pool = WorkStealingPool::new(3);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.os_thread_bound(), Some(3));
        assert_eq!(ThreadPerComponent.os_thread_bound(), None);
    }

    #[test]
    fn parked_task_resumes_on_eos_and_pool_drops_cleanly() {
        // A task parked on an empty stream must complete when the
        // sender disconnects, before the pool shuts down.
        let tracker = Tracker::new();
        {
            let pool = WorkStealingPool::new(1);
            let (tx, rx) = crate::stream::chan::channel::<u64>();
            pool.spawn(
                "parked".into(),
                Box::pin(async move {
                    assert!(rx.recv_async().await.is_err());
                }),
                tracker.register("t"),
            );
            // Let the worker park the task, then end the stream.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            tracker.wait_quiescent();
        }
    }
}
