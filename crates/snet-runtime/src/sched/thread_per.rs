//! The paper's execution model: one OS thread per component.
//!
//! Each component future gets a dedicated, named thread and runs under
//! a park/unpark [`block_on`]. Awaiting an empty stream parks the
//! thread — observable behaviour is identical to the seed's blocking
//! `recv()` loop, including thread names in panic messages and
//! debugger output.

use super::{Completion, Executor, TaskFuture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// One OS thread per component (the default executor).
pub struct ThreadPerComponent;

impl Executor for ThreadPerComponent {
    fn spawn(&self, name: String, fut: TaskFuture, done: Completion) {
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| block_on(fut)));
                done.complete(result);
            })
            .expect("failed to spawn component thread");
    }

    fn kind(&self) -> &'static str {
        "threads"
    }

    fn os_thread_bound(&self) -> Option<usize> {
        None
    }
}

/// Park/unpark waker: `wake` flags the notification and unparks the
/// component's thread.
struct ThreadWaker {
    thread: Thread,
    notified: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives a future to completion on the current thread, parking
/// between polls. This is what makes the async component bodies
/// behave exactly like the seed's blocking loops under
/// [`ThreadPerComponent`].
pub fn block_on(mut fut: TaskFuture) {
    let inner = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&inner));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => return,
            Poll::Pending => {
                // `park` may return spuriously; loop on the flag.
                while !inner.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_drives_channel_waits() {
        use std::sync::atomic::AtomicU32;
        let (tx, rx) = crate::stream::chan::channel::<u32>();
        let sum = Arc::new(AtomicU32::new(0));
        let sum2 = Arc::clone(&sum);
        let h = std::thread::spawn(move || {
            block_on(Box::pin(async move {
                while let Ok(v) = rx.recv_async().await {
                    sum2.fetch_add(v, Ordering::Relaxed);
                }
            }));
        });
        // Send after the consumer has (very likely) parked once.
        std::thread::sleep(std::time::Duration::from_millis(10));
        for i in 1..=10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        h.join().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }
}
