//! Work-stealing component scheduler.
//!
//! N worker threads, one lock-free [`Deque`] (Chase–Lev) each, plus a
//! shared mutexed injector for spawns and wakes arriving from outside
//! the pool (the driver thread instantiating the initial network, or
//! sending records into it). Components spawned *by* pool tasks — the
//! replicators' demand-driven unfolding — land on the spawning
//! worker's own deque, as do wakes a worker delivers while running
//! (locality: a freshly unfolded replica usually receives the record
//! that caused it next). Idle workers steal from the *top* of their
//! siblings' deques (the lock-free end), then fall back to the
//! injector, then sleep; every push wakes one sleeper.
//!
//! Queue discipline: the owner end of a Chase–Lev deque is LIFO, so a
//! worker runs its most recently woken task next (cache-hot), while
//! stealers drain its oldest. The **forced-yield path is the
//! exception**: a task rescheduled from within its own poll (budget
//! exhausted, or woken while running) goes to the *injector*, not the
//! local deque — re-pushing locally would pop the same task right
//! back and starve its worker's siblings, which matters most for
//! `SNET_WORKERS=1`, where there are no stealers to bail the worker
//! out. With yields routed globally, a single worker round-robins
//! every runnable task, which is what makes the one-worker pool a
//! valid fully-sequential scheduler (see the starvation-freedom note
//! in [`super`]).
//!
//! A task is a component future plus a wake state machine
//! (`IDLE → SCHEDULED → RUNNING → {IDLE | NOTIFIED}`) that guarantees
//! a task is queued at most once and a wake during its own poll
//! reschedules it instead of getting lost. Stream sends wake the
//! consuming task through its [`std::task::Waker`] (see
//! [`crate::stream::chan`]), which pushes it back onto a run queue —
//! and with coalesced wakeups, only when the task actually parked.
//!
//! Panic isolation: a panicking component unwinds out of its poll; the
//! worker catches the payload, drops the future (its channel endpoints
//! drop with it, cascading end-of-stream exactly as a dying thread
//! would) and records the payload in the network's
//! [`super::Tracker`]. The worker thread itself survives.

use super::deque::{Deque, Steal};
use super::{Completion, Executor, TaskFuture};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, Wake, Waker};

/// Messages a task may consume per poll before it is forced to yield
/// its worker (see [`crate::stream::set_poll_budget`]).
const TASK_POLL_BUDGET: u32 = 128;

// Task wake states.
const IDLE: u8 = 0; // parked, not queued; a wake must schedule it
const SCHEDULED: u8 = 1; // sitting in some run queue
const RUNNING: u8 = 2; // being polled right now
const NOTIFIED: u8 = 3; // woken during its own poll; reschedule after
const DONE: u8 = 4; // completed (or panicked); wakes are no-ops

struct TaskSlot {
    fut: Option<TaskFuture>,
    done: Option<Completion>,
}

struct Task {
    state: AtomicU8,
    slot: Mutex<TaskSlot>,
    shared: Arc<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        Task::wake_by_ref(&self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            match cur {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.shared.push(Arc::clone(self));
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or finished:
                // nothing to do.
                _ => return,
            }
        }
    }
}

struct SleepState {
    shutdown: bool,
}

struct Shared {
    /// External spawns and wakes, plus forced-yield reschedules (see
    /// module docs). The only mutexed queue left in the scheduler —
    /// per ISSUE/ROADMAP the locals are lock-free Chase–Lev deques.
    injector: Mutex<VecDeque<Arc<Task>>>,
    locals: Vec<Deque<Task>>,
    sleep: Mutex<SleepState>,
    cv: Condvar,
    /// Mirror of the sleeping-worker count, readable without the sleep
    /// lock: the wake hot path (every record delivery ends here) must
    /// not serialise on a mutex when all workers are busy. Incremented
    /// *before* a parking worker's final work re-check (see
    /// [`worker_loop`]) so a pusher that reads 0 is guaranteed the
    /// parker will see its push.
    sleepers: AtomicUsize,
}

thread_local! {
    /// `(pool, worker index)` when the current thread is a pool
    /// worker — routes same-pool spawns and wakes to the worker's own
    /// deque.
    static CURRENT_WORKER: RefCell<Option<(Weak<Shared>, usize)>> = const { RefCell::new(None) };
}

impl Shared {
    /// Queues a runnable task: on the current worker's deque when the
    /// caller is a worker of this pool, on the injector otherwise.
    /// Wakes one sleeping worker either way (local pushes must wake
    /// siblings too — that is what makes them stealable).
    fn push(self: &Arc<Self>, task: Arc<Task>) {
        let mut task = Some(task);
        CURRENT_WORKER.with(|c| {
            if let Some((pool, idx)) = c.borrow().as_ref() {
                if let Some(pool) = pool.upgrade() {
                    if Arc::ptr_eq(&pool, self) {
                        // SAFETY: this thread is worker `idx` of this
                        // pool — the deque's owner.
                        unsafe { self.locals[*idx].push(task.take().unwrap()) };
                    }
                }
            }
        });
        if let Some(t) = task {
            self.injector.lock().push_back(t);
        }
        self.notify_one();
    }

    /// Queues a forced-yield reschedule on the global injector — never
    /// the local deque, whose LIFO owner end would hand the same task
    /// straight back (see module docs on queue discipline).
    fn push_yield(self: &Arc<Self>, task: Arc<Task>) {
        self.injector.lock().push_back(task);
        self.notify_one();
    }

    /// Orders the preceding queue push before the sleeper read (the
    /// deque's release store alone does not forbid the load moving
    /// up), then notifies only when someone is actually asleep. The
    /// race is closed by the parker's protocol: it advertises itself
    /// in `sleepers` (SeqCst RMW) and fences *before* re-checking the
    /// queues, so either this load sees the parker (notify path) or
    /// the parker's re-check sees the push (no sleep).
    fn notify_one(&self) {
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _st = self.sleep.lock();
            self.cv.notify_one();
        }
    }

    /// Pops the next runnable task for worker `idx`: own deque bottom
    /// (LIFO, cache-hot), then the injector, then steal the oldest
    /// entry from a sibling.
    fn find_task(&self, idx: usize) -> Option<Arc<Task>> {
        // SAFETY: this thread is worker `idx` — the deque's owner.
        if let Some(t) = unsafe { self.locals[idx].pop() } {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().pop_front() {
            return Some(t);
        }
        let n = self.locals.len();
        for off in 1..n {
            let j = (idx + off) % n;
            loop {
                match self.locals[j].steal() {
                    Steal::Success(t) => return Some(t),
                    Steal::Empty => break,
                    // Lost a race with the owner or another thief;
                    // someone made progress — retry this victim.
                    Steal::Retry => std::hint::spin_loop(),
                }
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injector.lock().is_empty() {
            return true;
        }
        self.locals.iter().any(|d| !d.is_empty())
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|c| *c.borrow_mut() = Some((Arc::downgrade(&shared), idx)));
    loop {
        if let Some(task) = shared.find_task(idx) {
            run_task(task);
            continue;
        }
        let mut st = shared.sleep.lock();
        if st.shutdown {
            return;
        }
        // Advertise the intent to sleep *before* the final work
        // re-check: a pusher that misses this increment pushed before
        // it (SeqCst total order), so the fenced re-check below sees
        // that push; a pusher that sees it takes the sleep lock to
        // notify, which cannot complete until `cv.wait` has released
        // the lock.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        if shared.has_work() {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        shared.cv.wait(&mut st);
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        if st.shutdown {
            return;
        }
    }
}

fn run_task(task: Arc<Task>) {
    task.state.store(RUNNING, Ordering::Release);
    let waker = Waker::from(Arc::clone(&task));
    let mut cx = Context::from_waker(&waker);
    crate::stream::set_poll_budget(TASK_POLL_BUDGET);
    let poll = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut slot = task.slot.lock();
        match slot.fut.as_mut() {
            Some(f) => f.as_mut().poll(&mut cx),
            None => Poll::Ready(()),
        }
    }));
    crate::stream::set_poll_budget(u32::MAX);
    match poll {
        Ok(Poll::Pending) => {
            // Park, unless a wake arrived during the poll.
            if task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // NOTIFIED: reschedule through the injector (this is
                // also the forced-yield path — going local would run
                // the same task again immediately).
                task.state.store(SCHEDULED, Ordering::Release);
                let shared = Arc::clone(&task.shared);
                shared.push_yield(task);
            }
        }
        Ok(Poll::Ready(())) => finish(&task, Ok(())),
        Err(payload) => {
            // The worker survives; the payload reaches the tracker's
            // panic hook (fault channel, metrics, observers) and
            // wait_quiescent via Completion — no stderr side channel.
            finish(&task, Err(payload));
        }
    }
}

fn finish(task: &Arc<Task>, result: Result<(), Box<dyn std::any::Any + Send>>) {
    task.state.store(DONE, Ordering::Release);
    let (fut, done) = {
        let mut slot = task.slot.lock();
        (slot.fut.take(), slot.done.take())
    };
    // Drop the future before reporting completion: its channel
    // endpoints drop with it, cascading end-of-stream downstream —
    // the same order a dying component thread produced.
    drop(fut);
    if let Some(done) = done {
        done.complete(result);
    }
}

/// Cooperative work-stealing executor: components as tasks over N
/// worker threads (see module docs).
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkStealingPool {
    /// Creates a pool with `workers` OS threads. Any count ≥ 1 is
    /// sound (see the deadlock-freedom argument in [`super`]); the
    /// determinism tests use small counts to force interleaving.
    pub fn new(workers: usize) -> WorkStealingPool {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Deque::new()).collect(),
            sleep: Mutex::new(SleepState { shutdown: false }),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("snet-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        WorkStealingPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.locals.len()
    }

    /// Tasks currently queued but not running (racy; test/diagnostic
    /// aid — exact once the pool is quiescent).
    pub fn queued_tasks(&self) -> usize {
        let inj = self.shared.injector.lock().len();
        inj + self.shared.locals.iter().map(|d| d.len()).sum::<usize>()
    }
}

impl Executor for WorkStealingPool {
    fn spawn(&self, _name: String, fut: TaskFuture, done: Completion) {
        // The task name travels with its Completion (tracker-side);
        // the pool itself has no per-task use for it.
        let task = Arc::new(Task {
            state: AtomicU8::new(SCHEDULED),
            slot: Mutex::new(TaskSlot {
                fut: Some(fut),
                done: Some(done),
            }),
            shared: Arc::clone(&self.shared),
        });
        self.shared.push(task);
    }

    fn kind(&self) -> &'static str {
        "pool"
    }

    fn os_thread_bound(&self) -> Option<usize> {
        Some(self.workers())
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.sleep.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
        // Tasks still queued are dropped with the queues; their
        // `Completion`s fire through the drop path so no
        // `wait_quiescent` hangs. (Networks should be `finish`ed
        // before their pool is dropped — a component parked on a
        // still-open stream at this point is abandoned.) Draining also
        // breaks the `Task → Shared → locals → Task` refcount cycle.
        self.shared.injector.lock().clear();
        for d in &self.shared.locals {
            // SAFETY: all workers are joined; this is the only thread.
            unsafe { d.drain() };
        }
    }
}
