//! Chase–Lev work-stealing deque.
//!
//! The lock-free run queue behind [`super::WorkStealingPool`]: each
//! worker owns one deque and treats it as a LIFO stack (`push`/`pop`
//! at the *bottom* — freshly woken tasks are cache-hot), while idle
//! siblings `steal` from the *top*, the oldest entry. Owner operations
//! are plain loads/stores plus one `SeqCst` fence on `pop`; stealers
//! synchronise through a single CAS on `top`. This replaces the
//! `Mutex<VecDeque>` locals that made every task transition serialise
//! on a lock (the ROADMAP blocker for making the pool the default
//! executor).
//!
//! The algorithm is the classic Chase & Lev (SPAA 2005) growable
//! circular deque, with the memory orderings of Lê, Pop, Cohen &
//! Zappa Nardelli, *Correct and Efficient Work-Stealing for Weak
//! Memory Models* (PPoPP 2013):
//!
//! * `push` publishes the slot with a `Release` store of `bottom`;
//! * `pop` reserves the bottom entry with a `SeqCst` fence between the
//!   `bottom` store and the `top` load, and races stealers with a
//!   `SeqCst` CAS only when taking the *last* entry;
//! * `steal` reads `top` then (after a `SeqCst` fence) `bottom`, and
//!   claims the entry by CAS on `top`; a failed CAS means another
//!   thread took it — the caller may retry.
//!
//! Entries are `Arc<T>`s stored as raw pointer words, because stealers
//! read a slot *speculatively* before their claiming CAS: a failed
//! claim must leave no trace, so the read has to be a plain bit copy,
//! and the `Arc` is only materialised after winning the CAS.
//!
//! Reclamation: growth copies the live window into a buffer twice the
//! size, but the *old* buffer may still be read by in-flight stealers
//! that loaded its pointer before the swap. Old buffers are therefore
//! retired, not freed — kept on an owner-side list until the deque
//! drops. Doubling bounds the retired memory by the size of the
//! current buffer, the standard Chase–Lev trade.

use parking_lot::Mutex;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

/// Result of a steal attempt.
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost the claiming race; the caller may retry.
    Retry,
    /// Claimed the oldest entry.
    Success(T),
}

/// Growable circular buffer of raw `Arc` words. Indices are absolute
/// (monotonically increasing); the mask wraps them into the ring.
struct Buffer {
    cap: usize,
    slots: Box<[AtomicUsize]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            cap,
            slots: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
        }))
    }

    fn get(&self, i: isize) -> usize {
        self.slots[i as usize & (self.cap - 1)].load(Ordering::Relaxed)
    }

    fn put(&self, i: isize, v: usize) {
        self.slots[i as usize & (self.cap - 1)].store(v, Ordering::Relaxed);
    }
}

/// A work-stealing deque of `Arc<T>`s. `push`/`pop` are owner-only
/// (`unsafe` to flag the contract); `steal` and `is_empty` are free
/// for all threads.
pub struct Deque<T> {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: AtomicPtr<Buffer>,
    /// Buffers outgrown but possibly still referenced by in-flight
    /// stealers; freed on drop. Pushed only by the owner, on growth.
    retired: Mutex<Vec<*mut Buffer>>,
    _marker: PhantomData<Arc<T>>,
}

// SAFETY: entries are `Arc<T>` words; all cross-thread transfer is
// mediated by the top/bottom protocol above.
unsafe impl<T: Send + Sync> Send for Deque<T> {}
unsafe impl<T: Send + Sync> Sync for Deque<T> {}

impl<T> Deque<T> {
    pub fn new() -> Deque<T> {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: AtomicPtr::new(Buffer::alloc(64)),
            retired: Mutex::new(Vec::new()),
            _marker: PhantomData,
        }
    }

    /// Pushes to the bottom.
    ///
    /// # Safety
    /// Owner-only: must never run concurrently with another `push`,
    /// `pop`, or `drain` on this deque.
    pub unsafe fn push(&self, v: Arc<T>) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut a = self.buf.load(Ordering::Relaxed);
        if b - t >= (*a).cap as isize {
            a = self.grow(b, t, a);
        }
        (*a).put(b, Arc::into_raw(v) as usize);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops from the bottom (LIFO).
    ///
    /// # Safety
    /// Owner-only: see [`Deque::push`].
    pub unsafe fn pop(&self) -> Option<Arc<T>> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let a = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let raw = (*a).get(b);
            if t == b {
                // Last entry: race the stealers for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
            }
            Some(Arc::from_raw(raw as *const T))
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Steals the oldest entry. Safe from any thread.
    pub fn steal(&self) -> Steal<Arc<T>> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let a = self.buf.load(Ordering::Acquire);
            // Speculative read; only materialised after the CAS wins.
            let raw = unsafe { (*a).get(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                return Steal::Retry;
            }
            Steal::Success(unsafe { Arc::from_raw(raw as *const T) })
        } else {
            Steal::Empty
        }
    }

    /// Racy emptiness probe (exact only for quiescent deques); the
    /// sleep protocol in [`super::pool`] brackets it with `SeqCst`
    /// fences to make a miss impossible — see `worker_loop`.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Racy length probe (exact only for quiescent deques).
    pub fn len(&self) -> usize {
        let t = self.top.load(Ordering::Acquire);
        let b = self.bottom.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Drops every queued entry.
    ///
    /// # Safety
    /// Owner-only, and no concurrent stealers — shutdown path, after
    /// all workers have been joined.
    pub unsafe fn drain(&self) {
        while self.pop().is_some() {}
    }

    /// Moves to a buffer of twice the capacity. Owner-only.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer) -> *mut Buffer {
        let new = Buffer::alloc((*old).cap * 2);
        for i in t..b {
            (*new).put(i, (*old).get(i));
        }
        self.buf.store(new, Ordering::Release);
        // In-flight stealers may still read `old`; retire it.
        self.retired.lock().push(old);
        new
    }
}

impl<T> Drop for Deque<T> {
    fn drop(&mut self) {
        // Exclusive access: release queued Arcs, then the buffers.
        unsafe {
            let t = self.top.load(Ordering::Relaxed);
            let b = self.bottom.load(Ordering::Relaxed);
            let a = self.buf.load(Ordering::Relaxed);
            for i in t..b {
                drop(Arc::from_raw((*a).get(i) as *const T));
            }
            drop(Box::from_raw(a));
            for p in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lifo_for_owner() {
        let d: Deque<u64> = Deque::new();
        unsafe {
            for i in 0..10u64 {
                d.push(Arc::new(i));
            }
            for i in (0..10u64).rev() {
                assert_eq!(*d.pop().unwrap(), i);
            }
            assert!(d.pop().is_none());
        }
    }

    #[test]
    fn fifo_for_stealers_and_growth() {
        let d: Deque<u64> = Deque::new();
        unsafe {
            // Push past the initial capacity to force growth.
            for i in 0..300u64 {
                d.push(Arc::new(i));
            }
        }
        for i in 0..300u64 {
            match d.steal() {
                Steal::Success(v) => assert_eq!(*v, i),
                _ => panic!("steal {i} failed"),
            }
        }
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn drop_releases_queued_entries() {
        let probe = Arc::new(());
        {
            let d: Deque<()> = Deque::new();
            unsafe {
                for _ in 0..100 {
                    d.push(Arc::clone(&probe));
                }
                // Grow at least once so retired buffers exist too.
                for _ in 0..100 {
                    d.push(Arc::clone(&probe));
                }
            }
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    #[test]
    fn concurrent_stealers_claim_each_entry_once() {
        use std::sync::atomic::AtomicBool;
        const N: u64 = 20_000;
        let d: Arc<Deque<u64>> = Arc::new(Deque::new());
        let done = Arc::new(AtomicBool::new(false));
        let mut all: Vec<u64> = Vec::new();
        std::thread::scope(|s| {
            let owner = {
                let d = Arc::clone(&d);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    let mut kept = Vec::new();
                    unsafe {
                        for i in 0..N {
                            d.push(Arc::new(i));
                            if i % 3 == 0 {
                                if let Some(v) = d.pop() {
                                    kept.push(*v);
                                }
                            }
                        }
                    }
                    done.store(true, Ordering::SeqCst);
                    kept
                })
            };
            let mut thieves = Vec::new();
            for _ in 0..3 {
                let d = Arc::clone(&d);
                let done = Arc::clone(&done);
                thieves.push(s.spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match d.steal() {
                            Steal::Success(v) => got.push(*v),
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) && d.is_empty() {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    got
                }));
            }
            all.extend(owner.join().unwrap());
            for t in thieves {
                all.extend(t.join().unwrap());
            }
        });
        // Races at shutdown may leave a tail in the deque; drain it.
        unsafe {
            while let Some(v) = d.pop() {
                all.push(*v);
            }
        }
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(all.len() as u64, N, "lost or duplicated entries");
        assert_eq!(set.len() as u64, N);
    }
}
