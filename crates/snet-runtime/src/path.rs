//! Interned component paths.
//!
//! Every running component is named by a slash-separated path such as
//! `net/star/stage3/split/branch2/box:solveOneLevel`. Before this
//! module existed, components carried their path as an owned `String`
//! and *rebuilt derived strings per record* (`format!("{path}/...")`
//! for every metrics key) — a heap allocation on the hottest path of
//! the runtime. A [`CompPath`] is instead interned process-wide,
//! exactly like [`snet_types::Label`]: construction renders the path
//! string once, leaks it to `&'static str`, and hands out a copyable
//! `(id, &'static str)` pair. Component spawn sites build their path
//! once at instantiation time; per-record code only ever copies the
//! handle or borrows the pre-rendered string.
//!
//! Leaking is bounded for the same reason label leaking is: the path
//! universe of a coordination program is fixed by its structure (the
//! paper's bounds — at most 81 pipeline replicas, at most 9 × 81
//! boxes — are bounds on the path universe too), and repeated network
//! instantiations reuse identical path strings, which the interner
//! dedups to the same entry.
//!
//! One caveat: indexed-replicator branch paths embed the routing tag
//! *value* (`.../branch{v}`), so their count is bounded by the tag
//! domain, not the program text. Every workload in this repo throttles
//! that domain (the Figure 3 modulo filter exists precisely to bound
//! unfolding), but a long-running service splitting on an unbounded
//! tag (e.g. a session id) would grow the interner without reclaim —
//! see ROADMAP "Open items" for the reclaimable-interner follow-on.

use snet_types::StringInterner;
use std::fmt;
use std::sync::OnceLock;

/// An interned component path: cheap to copy, compare and hash; the
/// rendered string is available for free via [`CompPath::as_str`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompPath {
    id: u32,
    text: &'static str,
}

fn interner() -> &'static StringInterner {
    static INTERNER: OnceLock<StringInterner> = OnceLock::new();
    INTERNER.get_or_init(StringInterner::new)
}

fn intern(text: &str) -> CompPath {
    let (id, text) = interner().intern(text);
    CompPath { id, text }
}

/// Number of distinct component paths interned so far, process-wide.
/// This is the observable for the known unbounded-tag-domain growth
/// mode (see module docs): every network records it as the
/// `runtime/interner_paths` gauge, so a service splitting on an
/// unbounded tag sees the leak in its metrics long before it matters.
pub fn interned_paths() -> usize {
    interner().len()
}

impl CompPath {
    /// Interns a root path, e.g. `net`.
    pub fn root(name: &str) -> CompPath {
        intern(name)
    }

    /// Interns the child path `self/segment`. Called at component
    /// spawn time only — never per record.
    pub fn child(&self, segment: &str) -> CompPath {
        intern(&format!("{}/{segment}", self.text))
    }

    /// Descends a run of child segments — the one definition of how a
    /// recorded path suffix (fused stages, chain parts; see
    /// [`crate::plan`]) maps back onto the `Serial` instantiation's
    /// paths, so the fused and unfused topologies cannot diverge.
    pub fn descend(&self, suffix: &[&'static str]) -> CompPath {
        let mut p = *self;
        for seg in suffix {
            p = p.child(seg);
        }
        p
    }

    /// The rendered path, without allocating.
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// The interner id (stable for the process lifetime).
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl From<&str> for CompPath {
    fn from(s: &str) -> CompPath {
        CompPath::root(s)
    }
}

impl fmt::Display for CompPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl fmt::Debug for CompPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_id() {
        let a = CompPath::root("net").child("s0").child("box:solve");
        let b = CompPath::root("net/s0").child("box:solve");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "net/s0/box:solve");
        // Pointer-identical static strings, not just equal contents.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn distinct_paths_distinct_ids() {
        let a = CompPath::root("net").child("L");
        let b = CompPath::root("net").child("R");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn from_str_is_root_intern() {
        let p: CompPath = "net".into();
        assert_eq!(p, CompPath::root("net"));
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..200 {
                        let p = CompPath::root("cc").child(&format!("stage{}", i % 40));
                        assert!(p.as_str().starts_with("cc/stage"));
                    }
                });
            }
        });
        let a = CompPath::root("cc").child("stage7");
        let b = CompPath::root("cc/stage7");
        assert_eq!(a.id(), b.id());
    }
}
