//! Filter execution: wraps the pure [`FilterDef::apply`] semantics of
//! `snet-lang` in a stream component. Filters are the "housekeeping"
//! boxes of the coordination layer — renaming, duplication, elimination
//! and tag arithmetic — and run exactly like boxes, minus a
//! computational payload.

use crate::ctx::Ctx;
use crate::metrics::keys;
use crate::path::CompPath;
use crate::stream::{stream, Dir, Msg, Receiver};
use snet_lang::FilterDef;
use std::sync::Arc;

/// Spawns a filter component applying `def` to every incoming record.
/// Path interning and counter registration happen here, once; the
/// record loop is allocation-free on the bookkeeping side.
pub fn spawn_filter(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    def: FilterDef,
    input: Receiver,
) -> Receiver {
    let (tx, rx) = stream();
    let path = path.into().child("filter");
    ctx.metrics.handle_at(path, keys::SPAWNED).inc(1);
    let records_in = ctx.metrics.handle_at(path, keys::RECORDS_IN);
    let records_out = ctx.metrics.handle_at(path, keys::RECORDS_OUT);
    let ctx2 = Arc::clone(ctx);
    ctx.spawn(path.as_str(), async move {
        while let Ok(msg) = input.recv_async().await {
            match msg {
                Msg::Rec(rec) => {
                    if ctx2.has_observers() {
                        ctx2.observe(path, Dir::In, &rec);
                    }
                    records_in.inc(1);
                    if !rec.matches(&def.pattern) {
                        panic!(
                            "record {rec:?} does not match filter pattern {} at '{path}' — \
                             routing invariant violated",
                            def.pattern
                        );
                    }
                    let outs = def.apply(&rec).unwrap_or_else(|e| {
                        panic!("tag expression failed in filter at '{path}': {e}")
                    });
                    records_out.inc(outs.len() as u64);
                    for out in outs {
                        if ctx2.has_observers() {
                            ctx2.observe(path, Dir::Out, &out);
                        }
                        let _ = tx.send(Msg::Rec(out));
                    }
                }
                sort @ Msg::Sort { .. } => {
                    let _ = tx.send(sort);
                }
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use snet_lang::parse_filter;
    use snet_types::Record;

    fn test_ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    #[test]
    fn filter_duplicates_records() {
        // The paper's two-output filter produces two records per input.
        let ctx = test_ctx();
        let def = parse_filter("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(
            Record::build()
                .field("a", 1i64)
                .field("b", 2i64)
                .tag("c", 9)
                .finish(),
        ))
        .unwrap();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(Msg::Rec(r)) = out.recv() {
            got.push(r);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].tag("t"), Some(0));
        assert_eq!(got[1].tag("c"), Some(10));
        ctx.join_all();
        assert_eq!(ctx.metrics.get("net/filter/records_in"), 1);
        assert_eq!(ctx.metrics.get("net/filter/records_out"), 2);
    }

    #[test]
    fn fig2_style_tag_injection() {
        let ctx = test_ctx();
        let def = parse_filter("[{} -> {<k>=1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(Record::build().field("board", 1i64).finish()))
            .unwrap();
        drop(tx);
        match out.recv().unwrap() {
            Msg::Rec(r) => {
                assert_eq!(r.tag("k"), Some(1));
                assert!(r.field("board").is_some()); // flow inheritance
            }
            other => panic!("unexpected {other:?}"),
        }
        ctx.join_all();
    }

    #[test]
    fn sorts_flow_through_filters() {
        let ctx = test_ctx();
        let def = parse_filter("[{} -> {<x>=1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Sort {
            level: 1,
            counter: 3,
        })
        .unwrap();
        drop(tx);
        assert_eq!(
            out.recv().unwrap(),
            Msg::Sort {
                level: 1,
                counter: 3
            }
        );
        ctx.join_all();
    }

    #[test]
    fn non_matching_record_panics() {
        let ctx = test_ctx();
        let def = parse_filter("[{needed} -> {needed}]").unwrap();
        let (tx, input) = stream();
        let _out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(Record::build().tag("other", 1).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }
}
