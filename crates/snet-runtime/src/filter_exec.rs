//! Filter execution: wraps the pure [`FilterDef::apply`] semantics of
//! `snet-lang` in a stream component. Filters are the "housekeeping"
//! boxes of the coordination layer — renaming, duplication, elimination
//! and tag arithmetic — and run exactly like boxes, minus a
//! computational payload.
//!
//! Like boxes, filters resolve their per-record type work through
//! compiled shape plans (see `snet_types::shape`): the pattern's
//! shape is interned once at spawn, the split plan for each incoming
//! record *shape* is resolved once through a spawn-local cache, and
//! both the pattern check (plan exists?) and the flow-inheritance
//! excess (the plan's excess half) fall out of that single lookup —
//! no per-record subset tests, label searches or global-table locks.
//! A field and a tag of the same name stay distinct shapes by
//! construction, so the check cannot conflate them.

use crate::ctx::Ctx;
use crate::memo::PlanCache;
use crate::metrics::{keys, Counter};
use crate::path::CompPath;
use crate::stream::{feed_batch, for_each_msg, Dir, Msg, Receiver};
use snet_lang::FilterDef;
use snet_types::{Record, Shape};
use std::sync::Arc;

/// The per-record execution core of one filter instance — everything
/// except the stream loop, so the same core runs standalone
/// ([`spawn_filter`]) or as one stage of a fused pipeline
/// ([`crate::fused`]). Path interning and counter registration happen
/// at construction, once; processing is allocation-free on the
/// bookkeeping side and memoizes the pattern check per record shape.
pub(crate) struct FilterCore {
    def: FilterDef,
    path: CompPath,
    plans: PlanCache,
    /// `ctx.has_observers()`, resolved once (observers are fixed at
    /// context construction).
    observing: bool,
    /// The fault boundary, resolved once; `None` in the default
    /// configuration (see `BoxCore::guard`).
    guard: Option<crate::fault::FaultGuard>,
    records_in: Counter,
    records_out: Counter,
}

impl FilterCore {
    /// Registers the stage under `parent/filter` and resolves its
    /// counters.
    pub(crate) fn new(ctx: &Ctx, parent: CompPath, def: FilterDef) -> FilterCore {
        let path = parent.child("filter");
        ctx.metrics.handle_at(path, keys::SPAWNED).inc(1);
        FilterCore {
            plans: PlanCache::new(Shape::of_type(&def.pattern)),
            observing: ctx.has_observers(),
            guard: ctx.fault_guard(path),
            records_in: ctx.metrics.handle_at(path, keys::RECORDS_IN),
            records_out: ctx.metrics.handle_at(path, keys::RECORDS_OUT),
            def,
            path,
        }
    }

    /// The stage's interned component path.
    pub(crate) fn path(&self) -> CompPath {
        self.path
    }

    /// Runs one record through the filter; every output record is
    /// handed to `sink` in specifier order.
    pub(crate) fn process(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) {
        self.records_in.inc(1);
        let emitted = self.process_uncounted(ctx, rec, sink);
        self.records_out.inc(emitted);
    }

    /// Settles a run's worth of counter updates in two delta adds
    /// (see `BoxCore::add_counts`).
    pub(crate) fn add_counts(&self, records_in: u64, records_out: u64) {
        self.records_in.inc(records_in);
        self.records_out.inc(records_out);
    }

    /// The counter-free core of [`FilterCore::process`]; returns the
    /// output count for the caller's `records_out` accounting. Runs
    /// under the net's fault boundary when one is configured —
    /// pattern-mismatch and tag-expression panics (and chaos
    /// injections) are contained per the [`crate::FaultPolicy`],
    /// identically for standalone and fused stages.
    pub(crate) fn process_uncounted(
        &mut self,
        ctx: &Ctx,
        rec: &Record,
        sink: &mut dyn FnMut(Record),
    ) -> u64 {
        match self.guard.take() {
            None => self.process_raw(ctx, rec, sink),
            Some(mut g) => {
                let n = g.run(rec, sink, &mut |r, s| self.process_raw(ctx, r, s));
                self.guard = Some(g);
                n
            }
        }
    }

    /// The raw per-record path — no fault boundary.
    fn process_raw(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) -> u64 {
        if self.observing {
            ctx.observe(self.path, Dir::In, rec);
        }
        // Plan existence *is* the pattern check (subtype acceptance),
        // and its excess half is the filter's flow-inheritance source.
        let Some(plan) = self.plans.plan_for(rec) else {
            panic!(
                "record {rec:?} does not match filter pattern {} at '{}' — routing \
                 invariant violated",
                self.def.pattern, self.path
            )
        };
        let excess = rec.excess_with(plan);
        let outs = self
            .def
            .apply_with_excess(rec, &excess)
            .unwrap_or_else(|e| panic!("tag expression failed in filter at '{}': {e}", self.path));
        let n = outs.len() as u64;
        for out in outs {
            if self.observing {
                ctx.observe(self.path, Dir::Out, &out);
            }
            sink(out);
        }
        n
    }
}

/// Spawns a filter component applying `def` to every incoming record.
pub fn spawn_filter(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    def: FilterDef,
    input: Receiver,
) -> Receiver {
    let mut core = FilterCore::new(ctx, path.into(), def);
    let (tx, rx) = ctx.data_stream(core.path(), "out");
    let ctx2 = Arc::clone(ctx);
    ctx.spawn(core.path().as_str(), async move {
        if !tx.is_bounded() {
            for_each_msg(input, |msg| match msg {
                Msg::Rec(rec) => {
                    core.process(&ctx2, &rec, &mut |r| {
                        let _ = tx.send(Msg::Rec(r));
                    });
                }
                sort @ Msg::Sort { .. } => {
                    let _ = tx.send(sort);
                }
            })
            .await;
            return;
        }
        // Bounded output: per-record processing with credit-gated
        // publication (see spawn_box for the memory argument).
        let mut buf: Vec<Msg> = Vec::new();
        while let Ok(msg) = input.recv_async().await {
            match msg {
                Msg::Rec(rec) => {
                    core.process(&ctx2, &rec, &mut |r| buf.push(Msg::Rec(r)));
                    if feed_batch(&tx, &mut buf).await.is_err() {
                        return;
                    }
                }
                sort @ Msg::Sort { .. } => {
                    if tx.send(sort).is_err() {
                        return;
                    }
                }
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::stream::stream;
    use snet_lang::parse_filter;
    use snet_types::Record;

    fn test_ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    #[test]
    fn filter_duplicates_records() {
        // The paper's two-output filter produces two records per input.
        let ctx = test_ctx();
        let def = parse_filter("[{a,b,<c>} -> {a, z=a, <t>}; {b, a=b, <c>=<c>+1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(
            Record::build()
                .field("a", 1i64)
                .field("b", 2i64)
                .tag("c", 9)
                .finish(),
        ))
        .unwrap();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(Msg::Rec(r)) = out.recv() {
            got.push(r);
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].tag("t"), Some(0));
        assert_eq!(got[1].tag("c"), Some(10));
        ctx.join_all();
        assert_eq!(ctx.metrics.get("net/filter/records_in"), 1);
        assert_eq!(ctx.metrics.get("net/filter/records_out"), 2);
    }

    #[test]
    fn fig2_style_tag_injection() {
        let ctx = test_ctx();
        let def = parse_filter("[{} -> {<k>=1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(Record::build().field("board", 1i64).finish()))
            .unwrap();
        drop(tx);
        match out.recv().unwrap() {
            Msg::Rec(r) => {
                assert_eq!(r.tag("k"), Some(1));
                assert!(r.field("board").is_some()); // flow inheritance
            }
            other => panic!("unexpected {other:?}"),
        }
        ctx.join_all();
    }

    #[test]
    fn sorts_flow_through_filters() {
        let ctx = test_ctx();
        let def = parse_filter("[{} -> {<x>=1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Sort {
            level: 1,
            counter: 3,
        })
        .unwrap();
        drop(tx);
        assert_eq!(
            out.recv().unwrap(),
            Msg::Sort {
                level: 1,
                counter: 3
            }
        );
        ctx.join_all();
    }

    #[test]
    fn non_matching_record_panics() {
        let ctx = test_ctx();
        let def = parse_filter("[{needed} -> {needed}]").unwrap();
        let (tx, input) = stream();
        let _out = spawn_filter(&ctx, "net", def, input);
        tx.send(Msg::Rec(Record::build().tag("other", 1).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }

    #[test]
    fn memoized_pattern_check_stays_correct_across_repeats() {
        // The memo-hit path: many records of the same two types — only
        // the first of each pays the subset test; all must be admitted
        // (and transformed) identically.
        let ctx = test_ctx();
        let def = parse_filter("[{a} -> {a, <seen>=1}]").unwrap();
        let (tx, input) = stream();
        let out = spawn_filter(&ctx, "net", def, input);
        for i in 0..50i64 {
            // Alternate two distinct admitted types: {a} and {a,b}.
            let mut b = Record::build().field("a", i);
            if i % 2 == 1 {
                b = b.field("b", i);
            }
            tx.send(Msg::Rec(b.finish())).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(Msg::Rec(r)) = out.recv() {
            got.push(r);
        }
        ctx.join_all();
        assert_eq!(got.len(), 50);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.field("a").unwrap().as_int(), Some(i as i64));
            assert_eq!(r.tag("seen"), Some(1));
            // Flow inheritance must survive the memoized check.
            assert_eq!(r.field("b").is_some(), i % 2 == 1);
        }
        assert_eq!(ctx.metrics.get("net/filter/records_in"), 50);
    }

    #[test]
    fn memo_guard_distinguishes_field_from_tag_of_same_name() {
        // Field `k` and tag `<k>` share an interner id — the memo key
        // collision case its element-wise guard exists for. Admitting
        // field-`k` records first must not leak an acceptance onto the
        // tag-`k` type: the tag record still panics the component.
        let ctx = test_ctx();
        let def = parse_filter("[{k} -> {k}]").unwrap();
        let (tx, input) = stream();
        let _out = spawn_filter(&ctx, "net", def, input);
        // Warm the memo with the admitted field type...
        for i in 0..10i64 {
            tx.send(Msg::Rec(Record::build().field("k", i).finish()))
                .unwrap();
        }
        // ...then hit it with the colliding tag type.
        tx.send(Msg::Rec(Record::build().tag("k", 1).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err(), "tag-k record must not ride the field-k memo");
    }
}
