//! Plan instantiation: turns a compiled [`PNode`] tree into running
//! threads and channels, returning the output stream.
//!
//! Instantiation is re-entrant at runtime: the replicators call back
//! into [`instantiate`] to unfold replicas on demand, cloning subtree
//! handles from the plan.
//!
//! Instantiation is also where component paths come into existence:
//! every spawn site derives its [`CompPath`] here, once, so nothing
//! downstream ever formats a path per record (see [`crate::ctx`] for
//! the invariant).

use crate::boxfn::spawn_box;
use crate::ctx::Ctx;
use crate::filter_exec::spawn_filter;
use crate::fused::{fan_fusable_here, spawn_fused, spawn_fused_fan};
use crate::parallel::spawn_parallel;
use crate::path::CompPath;
use crate::plan::{FanKind, PNode};
use crate::split::spawn_split;
use crate::star::spawn_star;
use crate::stream::Receiver;
use std::sync::Arc;

/// Instantiates a plan node with the given input stream; returns the
/// node's output stream. `path` names the instance for metrics and
/// observers.
pub fn instantiate(
    ctx: &Arc<Ctx>,
    node: &Arc<PNode>,
    path: impl Into<CompPath>,
    input: Receiver,
) -> Receiver {
    let path = path.into();
    match &**node {
        PNode::Box { name, sig, imp } => {
            spawn_box(ctx, path, name, sig.clone(), Arc::clone(imp), input)
        }
        PNode::Filter { def } => spawn_filter(ctx, path, def.clone(), input),
        PNode::Serial { a, b } => {
            let mid = instantiate(ctx, a, path.child("s0"), input);
            instantiate(ctx, b, path.child("s1"), mid)
        }
        PNode::Parallel {
            left,
            right,
            left_sig,
            right_sig,
            det,
            level,
        } => spawn_parallel(
            ctx, path, left, right, left_sig, right_sig, *det, *level, input,
        ),
        PNode::Star {
            inner,
            exit,
            det,
            level,
        } => spawn_star(ctx, path, inner, exit, *det, *level, input),
        PNode::Split {
            inner,
            tag,
            det,
            level,
        } => spawn_split(ctx, path, inner, *tag, *det, *level, input),
        PNode::Fused { stages } => spawn_fused(ctx, path, stages, input),
        PNode::FusedFan { kind, det, level } => {
            // Plan-level legality got the node here; the runtime
            // check can still fall back to the unfused replicator
            // (escape hatch, Restart policy, explicit lane-edge
            // bound — see crate::fused::fan_fusable_here).
            if fan_fusable_here(ctx, kind) {
                spawn_fused_fan(ctx, path, kind, *det, input)
            } else {
                match kind {
                    FanKind::Split { body, tag } => {
                        spawn_split(ctx, path, body, *tag, *det, *level, input)
                    }
                    FanKind::Parallel {
                        left,
                        right,
                        left_sig,
                        right_sig,
                    } => spawn_parallel(
                        ctx, path, left, right, left_sig, right_sig, *det, *level, input,
                    ),
                    FanKind::Star { body, exit } => {
                        spawn_star(ctx, path, body, exit, *det, *level, input)
                    }
                }
            }
        }
        PNode::Chain { parts } => {
            // A partially fused Serial spine: parts connect in
            // sequence, each under its recorded suffix so component
            // paths match the unfused binary-tree instantiation.
            let mut cur = input;
            for part in parts {
                cur = instantiate(ctx, &part.node, path.descend(&part.suffix), cur);
            }
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile, Bindings};
    use crate::stream::{stream, Msg};
    use snet_lang::{parse_net_expr, parse_program};
    use snet_types::Record;

    #[test]
    fn serial_chain_end_to_end() {
        let env = parse_program(
            "box inc (x) -> (x);\n\
             box dbl (x) -> (x);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("inc", |r, e| {
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x + 1).finish());
            })
            .bind("dbl", |r, e| {
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x * 2).finish());
            });
        let ast = parse_net_expr("inc .. dbl .. inc").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for x in 0..5i64 {
            tx.send(Msg::Rec(Record::build().field("x", x).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let got: Vec<i64> = recs
            .iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect();
        // (x + 1) * 2 + 1
        assert_eq!(got, vec![3, 5, 7, 9, 11]);
    }

    #[test]
    fn paths_are_interned_per_component() {
        // Two instantiations of the same plan shape intern identical
        // path strings — metric keys line up across runs.
        let env = parse_program("box f (x) -> (x);").unwrap().env().unwrap();
        let b = Bindings::new().bind("f", |r, e| e.emit(r.clone()));
        let ast = parse_net_expr("f .. f").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        for _ in 0..2 {
            let ctx = Ctx::new(Metrics::new(), Vec::new());
            let (tx, in_rx) = stream();
            let out = instantiate(&ctx, &plan.root, "net", in_rx);
            tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
                .unwrap();
            drop(tx);
            let _ = collect_records(out);
            ctx.join_all();
            assert_eq!(ctx.metrics.get("net/s0/box:f/records_in"), 1);
            assert_eq!(ctx.metrics.get("net/s1/box:f/records_in"), 1);
        }
    }
}
