//! Box execution.
//!
//! "A box expects a record on its input stream to which it applies its
//! associated SaC function (the box function). An S-Net box may yield
//! multiple output records on the output stream in response to a
//! single input record. Therefore, we cannot use the value of the
//! function application as a result. Instead, the SaC function itself
//! calls, potentially repeatedly, an interface function snet_out"
//! (paper, Section 4).
//!
//! The Rust rendering: a box implementation is a
//! `Fn(&Record, &mut Emitter)` — the [`Emitter`] is `snet_out`. The
//! box wrapper thread performs the runtime halves of subtyping and
//! flow inheritance: it splits each incoming record into the part
//! matching the box's input type (what the function sees) and the
//! excess, and re-attaches the excess to every emitted record unless a
//! label is already present. "The implementation of the box function
//! is completely unaware of any potential excess fields and tags."
//!
//! Both halves are **shape-plan applications** (PR 4): the input
//! type's shape is interned once at spawn, the
//! [`snet_types::SplitPlan`] for each incoming record shape is
//! resolved once per shape (a spawn-local cache in front of the
//! process-wide plan table), and applying it is straight value-array
//! copies into inline record storage — no per-record heap allocation
//! for records within the inline capacity, no binary searches. When
//! the record's shape *is* the input type (the overwhelmingly common
//! monomorphic-stream case) the plan is the identity: the box is
//! handed a view of the incoming record itself and the emit path
//! skips inheritance entirely, so the hop copies nothing at all.
//!
//! The per-record half of all this — subtype split, function
//! application, flow inheritance, metrics, observation — lives in
//! [`BoxCore`], separate from the stream loop, so the same core runs
//! both as a standalone component ([`spawn_box`]) and as one stage of
//! a fused pipeline ([`crate::fused`]) where emissions cascade into
//! the next stage instead of a channel.

use crate::ctx::Ctx;
use crate::memo::PlanCache;
use crate::metrics::{keys, Counter};
use crate::path::CompPath;
use crate::stream::{feed_batch, for_each_msg, Dir, Msg, Receiver};
use snet_types::{BoxSig, Record, RecordType, Shape};
use std::sync::Arc;

/// A box implementation: the computational component behind a box.
/// It receives the matched input record and emits output records via
/// the [`Emitter`] — the equivalent of calling `snet_out` repeatedly.
pub type BoxImpl = Arc<dyn Fn(&Record, &mut Emitter) + Send + Sync>;

/// The `snet_out` interface handed to a box function. Records emitted
/// here are extended by flow inheritance and handed downstream
/// immediately ("output records ... are immediately sent to the output
/// stream") — to the component's output channel, or, inside a fused
/// pipeline, straight into the next stage.
pub struct Emitter<'a> {
    sink: &'a mut dyn FnMut(Record),
    excess: &'a Record,
    sig: &'a BoxSig,
    path: CompPath,
    ctx: &'a Ctx,
    /// `ctx.has_observers()`, resolved once at component spawn
    /// (observers are fixed at context construction).
    observing: bool,
    emitted: u64,
}

impl<'a> Emitter<'a> {
    /// Emits an output record. Flow inheritance is applied here: excess
    /// labels of the input record are attached unless present.
    pub fn emit(&mut self, rec: Record) {
        let rec = rec.inherit(self.excess);
        if self.observing {
            self.ctx.observe(self.path, Dir::Out, &rec);
        }
        self.emitted += 1;
        (self.sink)(rec);
    }

    /// Emits according to an output variant of the box signature —
    /// mirrors `snet_out(variant, v1, v2, ...)`: values are paired with
    /// the variant's labels in declaration order. Tags take their value
    /// from `Value::Int`; anything else is a field value.
    ///
    /// `variant` is 1-based, matching the paper's `snet_out(1, ...)`.
    pub fn emit_variant(&mut self, variant: usize, values: Vec<snet_types::Value>) {
        let labels = self
            .sig
            .outputs
            .get(variant - 1)
            .unwrap_or_else(|| panic!("box has no output variant {variant}"));
        assert_eq!(
            labels.len(),
            values.len(),
            "snet_out variant {variant} expects {} values, got {}",
            labels.len(),
            values.len()
        );
        let mut rec = Record::new();
        for (label, value) in labels.iter().zip(values) {
            if label.is_tag() {
                let v = value
                    .as_int()
                    .unwrap_or_else(|| panic!("tag {label} requires an integer value"));
                rec.set_tag_label(*label, v);
            } else {
                rec.set_field_label(*label, value);
            }
        }
        self.emit(rec);
    }

    /// Number of records emitted so far for the current input.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// The per-record execution core of one box instance: subtype split,
/// function application, flow inheritance, metrics, observation —
/// everything except the stream loop. All bookkeeping is resolved at
/// construction: the stage path is interned once, the counters are
/// registered once, and the input type's shape is interned so split
/// plans resolve per incoming record *shape* through a spawn-local
/// cache and apply as array copies.
pub(crate) struct BoxCore {
    sig: BoxSig,
    imp: BoxImpl,
    path: CompPath,
    input_type: RecordType,
    plans: PlanCache,
    /// Flow-inheritance source for identity splits: nothing to
    /// re-attach.
    no_excess: Record,
    /// `ctx.has_observers()`, resolved once (observers are fixed at
    /// context construction) — the record loop never chases the
    /// context for it.
    observing: bool,
    /// The fault boundary, resolved once at construction; `None` in
    /// the default (FailNet, no chaos) configuration so the hot path
    /// pays one predictable branch (see [`crate::fault`]). `Option`
    /// also lets [`BoxCore::process_uncounted`] move the guard out
    /// while the body borrows `&mut self`.
    guard: Option<crate::fault::FaultGuard>,
    records_in: Counter,
    records_out: Counter,
}

impl BoxCore {
    /// Registers the stage under `parent/box:{name}` and resolves its
    /// counters — the same spawn-time bookkeeping whether the core
    /// runs as its own component or as a fused stage.
    pub(crate) fn new(
        ctx: &Ctx,
        parent: CompPath,
        name: &str,
        sig: BoxSig,
        imp: BoxImpl,
    ) -> BoxCore {
        let path = parent.child(&format!("box:{name}"));
        ctx.metrics.handle_at(path, keys::SPAWNED).inc(1);
        let input_type = sig.input_type();
        BoxCore {
            plans: PlanCache::new(Shape::of_type(&input_type)),
            input_type,
            no_excess: Record::new(),
            observing: ctx.has_observers(),
            guard: ctx.fault_guard(path),
            records_in: ctx.metrics.handle_at(path, keys::RECORDS_IN),
            records_out: ctx.metrics.handle_at(path, keys::RECORDS_OUT),
            sig,
            imp,
            path,
        }
    }

    /// The stage's interned component path.
    pub(crate) fn path(&self) -> CompPath {
        self.path
    }

    /// Runs one record through the box: split, apply, inherit. Every
    /// output record is handed to `sink` in emission order.
    pub(crate) fn process(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) {
        self.records_in.inc(1);
        let emitted = self.process_uncounted(ctx, rec, sink);
        self.records_out.inc(emitted);
    }

    /// Settles a run's worth of counter updates in two delta adds —
    /// the fused driver pairs this with [`BoxCore::process_uncounted`]
    /// so a run of records costs two atomic RMWs, not two per record.
    pub(crate) fn add_counts(&self, records_in: u64, records_out: u64) {
        self.records_in.inc(records_in);
        self.records_out.inc(records_out);
    }

    /// The counter-free core of [`BoxCore::process`]; returns the
    /// emission count for the caller's `records_out` accounting.
    /// Runs under the net's fault boundary when one is configured —
    /// a panic in the box function (or a chaos injection) is
    /// contained per the [`crate::FaultPolicy`], identically for
    /// standalone and fused stages.
    pub(crate) fn process_uncounted(
        &mut self,
        ctx: &Ctx,
        rec: &Record,
        sink: &mut dyn FnMut(Record),
    ) -> u64 {
        match self.guard.take() {
            None => self.process_raw(ctx, rec, sink),
            Some(mut g) => {
                let n = g.run(rec, sink, &mut |r, s| self.process_raw(ctx, r, s));
                self.guard = Some(g);
                n
            }
        }
    }

    /// The raw per-record path: split, apply, inherit — no fault
    /// boundary (panics unwind to the caller).
    fn process_raw(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) -> u64 {
        if self.observing {
            ctx.observe(self.path, Dir::In, rec);
        }
        let Some(plan) = self.plans.plan_for(rec) else {
            panic!(
                "record {rec:?} does not match input type {} of box '{}' — routing \
                 invariant violated",
                self.input_type, self.path
            )
        };
        if plan.is_identity() {
            // The record carries exactly the input type's labels: hand
            // the box a view of it directly, no split copies and
            // nothing to inherit at emit.
            let mut em = Emitter {
                sink,
                excess: &self.no_excess,
                sig: &self.sig,
                path: self.path,
                ctx,
                observing: self.observing,
                emitted: 0,
            };
            (self.imp)(rec, &mut em);
            em.emitted
        } else {
            let (matched, excess) = rec.split_with(plan);
            let mut em = Emitter {
                sink,
                excess: &excess,
                sig: &self.sig,
                path: self.path,
                ctx,
                observing: self.observing,
                emitted: 0,
            };
            (self.imp)(&matched, &mut em);
            em.emitted
        }
    }
}

/// Spawns a box component: a task applying `imp` to every incoming
/// record. Returns the box's output stream.
pub fn spawn_box(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    name: &str,
    sig: BoxSig,
    imp: BoxImpl,
    input: Receiver,
) -> Receiver {
    let mut core = BoxCore::new(ctx, path.into(), name, sig, imp);
    let (tx, rx) = ctx.data_stream(core.path(), "out");
    let ctx2 = Arc::clone(ctx);
    ctx.spawn(core.path().as_str(), async move {
        if !tx.is_bounded() {
            // Unbounded output (the default): batched delivery via
            // for_each_msg (see crate::stream) — one wake drains a
            // whole batch instead of paying a waker round-trip per
            // record; messages arrive in stream order.
            for_each_msg(input, |msg| match msg {
                Msg::Rec(rec) => {
                    // A send failure means the downstream component is
                    // gone, which only happens during teardown; the
                    // record is simply dropped.
                    core.process(&ctx2, &rec, &mut |r| {
                        let _ = tx.send(Msg::Rec(r));
                    });
                }
                // Sort records pass through unchanged, behind any data
                // already emitted for earlier records (guaranteed by
                // the in-order delivery).
                sort @ Msg::Sort { .. } => {
                    let _ = tx.send(sort);
                }
            })
            .await;
            return;
            // Input disconnected: dropping `tx` propagates
            // end-of-stream.
        }
        // Bounded output: one input record at a time, its emissions
        // published through the credit gate before the next input is
        // consumed — transient memory is one record's amplification,
        // not a batch's. Sort records take the ungated path so a
        // deterministic round boundary is never held up by a full
        // edge (see crate::stream).
        let mut buf: Vec<Msg> = Vec::new();
        while let Ok(msg) = input.recv_async().await {
            match msg {
                Msg::Rec(rec) => {
                    core.process(&ctx2, &rec, &mut |r| buf.push(Msg::Rec(r)));
                    if feed_batch(&tx, &mut buf).await.is_err() {
                        return; // downstream gone: teardown
                    }
                }
                sort @ Msg::Sort { .. } => {
                    if tx.send(sort).is_err() {
                        return;
                    }
                }
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::stream::stream;
    use snet_types::{Label, Value};

    fn test_ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    fn foo_sig() -> BoxSig {
        // box foo (a,<b>) -> (c) | (c,d,<e>)
        BoxSig::new(
            vec![Label::field("a"), Label::tag("b")],
            vec![
                vec![Label::field("c")],
                vec![Label::field("c"), Label::field("d"), Label::tag("e")],
            ],
        )
    }

    #[test]
    fn box_applies_function_and_flow_inherits() {
        // The paper's worked example: foo receives {a,<b>,d}; the
        // first-variant output {c} gains d by flow inheritance, the
        // second-variant output keeps its own d.
        let ctx = test_ctx();
        let (tx, input) = stream();
        let imp: BoxImpl = Arc::new(|rec, em| {
            let a = rec.field("a").unwrap().as_int().unwrap();
            // snet_out(1, x)
            em.emit_variant(1, vec![Value::Int(a * 10)]);
            // snet_out(2, x, y, 42)
            em.emit_variant(2, vec![Value::Int(a * 10), Value::Int(-1), Value::Int(42)]);
        });
        let out = spawn_box(&ctx, "net", "foo", foo_sig(), imp, input);
        tx.send(Msg::Rec(
            Record::build()
                .field("a", 5i64)
                .tag("b", 0)
                .field("d", 7i64)
                .finish(),
        ))
        .unwrap();
        drop(tx);

        let r1 = match out.recv().unwrap() {
            Msg::Rec(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(r1.field("c").unwrap().as_int(), Some(50));
        assert_eq!(r1.field("d").unwrap().as_int(), Some(7)); // inherited
        let r2 = match out.recv().unwrap() {
            Msg::Rec(r) => r,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(r2.field("d").unwrap().as_int(), Some(-1)); // own d wins
        assert_eq!(r2.tag("e"), Some(42));
        // <b> was consumed (in the input type), so it does NOT reappear.
        assert_eq!(r2.tag("b"), None);
        assert!(out.recv().is_err());
        ctx.join_all();
    }

    #[test]
    fn box_may_emit_nothing() {
        // solveOneLevel emits no record when the search is stuck.
        let ctx = test_ctx();
        let (tx, input) = stream();
        let imp: BoxImpl = Arc::new(|_rec, _em| {});
        let sig = BoxSig::new(vec![Label::field("a")], vec![vec![Label::field("a")]]);
        let out = spawn_box(&ctx, "net", "mute", sig, imp, input);
        tx.send(Msg::Rec(Record::build().field("a", 1i64).finish()))
            .unwrap();
        drop(tx);
        assert!(out.recv().is_err());
        ctx.join_all();
        assert_eq!(ctx.metrics.get("net/box:mute/records_in"), 1);
        assert_eq!(ctx.metrics.get("net/box:mute/records_out"), 0);
    }

    #[test]
    fn box_forwards_sort_records_behind_data() {
        let ctx = test_ctx();
        let (tx, input) = stream();
        let imp: BoxImpl = Arc::new(|rec, em| em.emit(rec.clone()));
        let sig = BoxSig::new(vec![Label::field("a")], vec![vec![Label::field("a")]]);
        let out = spawn_box(&ctx, "net", "id", sig, imp, input);
        tx.send(Msg::Rec(Record::build().field("a", 1i64).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        tx.send(Msg::Rec(Record::build().field("a", 2i64).finish()))
            .unwrap();
        drop(tx);
        assert!(matches!(out.recv().unwrap(), Msg::Rec(_)));
        assert_eq!(
            out.recv().unwrap(),
            Msg::Sort {
                level: 0,
                counter: 0
            }
        );
        assert!(matches!(out.recv().unwrap(), Msg::Rec(_)));
        ctx.join_all();
    }

    #[test]
    fn mismatched_record_panics_the_component() {
        let ctx = test_ctx();
        let (tx, input) = stream();
        let imp: BoxImpl = Arc::new(|_r, _e| {});
        let sig = BoxSig::new(vec![Label::field("needed")], vec![vec![]]);
        let _out = spawn_box(&ctx, "net", "strict", sig, imp, input);
        tx.send(Msg::Rec(Record::build().field("other", 1i64).finish()))
            .unwrap();
        drop(tx);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ctx.join_all()));
        assert!(r.is_err());
    }

    #[test]
    fn multiple_records_processed_in_order() {
        let ctx = test_ctx();
        let (tx, input) = stream();
        let imp: BoxImpl = Arc::new(|rec, em| {
            let v = rec.field("a").unwrap().as_int().unwrap();
            em.emit(Record::build().field("a", v * 2).finish());
        });
        let sig = BoxSig::new(vec![Label::field("a")], vec![vec![Label::field("a")]]);
        let out = spawn_box(&ctx, "net", "dbl", sig, imp, input);
        for i in 0..10i64 {
            tx.send(Msg::Rec(Record::build().field("a", i).finish()))
                .unwrap();
        }
        drop(tx);
        for i in 0..10i64 {
            match out.recv().unwrap() {
                Msg::Rec(r) => assert_eq!(r.field("a").unwrap().as_int(), Some(i * 2)),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(out.recv().is_err());
        ctx.join_all();
    }
}
