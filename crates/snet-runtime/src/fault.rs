//! Fault containment: typed faults, per-net fault policies, and
//! deterministic chaos injection at the box/filter execution boundary.
//!
//! The paper treats boxes as opaque user code, so the runtime must
//! assume they can fail. Before this module, a panicking box unwound
//! the whole net through [`crate::Ctx::join_all`] and a serve caller
//! whose request crossed the dead component hung until its deadline.
//! This module adds the failure boundary:
//!
//! * **Where faults are caught.** At the shared per-record execution
//!   cores ([`crate::boxfn::BoxCore`] /
//!   [`crate::filter_exec::FilterCore`]) — the exact point both the
//!   standalone components and the fused pipeline driver
//!   ([`crate::fused`]) call through, so a fused stage and its
//!   unfused twin fail identically. Coordination-layer components
//!   (dispatchers, mergers, guards) are runtime code, not user code;
//!   a panic there is always fatal to the net regardless of policy.
//! * **What a fault becomes.** A typed [`Fault`] carrying the
//!   component path, the panic message and (when the policy dropped
//!   it) the poison record — raised through the per-net [`FaultHub`]
//!   to metrics (`runtime/component_panics`, per-stage `panics`),
//!   fault observers ([`FaultObserver`], see
//!   [`crate::NetBuilder::on_fault`] and
//!   [`crate::TraceLog::fault_observer`]) and the serve layer (which
//!   fails the owning request promptly with
//!   [`crate::CallError::Faulted`] instead of letting the caller hang
//!   to its deadline).
//! * **What happens next** is the per-net [`FaultPolicy`]:
//!   [`FaultPolicy::FailNet`] (the default — today's behaviour, the
//!   panic resumes and `join_all` propagates it),
//!   [`FaultPolicy::SkipRecord`] (drop the poison record, count it
//!   under `records_skipped`, keep the component alive) and
//!   [`FaultPolicy::Restart`] (re-run the stateless stage on the same
//!   record with bounded exponential backoff, giving up to a skip
//!   once the retry budget is spent).
//!
//! # Emission buffering (why retries cannot duplicate output)
//!
//! A guarded stage buffers its emissions in a scratch vector and
//! flushes to the real sink only after the record's attempt
//! *succeeded*. A panic mid-emission therefore publishes nothing: a
//! retried record starts from a clean buffer, and a skipped record
//! contributes no output at all — exactly like a box that chose to
//! emit nothing. Downstream components, merge barriers and the serve
//! demux never see a partial cascade.
//!
//! # Why `SkipRecord` cannot break deterministic merging
//!
//! Sort records — the tokens the deterministic combinators encode
//! ordering in ([`crate::merge`]) — never pass through the execution
//! cores; the stream loops forward them outside the guarded region.
//! A skipped *data* record is indistinguishable from a box emitting
//! zero records for it, which the det-merge protocol already handles:
//! round boundaries still arrive on every branch, in order. Det
//! output remains byte-identical across {fused, unfused} ×
//! {threads, pool} with any policy; injection off means the guarded
//! path is a single always-successful attempt.
//!
//! # Deterministic chaos ([`ChaosConfig`])
//!
//! Fault handling that is only exercised by real bugs is untested
//! fault handling. [`ChaosConfig`] injects panics (and stalls) at the
//! core boundary, *deterministically*: the decision for record `n` at
//! stage `p` is a pure hash of `(seed, fnv(p), n)` — no global RNG,
//! no time dependence — so a soak run is reproducible from its seed
//! and a poison record panics again on every [`FaultPolicy::Restart`]
//! retry (the per-stage record counter does not advance on retries).
//! Enable per net with [`crate::NetBuilder::chaos`] or process-wide
//! with `SNET_CHAOS=seed:rate[:stall_rate:stall_ms]`
//! ([`ChaosConfig::from_env`]); `SNET_FAULT_POLICY=failnet|skip|`
//! `restart[:retries:backoff_ms]` selects the policy the same way.

use crate::metrics::{keys, Counter, Metrics};
use crate::path::CompPath;
use parking_lot::Mutex;
use snet_types::Record;
use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

/// What the runtime does when a box or filter stage panics while
/// processing a record. Per net ([`crate::NetBuilder::fault_policy`]
/// / [`crate::ctx::RunCfg::fault_policy`]), applied identically to
/// standalone and fused stages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// The panic unwinds the component and
    /// [`crate::Ctx::join_all`] re-raises it: one poison record kills
    /// the whole net. The default — and the only behaviour for
    /// coordination-layer components regardless of policy.
    #[default]
    FailNet,
    /// Drop the poison record (counted under `{path}/records_skipped`
    /// and raised as a [`Fault`] with the record attached), keep the
    /// component alive. The net's output simply misses that record's
    /// contribution, like a box that emitted nothing.
    SkipRecord,
    /// Re-run the stage on the same record up to `max_retries` times
    /// with exponential backoff (`backoff`, `2·backoff`,
    /// `4·backoff`, …), then give up to [`FaultPolicy::SkipRecord`]
    /// semantics. Sound for S-Net stages because the paper requires
    /// boxes to be stateless; the backoff sleep blocks the stage (and
    /// under a pool, its worker) — keep it small.
    Restart { max_retries: u32, backoff: Duration },
}

impl FaultPolicy {
    /// The process-default policy from `SNET_FAULT_POLICY`:
    /// `failnet` (default), `skip`, `restart` (3 retries, 1 ms
    /// backoff) or `restart:RETRIES:BACKOFF_MS`.
    pub fn from_env() -> FaultPolicy {
        std::env::var("SNET_FAULT_POLICY")
            .ok()
            .and_then(|v| FaultPolicy::parse(&v))
            .unwrap_or_default()
    }

    /// Whether this policy can block a stage mid-record (the restart
    /// backoff sleep). Fused fans check this at spawn and fall back
    /// to the unfused topology: inside one fused component the sleep
    /// would park every co-scheduled lane, not just the faulty one,
    /// whereas skip/failnet resolve synchronously and contain
    /// identically fused or unfused (the guard lives inside the
    /// stage core either way, and chaos decision streams are keyed
    /// by the stage path, which fusion preserves).
    pub fn restarts(&self) -> bool {
        matches!(self, FaultPolicy::Restart { .. })
    }

    /// Parses the `SNET_FAULT_POLICY` syntax; `None` on anything
    /// unrecognised (callers fall back to the default).
    pub fn parse(s: &str) -> Option<FaultPolicy> {
        let s = s.trim();
        match s {
            "failnet" => Some(FaultPolicy::FailNet),
            "skip" => Some(FaultPolicy::SkipRecord),
            "restart" => Some(FaultPolicy::Restart {
                max_retries: 3,
                backoff: Duration::from_millis(1),
            }),
            _ => {
                let rest = s.strip_prefix("restart:")?;
                let (retries, ms) = rest.split_once(':')?;
                Some(FaultPolicy::Restart {
                    max_retries: retries.trim().parse().ok()?,
                    backoff: Duration::from_millis(ms.trim().parse().ok()?),
                })
            }
        }
    }
}

/// Deterministic fault injection at the core boundary (see module
/// docs). Rates are probabilities in `[0, 1]` evaluated per record
/// per stage by a seeded hash — two runs with the same seed, net and
/// input inject identically.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Base seed; mixed with a stable hash of each stage's path.
    pub seed: u64,
    /// Probability that processing a record panics at the stage
    /// boundary.
    pub panic_rate: f64,
    /// Probability that processing a record first stalls for
    /// [`ChaosConfig::stall`].
    pub stall_rate: f64,
    /// Injected stall duration.
    pub stall: Duration,
}

impl ChaosConfig {
    /// Panic-only injection at `rate`, no stalls.
    pub fn new(seed: u64, rate: f64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_rate: rate,
            stall_rate: 0.0,
            stall: Duration::ZERO,
        }
    }

    /// The process-default injection from `SNET_CHAOS`
    /// (`seed:rate[:stall_rate:stall_ms]`); `None` when unset or
    /// unparsable — injection never engages by accident.
    pub fn from_env() -> Option<ChaosConfig> {
        ChaosConfig::parse(&std::env::var("SNET_CHAOS").ok()?)
    }

    /// Parses the `SNET_CHAOS` syntax.
    pub fn parse(s: &str) -> Option<ChaosConfig> {
        let mut parts = s.trim().split(':');
        let seed = parts.next()?.trim().parse().ok()?;
        let panic_rate: f64 = parts.next()?.trim().parse().ok()?;
        let (stall_rate, stall_ms) = match (parts.next(), parts.next()) {
            (Some(r), Some(ms)) => (r.trim().parse().ok()?, ms.trim().parse().ok()?),
            (None, _) => (0.0, 0u64),
            _ => return None,
        };
        if parts.next().is_some() || !(0.0..=1.0).contains(&panic_rate) {
            return None;
        }
        Some(ChaosConfig {
            seed,
            panic_rate,
            stall_rate,
            stall: Duration::from_millis(stall_ms),
        })
    }
}

/// One contained component failure, as delivered to
/// [`FaultObserver`]s and kept in the net's fault log.
#[derive(Clone, Debug)]
pub struct Fault {
    /// Interned component path text (e.g. `net/s1/box:solve`), or the
    /// task name for component-level deaths under
    /// [`FaultPolicy::FailNet`].
    pub component: String,
    /// The panic message (payload downcast to a string when
    /// possible).
    pub msg: String,
    /// The poison record, when the policy dropped it (terminal skip).
    /// `None` for component-level deaths and recovered restarts.
    pub dropped: Option<Record>,
}

/// A fault subscriber: called synchronously from the faulting
/// component's thread/worker — keep it cheap and never block on the
/// net's own streams.
pub type FaultObserver = Arc<dyn Fn(&Fault) + Send + Sync>;

/// Cap on the per-net fault log (diagnostic ring; chaos soaks inject
/// thousands of faults and the log must not become the memory story).
const FAULT_LOG_CAP: usize = 1024;

/// The per-net fault channel: every contained fault — guarded-core
/// skips/restarts *and* component-level deaths reported by the
/// tracker ([`crate::sched::Tracker`]) — funnels through here to
/// metrics, subscribers and the fault log. One per [`crate::Ctx`].
pub(crate) struct FaultHub {
    metrics: Arc<Metrics>,
    /// `runtime/component_panics`: fault incidents (one per faulted
    /// record or dead component, not per retry attempt).
    component_panics: Counter,
    subscribers: Mutex<Vec<FaultObserver>>,
    log: Mutex<Vec<Fault>>,
}

impl FaultHub {
    pub(crate) fn new(metrics: Arc<Metrics>) -> Arc<FaultHub> {
        Arc::new(FaultHub {
            component_panics: metrics.handle(keys::COMPONENT_PANICS),
            metrics,
            subscribers: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
        })
    }

    /// Registers a fault subscriber.
    pub(crate) fn subscribe(&self, obs: FaultObserver) {
        self.subscribers.lock().push(obs);
    }

    /// Records one fault incident: counts it, notifies subscribers
    /// (outside any hub lock — subscribers may take their own), and
    /// appends to the bounded fault log.
    pub(crate) fn raise(&self, fault: Fault) {
        self.component_panics.inc(1);
        // Cold path: faults are exceptional, the string-keyed registry
        // API is fine here.
        self.metrics
            .inc(format!("{}/{}", fault.component, keys::PANICS), 1);
        let subs = self.subscribers.lock().clone();
        for s in &subs {
            s(&fault);
        }
        let mut log = self.log.lock();
        if log.len() < FAULT_LOG_CAP {
            log.push(fault);
        }
    }

    /// Snapshot of the fault log (oldest first, capped at
    /// [`FAULT_LOG_CAP`]).
    pub(crate) fn faults(&self) -> Vec<Fault> {
        self.log.lock().clone()
    }
}

/// Renders a panic payload as a message string (panics carry `&str`
/// or `String` payloads in practice).
pub(crate) fn payload_msg(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Chaos decision for one record at one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    Clean,
    Panic,
    Stall,
}

/// The deterministic per-stage injector: a counter-mode hash stream
/// seeded by `(config seed) ⊕ fnv64(stage path)`. Stable across runs
/// (the path *text* is hashed, not its interner id, which depends on
/// process-global interning order).
struct ChaosInjector {
    state: u64,
    n: u64,
    panic_cut: u64,
    stall_cut: u64,
    stall: Duration,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn rate_cut(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64
}

impl ChaosInjector {
    fn new(cfg: &ChaosConfig, path: CompPath) -> ChaosInjector {
        ChaosInjector {
            state: cfg.seed ^ fnv64(path.as_str()),
            n: 0,
            panic_cut: rate_cut(cfg.panic_rate),
            stall_cut: rate_cut(cfg.stall_rate),
            stall: cfg.stall,
        }
    }

    /// The decision for the next record. Advances the per-record
    /// counter — called once per record, *not* per retry, so a poison
    /// record stays poisoned across [`FaultPolicy::Restart`] attempts.
    fn decide(&mut self) -> Decision {
        let x = splitmix64(self.state ^ self.n);
        self.n += 1;
        if x < self.panic_cut {
            Decision::Panic
        } else if splitmix64(x) < self.stall_cut {
            Decision::Stall
        } else {
            Decision::Clean
        }
    }
}

/// The shape of a guarded stage body: processes one record, emitting
/// through the provided sink, and returns the emission count.
pub(crate) type StageBody<'a> = dyn FnMut(&Record, &mut dyn FnMut(Record)) -> u64 + 'a;

/// The per-stage fault boundary, resolved once at core construction
/// ([`crate::Ctx::fault_guard`]): `None` when the policy is
/// [`FaultPolicy::FailNet`] and injection is off — the hot path then
/// pays a single predictable branch and runs the seed's raw code.
pub(crate) struct FaultGuard {
    policy: FaultPolicy,
    chaos: Option<ChaosInjector>,
    hub: Arc<FaultHub>,
    path: CompPath,
    skipped: Counter,
    restarts: Counter,
    /// `runtime/chaos_injected`: injected panic decisions (one per
    /// poisoned record; equals `runtime/component_panics` when chaos
    /// is the only fault source and the policy contains faults).
    injected: Counter,
    /// Emission buffer: flushed to the real sink only after a
    /// successful attempt (see module docs).
    buf: Vec<Record>,
}

impl FaultGuard {
    /// The guard for one stage, or `None` for the zero-cost default.
    pub(crate) fn for_stage(
        policy: FaultPolicy,
        chaos: Option<&ChaosConfig>,
        hub: &Arc<FaultHub>,
        metrics: &Arc<Metrics>,
        path: CompPath,
    ) -> Option<FaultGuard> {
        if policy == FaultPolicy::FailNet && chaos.is_none() {
            return None;
        }
        Some(FaultGuard {
            policy,
            chaos: chaos.map(|c| ChaosInjector::new(c, path)),
            hub: Arc::clone(hub),
            path,
            skipped: metrics.handle_at(path, keys::RECORDS_SKIPPED),
            restarts: metrics.handle_at(path, keys::RESTARTS),
            injected: metrics.handle(keys::CHAOS_INJECTED),
            buf: Vec::new(),
        })
    }

    /// Runs one record through `body` under the fault policy.
    /// Emissions buffer in the guard and flush to `sink` only on
    /// success; the return value is the emission count (0 for a
    /// skipped record). Panics are caught here — except under
    /// [`FaultPolicy::FailNet`], where the payload resumes unwinding
    /// and the component-level accounting (tracker → hub) takes over.
    pub(crate) fn run(
        &mut self,
        rec: &Record,
        sink: &mut dyn FnMut(Record),
        body: &mut StageBody<'_>,
    ) -> u64 {
        let decision = match &mut self.chaos {
            Some(c) => c.decide(),
            None => Decision::Clean,
        };
        match decision {
            Decision::Stall => {
                // An injected stall models a slow box, not a failure:
                // processing proceeds normally afterwards.
                let d = self.chaos.as_ref().map(|c| c.stall).unwrap_or_default();
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
            Decision::Panic => self.injected.inc(1),
            Decision::Clean => {}
        }
        let inject = decision == Decision::Panic;
        let (max_retries, backoff) = match self.policy {
            FaultPolicy::Restart {
                max_retries,
                backoff,
            } => (max_retries, backoff),
            _ => (0, Duration::ZERO),
        };
        let mut attempt: u32 = 0;
        let mut last_msg = String::new();
        loop {
            self.buf.clear();
            let buf = &mut self.buf;
            // The cores' state is append-only memo caches, safe to
            // reuse after an unwind; the emission buffer is cleared
            // per attempt, so a partial cascade never leaks.
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject {
                    panic!("chaos: injected panic");
                }
                body(rec, &mut |r| buf.push(r))
            }));
            match res {
                Ok(n) => {
                    if attempt > 0 {
                        // Recovered after restart: still a fault
                        // incident (a real transient bug), but nothing
                        // was dropped.
                        self.hub.raise(Fault {
                            component: self.path.as_str().to_string(),
                            msg: format!("recovered after {attempt} restart(s): {last_msg}"),
                            dropped: None,
                        });
                    }
                    for r in self.buf.drain(..) {
                        sink(r);
                    }
                    return n;
                }
                Err(payload) => {
                    if self.policy == FaultPolicy::FailNet {
                        // Injection under FailNet: today's semantics.
                        // The tracker's completion path raises the
                        // component-level fault — raising here too
                        // would double-count the incident.
                        std::panic::resume_unwind(payload);
                    }
                    last_msg = payload_msg(payload.as_ref());
                    if attempt < max_retries {
                        self.restarts.inc(1);
                        let delay = backoff.saturating_mul(1u32 << attempt.min(16));
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        attempt += 1;
                        continue;
                    }
                    // Retry budget spent (or SkipRecord): drop the
                    // poison record, keep the component alive.
                    self.skipped.inc(1);
                    self.hub.raise(Fault {
                        component: self.path.as_str().to_string(),
                        msg: last_msg,
                        dropped: Some(rec.clone()),
                    });
                    return 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parsing() {
        assert_eq!(FaultPolicy::parse("failnet"), Some(FaultPolicy::FailNet));
        assert_eq!(FaultPolicy::parse("skip"), Some(FaultPolicy::SkipRecord));
        assert_eq!(
            FaultPolicy::parse("restart"),
            Some(FaultPolicy::Restart {
                max_retries: 3,
                backoff: Duration::from_millis(1)
            })
        );
        assert_eq!(
            FaultPolicy::parse("restart:5:20"),
            Some(FaultPolicy::Restart {
                max_retries: 5,
                backoff: Duration::from_millis(20)
            })
        );
        assert_eq!(FaultPolicy::parse("restart:x:y"), None);
        assert_eq!(FaultPolicy::parse("bogus"), None);
    }

    #[test]
    fn chaos_parsing() {
        assert_eq!(
            ChaosConfig::parse("42:0.01"),
            Some(ChaosConfig::new(42, 0.01))
        );
        assert_eq!(
            ChaosConfig::parse("7:0.5:0.25:3"),
            Some(ChaosConfig {
                seed: 7,
                panic_rate: 0.5,
                stall_rate: 0.25,
                stall: Duration::from_millis(3),
            })
        );
        assert_eq!(ChaosConfig::parse(""), None);
        assert_eq!(ChaosConfig::parse("1"), None);
        assert_eq!(
            ChaosConfig::parse("1:2.0"),
            None,
            "rate must be a probability"
        );
        assert_eq!(
            ChaosConfig::parse("1:0.1:0.2"),
            None,
            "stall needs a duration"
        );
    }

    #[test]
    fn injector_is_deterministic_and_rate_shaped() {
        let cfg = ChaosConfig::new(1234, 0.1);
        let path = CompPath::root("net").child("box:f");
        let mut a = ChaosInjector::new(&cfg, path);
        let mut b = ChaosInjector::new(&cfg, path);
        let da: Vec<Decision> = (0..10_000).map(|_| a.decide()).collect();
        let db: Vec<Decision> = (0..10_000).map(|_| b.decide()).collect();
        assert_eq!(da, db, "same seed + path must replay identically");
        let panics = da.iter().filter(|d| **d == Decision::Panic).count();
        // 10% of 10k with generous slack.
        assert!((600..=1400).contains(&panics), "panics {panics}");
        // A different stage path decides differently.
        let mut c = ChaosInjector::new(&cfg, CompPath::root("net").child("box:g"));
        let dc: Vec<Decision> = (0..10_000).map(|_| c.decide()).collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn zero_rate_never_injects() {
        let cfg = ChaosConfig::new(99, 0.0);
        let mut inj = ChaosInjector::new(&cfg, CompPath::root("net"));
        assert!((0..10_000).all(|_| inj.decide() == Decision::Clean));
    }

    #[test]
    fn guard_skips_and_raises_on_panic() {
        let metrics = Metrics::new();
        let hub = FaultHub::new(Arc::clone(&metrics));
        let path = CompPath::root("net").child("box:boom");
        let mut g = FaultGuard::for_stage(FaultPolicy::SkipRecord, None, &hub, &metrics, path)
            .expect("skip policy guards");
        let rec = Record::build().field("x", 1i64).finish();
        let mut out = Vec::new();
        let n = g.run(&rec, &mut |r| out.push(r), &mut |_r, _sink| {
            panic!("box bug")
        });
        assert_eq!(n, 0);
        assert!(out.is_empty());
        assert_eq!(metrics.get(keys::COMPONENT_PANICS), 1);
        assert_eq!(metrics.get("net/box:boom/records_skipped"), 1);
        let faults = hub.faults();
        assert_eq!(faults.len(), 1);
        assert_eq!(faults[0].component, "net/box:boom");
        assert_eq!(faults[0].msg, "box bug");
        assert!(faults[0].dropped.is_some());
    }

    #[test]
    fn guard_buffers_emissions_across_retries() {
        // First attempt emits one record then panics; the retry
        // succeeds with two emissions. The sink must see exactly the
        // successful attempt's records — no duplicate from attempt 0.
        let metrics = Metrics::new();
        let hub = FaultHub::new(Arc::clone(&metrics));
        let path = CompPath::root("net").child("box:flaky");
        let mut g = FaultGuard::for_stage(
            FaultPolicy::Restart {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
            None,
            &hub,
            &metrics,
            path,
        )
        .unwrap();
        let rec = Record::build().field("x", 7i64).finish();
        let mut out = Vec::new();
        let mut calls = 0u32;
        let n = g.run(&rec, &mut |r| out.push(r), &mut |r, sink| {
            calls += 1;
            sink(r.clone());
            if calls == 1 {
                panic!("transient");
            }
            sink(r.clone());
            2
        });
        assert_eq!(n, 2);
        assert_eq!(out.len(), 2, "attempt 0's partial emission must not leak");
        assert_eq!(metrics.get("net/box:flaky/restarts"), 1);
        // Recovered: one incident raised, nothing dropped.
        assert_eq!(metrics.get(keys::COMPONENT_PANICS), 1);
        assert!(hub.faults()[0].dropped.is_none());
    }

    #[test]
    fn restart_budget_exhausts_to_skip() {
        let metrics = Metrics::new();
        let hub = FaultHub::new(Arc::clone(&metrics));
        let path = CompPath::root("net").child("box:dead");
        let mut g = FaultGuard::for_stage(
            FaultPolicy::Restart {
                max_retries: 3,
                backoff: Duration::ZERO,
            },
            None,
            &hub,
            &metrics,
            path,
        )
        .unwrap();
        let rec = Record::build().field("x", 1i64).finish();
        let mut attempts = 0u32;
        let n = g.run(&rec, &mut |_r| {}, &mut |_r, _sink| {
            attempts += 1;
            panic!("always")
        });
        assert_eq!(n, 0);
        assert_eq!(attempts, 4, "initial attempt + 3 retries");
        assert_eq!(metrics.get("net/box:dead/restarts"), 3);
        assert_eq!(metrics.get("net/box:dead/records_skipped"), 1);
        assert_eq!(
            metrics.get(keys::COMPONENT_PANICS),
            1,
            "one incident, not four"
        );
    }

    #[test]
    fn failnet_guard_rethrows_without_raising() {
        let metrics = Metrics::new();
        let hub = FaultHub::new(Arc::clone(&metrics));
        // FailNet alone needs no guard at all...
        assert!(FaultGuard::for_stage(
            FaultPolicy::FailNet,
            None,
            &hub,
            &metrics,
            CompPath::root("net")
        )
        .is_none());
        // ...but FailNet + chaos does (to inject), and it re-raises.
        let chaos = ChaosConfig::new(1, 0.0);
        let mut g = FaultGuard::for_stage(
            FaultPolicy::FailNet,
            Some(&chaos),
            &hub,
            &metrics,
            CompPath::root("net").child("box:b"),
        )
        .unwrap();
        let rec = Record::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            g.run(&rec, &mut |_r| {}, &mut |_r, _s| panic!("boom"))
        }));
        assert!(r.is_err());
        // Component-level accounting owns this incident (the tracker
        // raises when the unwind reaches the task boundary).
        assert_eq!(metrics.get(keys::COMPONENT_PANICS), 0);
    }

    #[test]
    fn subscribers_see_raised_faults() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let metrics = Metrics::new();
        let hub = FaultHub::new(Arc::clone(&metrics));
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        hub.subscribe(Arc::new(move |f: &Fault| {
            assert_eq!(f.component, "net/box:x");
            seen2.fetch_add(1, Ordering::Relaxed);
        }));
        hub.raise(Fault {
            component: "net/box:x".into(),
            msg: "m".into(),
            dropped: None,
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }
}
