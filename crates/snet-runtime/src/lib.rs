//! # snet-runtime — executing S-Net streaming networks
//!
//! The execution engine of the reproduction of Grelck, Scholz &
//! Shafarenko, *Coordinating Data Parallel SAC Programs with S-Net*
//! (IPPS 2007). Networks compiled from `snet-lang` ASTs run as graphs
//! of asynchronous components connected by channels — one OS thread
//! per component under the default [`sched::ThreadPerComponent`]
//! executor (the paper's model), or cooperatively scheduled tasks
//! over a bounded worker set under [`sched::WorkStealingPool`]:
//!
//! * every **box** is "an asynchronously executed, stateless
//!   stream-processing component" — one thread applying the bound
//!   computational function to each record, with subtype acceptance
//!   and flow inheritance handled by the wrapper ([`boxfn`]);
//! * **filters** run the pure semantics of `snet-lang` ([`filter_exec`]);
//! * the four combinators each have a component: pipelines
//!   ([`instantiate`]), best-match dispatch + merge ([`parallel`]),
//!   demand-driven serial replication with exit taps ([`star`]) and
//!   tag-indexed parallel replication ([`split`]);
//! * the deterministic variants (`|`, `*`, `!`) are implemented with
//!   **sort records**, the technique of the original S-Net runtime
//!   ([`merge`]);
//! * structural claims ("at most 729 boxes") are measurable through
//!   [`metrics`], and every stream can be observed individually
//!   ([`stream::Observer`]);
//! * the component-to-thread mapping is pluggable ([`sched`]): the
//!   deterministic combinators produce identical output under either
//!   executor because ordering lives in sort records, not scheduling;
//! * box/filter panics are contained at the execution-core boundary
//!   per a configurable [`FaultPolicy`], observable as typed
//!   [`Fault`]s, with deterministic chaos injection ([`ChaosConfig`])
//!   to exercise the failure paths ([`fault`]).
//!
//! Entry point: [`NetBuilder`].

pub mod boxfn;
pub mod ctx;
pub mod fault;
pub mod filter_exec;
pub mod fused;
pub mod instantiate;
pub mod memo;
pub mod merge;
pub mod metrics;
pub mod net;
pub mod parallel;
pub mod path;
pub mod plan;
pub mod sched;
pub mod serve;
pub mod split;
pub mod star;
pub mod stream;
pub mod trace;

pub use boxfn::{BoxImpl, Emitter};
pub use ctx::{Ctx, RunCfg};
pub use fault::{ChaosConfig, Fault, FaultObserver, FaultPolicy};
pub use memo::TypeMemo;
pub use metrics::{Counter, Metrics};
pub use net::{collect_records, BuildError, Net, NetBuilder, OverloadPolicy, SendRejected};
pub use parallel::{RouteCache, RouteClass};
pub use path::CompPath;
pub use plan::{compile, compile_cfg, fuse, fuse_default, Bindings, CompileError, Plan};
pub use sched::{Executor, ThreadPerComponent, WorkStealingPool};
pub use serve::{
    run_open_loop, CallError, CallHandle, CallOpts, DrainReport, LoadReport, OpenLoopCfg, Response,
    Service,
};
pub use stream::{Dir, Msg, Observer};
pub use trace::{FaultEntry, TraceEntry, TraceLog};
