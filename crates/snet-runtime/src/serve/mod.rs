//! `serve` — the request/response ingress–egress layer.
//!
//! An S-Net network is a stream transformer: records in, records out,
//! no notion of *whose* records. This module adds the front door the
//! coordination paper assumes an environment provides — many
//! concurrent callers issue requests against one running net and each
//! gets exactly its own responses back:
//!
//! ```text
//!  callers ── call(rec) ──┐                       ┌── CallHandle ✓
//!                         ▼                       │
//!              [+#rid tag]─► ingress ─► net ─► egress ─► demux ──┘
//! ```
//!
//! [`Service::call`] stamps the record with a fresh request id, the
//! net transforms it, and a demux thread routes each output record
//! back to the issuing caller's completion slot. [`CallHandle`] is
//! both a [`std::future::Future`] resolving to the [`Response`] and a
//! blocking handle ([`CallHandle::wait`] /
//! [`CallHandle::wait_deadline`]) for thread-based callers. Ingress
//! overload (PR 6's bounded edges) surfaces per call through
//! [`crate::OverloadPolicy`] — park, shed, or give up after a
//! deadline.
//!
//! # The reserved-tag invariant
//!
//! Request correlation rides on the runtime's own flow-inheritance
//! machinery — the S-Net subtyping rule that labels a component does
//! not mention are split off before its code runs and re-attached to
//! everything it emits. The request id is a tag named
//! [`RESERVED_RID`] (`"#rid"`), and the invariant is:
//!
//! > **User programs can neither forge nor observe the request-id
//! > tag.**
//!
//! It holds by construction at every surface:
//!
//! - **`.snet` source cannot name it.** The lexer's identifier
//!   alphabet is `[A-Za-z0-9_]+`; `#` is not in it, so no box
//!   signature, filter expression, type annotation or sync pattern can
//!   ever mention `#rid`. Flow inheritance therefore treats it as
//!   excess on *every* component — box functions never see it, filters
//!   pass it through, and it re-attaches to every emitted record.
//! - **Routing cannot see it.** Best-match routing scores a record by
//!   which *input-type* labels it covers (`match_score`), so an extra
//!   tag no declaration mentions never changes where a record goes —
//!   det/nondet merge order and byte-identity of outputs are
//!   unaffected.
//! - **The Rust surface rejects it.** [`Service::call`] refuses
//!   records that already carry a `#rid` label
//!   ([`CallError::ReservedTag`]), and the demux strips the tag before
//!   a [`Response`] reaches the caller. Records that arrive at the
//!   egress without a rid (or with an unknown one) are counted under
//!   `serve/stray` and dropped, never delivered to the wrong caller.
//!
//! Synchrocells merge two records into one; both carry a rid and the
//! merge keeps one record's labels, so a net whose synchrocells join
//! records from *different requests* would correlate the result to
//! whichever request's record survives. That is inherent to
//! cross-request joins (the net is declaring that two requests make
//! one response); per-request pipelines — both PR 7 service workloads,
//! and anything built from boxes, filters, splits and stars — are
//! unaffected.
//!
//! # Measurement
//!
//! [`run_open_loop`] drives a `Service` at a fixed arrival rate (open
//! loop, so queueing delay is observable) and reports
//! p50/p99/p999/max latency from an HDR-style [`hist::Histogram`]
//! plus sustained steady-state RPS — the numbers behind
//! `BENCH_PR7.json` and the default stream bound
//! ([`crate::ctx::DEFAULT_STREAM_BOUND`]).
//!
//! # Failure model
//!
//! What a component failure does to callers, by failure site and the
//! net's [`crate::FaultPolicy`] (see [`crate::fault`] and the
//! failure-model notes in [`crate::sched`]):
//!
//! - **Box/filter panic, policy `SkipRecord`/`Restart`.** The fault
//!   is contained at the execution core; if the retry budget (if any)
//!   is exhausted, the poison record is dropped. The service
//!   subscribes to the net's fault channel: a dropped record carrying
//!   a request id **fails exactly that request** as
//!   [`CallError::Faulted`]`{component, msg}` — promptly, not at the
//!   caller's deadline. Other requests are untouched: the component
//!   stays alive and keeps serving them. Responses that would need
//!   the dropped record can never arrive, so nothing leaks; any
//!   sibling records of a faulted multi-record request that do reach
//!   the egress count as stray (their slot is gone).
//! - **Box/filter panic, policy `FailNet` (default).** Today's
//!   semantics: the panic unwinds the component, end-of-stream
//!   cascades to the egress, the demux exits, and *every* open
//!   request fails with [`CallError::ServiceStopped`];
//!   [`Service::shutdown`] re-raises the panic from `join_all`.
//! - **Demux death.** The demux thread is itself guarded: if it
//!   panics (`serve/demux_panics`), every open slot is failed with
//!   [`CallError::ServiceStopped`] on the way out — callers are never
//!   stranded on a slot nobody will complete.
//! - **Stray records.** Rid-less, late, or post-fault records are
//!   dropped and counted (`serve/stray`) *and* reported to stream
//!   observers at the `serve/stray` path, so drops are attributable.
//!
//! Containment does not disturb deterministic merging (sort records
//! never enter the guarded cores — see [`crate::sched`]), so a
//! served det net under `SkipRecord` still answers every non-faulted
//! request byte-identically to a fault-free run.
//!
//! [`Service::drain`] is the graceful exit: stop intake immediately,
//! let in-flight requests flush within a grace window, then tear
//! down — the [`DrainReport`] tallies completed / faulted / stranded.

pub mod hist;
mod loadgen;
mod service;

pub use loadgen::{run_open_loop, LoadReport, OpenLoopCfg};
pub use service::{CallError, CallHandle, CallOpts, DrainReport, Response, Service, RESERVED_RID};
