//! The request/response front door: [`Service`], [`CallHandle`] and
//! the demultiplexer that routes net output back to callers.

use crate::metrics::{keys, Metrics};
use crate::net::{send_policy, Boundary, Net, OverloadPolicy, SendRejected, ServeParts};
use crate::stream::{Msg, Receiver, Sender};
use snet_types::{Label, Record};
use std::collections::HashMap;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// The reserved request-id tag. The leading `#` puts it outside the
/// identifier alphabet of the `.snet` language (`[A-Za-z0-9_]+`), so
/// no user program can name it: it cannot appear in a box signature
/// (so flow inheritance always splits it off before the box function
/// runs and re-attaches it on every emit), in a filter expression, or
/// in a type annotation. At the Rust surface, [`Service::call`]
/// rejects records that already carry any `#rid` label, and the demux
/// strips the tag before a response reaches the caller — user code can
/// neither forge nor observe it.
pub const RESERVED_RID: &str = "#rid";

/// Why a call failed — at the ingress edge (returned synchronously by
/// [`Service::call`]) or on the completion side (resolved through the
/// [`CallHandle`]).
#[derive(Debug)]
pub enum CallError {
    /// The ingress edge rejected the record: type mismatch, shed under
    /// [`OverloadPolicy::Shed`], deadline under
    /// [`OverloadPolicy::Timeout`], or closed input.
    Rejected(SendRejected),
    /// The record already carries a [`RESERVED_RID`] label; accepting
    /// it would let a caller forge (or collide with) another request's
    /// correlation id.
    ReservedTag,
    /// The service shut down (net output reached end-of-stream) before
    /// this request completed.
    ServiceStopped,
    /// [`CallHandle::wait_deadline`] gave up before the response
    /// arrived; the request was abandoned (late records count as
    /// stray).
    Deadline,
    /// A component fault consumed one of this request's records: the
    /// stage at `component` panicked and the net's
    /// [`crate::FaultPolicy`] dropped the record (terminal skip after
    /// any restart budget). The request can never complete, so it
    /// resolves promptly instead of hanging to its deadline.
    Faulted { component: String, msg: String },
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Rejected(e) => write!(f, "ingress rejected request: {e}"),
            CallError::ReservedTag => {
                write!(f, "record carries the reserved {RESERVED_RID} label")
            }
            CallError::ServiceStopped => write!(f, "service stopped before the request completed"),
            CallError::Deadline => write!(f, "deadline elapsed before the request completed"),
            CallError::Faulted { component, msg } => {
                write!(f, "request faulted at {component}: {msg}")
            }
        }
    }
}

impl std::error::Error for CallError {}

/// A completed request: the response records (reserved tag already
/// stripped, net emission order) plus the demux-side completion
/// timestamp — latency measured against it excludes the caller's own
/// wakeup delay, which matters when handles are harvested lazily.
#[derive(Debug)]
pub struct Response {
    pub records: Vec<Record>,
    pub completed_at: Instant,
}

/// Outcome tally of a graceful [`Service::drain`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests completed over the service's lifetime (including the
    /// drain window).
    pub completed: u64,
    /// Requests resolved as [`CallError::Faulted`] over the
    /// service's lifetime.
    pub faulted: u64,
    /// Requests still open when the grace window closed; each fails
    /// with [`CallError::ServiceStopped`] as the net winds down.
    pub stranded: u64,
}

/// Per-request completion state, owned jointly by the caller's
/// [`CallHandle`] and the demux thread. Lock order: the pending map's
/// lock is never taken while a slot lock is held.
struct SlotState {
    /// Records collected so far (response order = net emission order).
    got: Vec<Record>,
    /// How many records complete the request.
    expect: usize,
    /// Set exactly once: the terminal outcome.
    done: Option<Result<(), CallError>>,
    /// When the final record arrived (for latency measurement that
    /// excludes the caller's own wakeup delay).
    completed_at: Option<Instant>,
    /// Caller parked via the `Future` impl, if any.
    waker: Option<Waker>,
}

struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new(expect: usize) -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState {
                got: Vec::new(),
                expect,
                done: None,
                completed_at: None,
                waker: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// The slot state, recovering from poison: if the demux died while
    /// touching a slot, the caller must still observe its terminal
    /// outcome (set by `fail_pending`) rather than panic in `wait`.
    fn state(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Marks the slot finished and wakes both kinds of waiters. Must
    /// be called with no other slot/pending lock held.
    fn finish(&self, outcome: Result<(), CallError>) {
        let mut st = self.state();
        if st.done.is_none() {
            st.done = Some(outcome);
            st.completed_at = Some(Instant::now());
            if let Some(w) = st.waker.take() {
                drop(st);
                self.cv.notify_all();
                w.wake();
                return;
            }
        }
        drop(st);
        self.cv.notify_all();
    }
}

/// Completion slots kept for reuse once their request has fully
/// resolved — enough for a deep pipeline of sequential callers
/// without letting an idle service pin memory.
const FREE_LIST_CAP: usize = 64;

/// Everything the demux thread and the call handles share.
struct Inner {
    /// Ingress sender; `None` after [`Service::shutdown`] began. Calls
    /// clone the sender out under this lock (an `Arc` bump) so the
    /// potentially-blocking send itself happens lockless.
    input: Mutex<Option<Sender>>,
    /// In-flight requests by rid. A request leaves the map when it
    /// completes, is abandoned at a deadline, or fails at shutdown.
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Completed slots parked for reuse. The demux parks a slot when
    /// it finishes a request; `call_with` pops one and recycles it
    /// only if the caller's handle is gone too (`Arc::get_mut`
    /// proves unique ownership), so a slot is never reset while
    /// anything can still read it.
    free: Mutex<Vec<Arc<Slot>>>,
    boundary: Boundary,
    overload: OverloadPolicy,
    metrics: Arc<Metrics>,
    next_rid: AtomicU64,
    inflight: AtomicU64,
}

impl Inner {
    /// The pending map, recovering from poison: a panic on the demux
    /// thread (e.g. a faulty observer) must not cascade into every
    /// caller's `wait`/`abandon` path — the map's state is a plain
    /// rid→slot registry, valid regardless of where the writer died.
    fn pending(&self) -> MutexGuard<'_, HashMap<u64, Arc<Slot>>> {
        self.pending.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Removes a request from the pending map (deadline abandonment);
    /// returns whether it was still there.
    fn abandon(&self, rid: u64) -> bool {
        let removed = self.pending().remove(&rid).is_some();
        if removed {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    fn free(&self) -> MutexGuard<'_, Vec<Arc<Slot>>> {
        self.free.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parks a completed slot for reuse (bounded; excess slots just
    /// drop). Only called for slots whose terminal outcome is set —
    /// a parked slot can still be *read* by its caller, never
    /// written; the uniqueness check in [`Inner::take_free`] defers
    /// the actual reset until the caller is gone.
    fn park_slot(&self, slot: Arc<Slot>) {
        let mut free = self.free();
        if free.len() < FREE_LIST_CAP {
            free.push(slot);
        }
    }

    /// Pops a parked slot and resets it for `expect` records, if its
    /// previous caller has dropped every reference. A slot that is
    /// still shared (its caller has not harvested the handle yet) is
    /// discarded rather than re-queued — the demux will park fresh
    /// ones as requests complete.
    fn take_free(&self, expect: usize) -> Option<Arc<Slot>> {
        let mut slot = self.free().pop()?;
        let unique = Arc::get_mut(&mut slot).is_some();
        if !unique {
            return None;
        }
        // Re-borrow: the borrow above must end before we move `slot`.
        let st = Arc::get_mut(&mut slot)
            .expect("uniqueness just verified")
            .state
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        st.got.clear();
        st.expect = expect;
        st.done = None;
        st.completed_at = None;
        st.waker = None;
        Some(slot)
    }
}

/// Per-call options for [`Service::call_with`].
#[derive(Clone, Copy, Debug)]
pub struct CallOpts {
    /// How many output records complete the request (most nets answer
    /// a request with exactly one record; a splitter workload may emit
    /// several).
    pub expect: usize,
    /// Ingress overload policy for this call; `None` inherits the
    /// net's policy (`Net::spawn_full`, default `Block`).
    pub policy: Option<OverloadPolicy>,
}

impl Default for CallOpts {
    fn default() -> CallOpts {
        CallOpts {
            expect: 1,
            policy: None,
        }
    }
}

/// A request/response session over one running network.
///
/// `Service` turns the SISO stream pair of a [`Net`] into a
/// many-caller front door: each [`Service::call`] stamps the record
/// with a fresh [`RESERVED_RID`] tag, flow inheritance carries the tag
/// through every box and filter untouched, and a demux thread strips
/// it off the output edge to complete the caller's [`CallHandle`].
/// Ingress backpressure (PR 6's bounded edges) surfaces per call via
/// [`OverloadPolicy`].
pub struct Service {
    inner: Arc<Inner>,
    /// Demux thread handle; taken by [`Service::shutdown`].
    demux: Option<std::thread::JoinHandle<()>>,
    ctx: Arc<crate::ctx::Ctx>,
}

impl Service {
    /// Starts serving requests over `net`. The net's output edge is
    /// consumed by the service's demux thread from now on.
    ///
    /// The service subscribes to the net's fault channel: when a
    /// contained fault drops a record carrying a request id, the
    /// owning request resolves promptly as [`CallError::Faulted`]
    /// instead of hanging to its deadline (see *Failure model* in
    /// [`crate::serve`]).
    pub fn start(net: Net) -> Service {
        let ServeParts {
            input,
            output,
            ctx,
            boundary,
            overload,
        } = net.into_serve_parts();
        let inner = Arc::new(Inner {
            input: Mutex::new(Some(input)),
            pending: Mutex::new(HashMap::new()),
            free: Mutex::new(Vec::new()),
            boundary,
            overload,
            metrics: Arc::clone(&ctx.metrics),
            next_rid: AtomicU64::new(1),
            inflight: AtomicU64::new(0),
        });
        {
            // `Inner` holds no Ctx, so this subscription creates no
            // reference cycle. Called from the faulting component's
            // thread: pending-map lock then slot lock, the demux's own
            // lock order.
            let inner = Arc::clone(&inner);
            let faulted = ctx.metrics.handle(keys::SERVE_FAULTED);
            ctx.on_fault(Arc::new(move |fault: &crate::fault::Fault| {
                let Some(rec) = &fault.dropped else { return };
                let Some(rid) = rec.tag(RESERVED_RID) else {
                    return;
                };
                let slot = inner.pending().remove(&(rid as u64));
                if let Some(slot) = slot {
                    inner.inflight.fetch_sub(1, Ordering::Relaxed);
                    faulted.inc(1);
                    slot.finish(Err(CallError::Faulted {
                        component: fault.component.clone(),
                        msg: fault.msg.clone(),
                    }));
                }
            }));
        }
        let demux = {
            let inner = Arc::clone(&inner);
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("snet-serve-demux".into())
                .spawn(move || {
                    // The demux is the only thing standing between the
                    // net's output and every open slot: if it dies,
                    // callers must not be stranded. Catch its panic,
                    // count it, and fail whatever is still pending.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        demux_loop(&inner, &ctx, &output)
                    }));
                    if r.is_err() {
                        inner.metrics.handle(keys::SERVE_DEMUX_PANICS).inc(1);
                    }
                    fail_pending(&inner);
                })
                .expect("spawn demux thread")
        };
        Service {
            inner,
            demux: Some(demux),
            ctx,
        }
    }

    /// Issues a request expecting a single response record, under the
    /// net's ingress policy. See [`Service::call_with`].
    pub fn call(&self, rec: Record) -> Result<CallHandle, CallError> {
        self.call_with(rec, CallOpts::default())
    }

    /// Issues a request: boundary-checks the record, stamps it with a
    /// fresh request id and publishes it to the ingress edge under the
    /// overload policy. Ingress rejections (mismatch, shed, ingress
    /// deadline, closed) surface synchronously; the returned handle
    /// resolves when `opts.expect` response records have arrived.
    pub fn call_with(&self, mut rec: Record, opts: CallOpts) -> Result<CallHandle, CallError> {
        if rec.has(Label::tag(RESERVED_RID)) || rec.has(Label::field(RESERVED_RID)) {
            return Err(CallError::ReservedTag);
        }
        if !self.inner.boundary.accepts(&rec) {
            return Err(CallError::Rejected(self.inner.boundary.mismatch(&rec)));
        }
        let tx = match &*self.inner.input.lock().unwrap() {
            Some(tx) => tx.clone(),
            None => return Err(CallError::Rejected(SendRejected::Closed)),
        };
        let rid = self.inner.next_rid.fetch_add(1, Ordering::Relaxed);
        rec.set_tag(RESERVED_RID, rid as i64);
        let expect = opts.expect.max(1);
        let slot = match self.inner.take_free(expect) {
            Some(slot) => {
                self.inner.metrics.handle(keys::SERVE_SLOT_REUSE).inc(1);
                slot
            }
            None => Slot::new(expect),
        };
        // Register before sending: on a fast net the response can
        // reach the demux before `call_with` returns.
        self.inner.pending().insert(rid, Arc::clone(&slot));
        let inflight = self.inner.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner
            .metrics
            .handle(keys::SERVE_INFLIGHT)
            .max(inflight);
        let policy = opts.policy.unwrap_or(self.inner.overload);
        if let Err(e) = send_policy(&tx, rec, policy) {
            self.inner.abandon(rid);
            return Err(CallError::Rejected(e));
        }
        self.inner.metrics.handle(keys::SERVE_REQUESTS).inc(1);
        Ok(CallHandle {
            rid,
            issued_at: Instant::now(),
            slot,
            inner: Arc::clone(&self.inner),
        })
    }

    /// The service's metrics registry (shared with the underlying
    /// net's components).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Requests currently in flight (issued, not yet completed or
    /// abandoned).
    pub fn inflight(&self) -> u64 {
        self.inner.inflight.load(Ordering::Relaxed)
    }

    /// The executor the underlying network runs on.
    pub fn executor(&self) -> &Arc<dyn crate::sched::Executor> {
        self.ctx.executor()
    }

    /// Stops accepting requests, drains the network and joins every
    /// component (propagating component panics). Requests still in
    /// flight complete normally if the net answers them during the
    /// drain; any left unanswered fail with
    /// [`CallError::ServiceStopped`].
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
        self.ctx.join_all();
    }

    /// Graceful drain: stop intake immediately, give in-flight
    /// requests up to `grace` to flush through the net, then shut
    /// down. New calls are rejected (`Closed`) from the moment drain
    /// begins; requests the net answers within the grace window
    /// complete normally; whatever is still open afterwards fails
    /// with [`CallError::ServiceStopped`] when the demux sees
    /// end-of-stream. Returns the outcome tally.
    pub fn drain(mut self, grace: std::time::Duration) -> DrainReport {
        self.begin_shutdown();
        let deadline = Instant::now() + grace;
        while self.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stranded = self.inflight();
        if let Some(h) = self.demux.take() {
            let _ = h.join();
        }
        self.ctx.join_all();
        DrainReport {
            completed: self.inner.metrics.get(keys::SERVE_COMPLETED),
            faulted: self.inner.metrics.get(keys::SERVE_FAULTED),
            stranded,
        }
    }

    /// Drops the ingress sender so the net sees end-of-stream once
    /// in-flight `call_with` clones finish.
    fn begin_shutdown(&self) {
        self.inner.input.lock().unwrap().take();
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Best effort: close ingress so the net and demux wind down on
        // their own. Explicit `shutdown()` joins and propagates panics;
        // a plain drop must not block the caller.
        self.begin_shutdown();
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Service {{ sig: {} -> {}, inflight: {} }}",
            self.inner.boundary.sig().input_type(),
            self.inner.boundary.sig().output_type(),
            self.inflight()
        )
    }
}

/// The demux loop: pops the net's output edge, strips the reserved
/// tag and completes the owning request's slot. Records with no (or an
/// unknown) request id — possible only if a user program sent records
/// into the service's net by other means, or if a record arrived
/// after its caller gave up — are dropped, counted under
/// `serve/stray`, and reported to stream observers at the
/// `serve/stray` path so the drop is attributable, not silent.
fn demux_loop(inner: &Inner, ctx: &crate::ctx::Ctx, output: &Receiver) {
    let completed = inner.metrics.handle(keys::SERVE_COMPLETED);
    let stray = inner.metrics.handle(keys::SERVE_STRAY);
    let observing = ctx.has_observers();
    let stray_path = crate::path::CompPath::root("serve").child("stray");
    let drop_stray = |rec: &Record| {
        stray.inc(1);
        if observing {
            ctx.observe(stray_path, crate::stream::Dir::In, rec);
        }
    };
    loop {
        match output.recv() {
            Ok(Msg::Rec(mut rec)) => {
                let rid = match rec.tag(RESERVED_RID) {
                    Some(v) => v as u64,
                    None => {
                        drop_stray(&rec);
                        continue;
                    }
                };
                rec.remove(Label::tag(RESERVED_RID));
                // Bind the lookup to a variable so the map guard drops
                // here — observers (via `drop_stray`) and slot locks
                // must never run under the pending lock.
                let slot = inner.pending().get(&rid).map(Arc::clone);
                let Some(slot) = slot else {
                    // Completed, abandoned at a deadline, faulted,
                    // or forged upstream: nobody is waiting.
                    drop_stray(&rec);
                    continue;
                };
                let finished = {
                    let mut st = slot.state();
                    st.got.push(rec);
                    st.got.len() >= st.expect
                };
                if finished {
                    // Remove-then-finish, honouring the pending→slot
                    // lock order.
                    if inner.pending().remove(&rid).is_some() {
                        inner.inflight.fetch_sub(1, Ordering::Relaxed);
                        completed.inc(1);
                        slot.finish(Ok(()));
                        inner.park_slot(slot);
                    }
                }
            }
            // Sort records are net-internal; a well-formed net never
            // leaks them, skip defensively (same as `Net::recv`).
            Ok(Msg::Sort { .. }) => continue,
            Err(_) => break,
        }
    }
}

/// Fails every request still pending with
/// [`CallError::ServiceStopped`]. Runs when the demux exits — on
/// end-of-stream *or* after a demux panic — so no caller is ever
/// stranded on an open slot.
fn fail_pending(inner: &Inner) {
    let stranded: Vec<Arc<Slot>> = {
        let mut pending = inner.pending();
        let slots = pending.values().map(Arc::clone).collect();
        pending.clear();
        slots
    };
    for slot in &stranded {
        inner.inflight.fetch_sub(1, Ordering::Relaxed);
        slot.finish(Err(CallError::ServiceStopped));
    }
}

/// A pending request: a [`Future`] resolving to the response records,
/// with blocking companions ([`CallHandle::wait`],
/// [`CallHandle::wait_deadline`]) for thread-based callers.
pub struct CallHandle {
    rid: u64,
    issued_at: Instant,
    slot: Arc<Slot>,
    inner: Arc<Inner>,
}

impl CallHandle {
    /// The request id assigned to this call (diagnostic only — the tag
    /// itself never appears in responses).
    pub fn rid(&self) -> u64 {
        self.rid
    }

    /// When the request entered the ingress edge.
    pub fn issued_at(&self) -> Instant {
        self.issued_at
    }

    /// Blocks until the response is complete.
    pub fn wait(self) -> Result<Response, CallError> {
        let mut st = self.slot.state();
        while st.done.is_none() {
            st = self
                .slot
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Self::take(&mut st)
    }

    /// Like [`CallHandle::wait`] with a deadline: past it the request
    /// is abandoned ([`CallError::Deadline`]) and any late response
    /// records count as stray.
    pub fn wait_deadline(self, deadline: Instant) -> Result<Response, CallError> {
        {
            let mut st = self.slot.state();
            while st.done.is_none() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timeout) = self
                    .slot
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
            if st.done.is_some() {
                return Self::take(&mut st);
            }
        }
        // Timed out: withdraw from the pending map, then re-check —
        // the demux may have completed the request in the window
        // between the wait and the removal.
        self.inner.abandon(self.rid);
        let mut st = self.slot.state();
        match st.done {
            Some(_) => Self::take(&mut st),
            None => Err(CallError::Deadline),
        }
    }

    /// Completion timestamp (demux-side, excludes caller wakeup
    /// latency); `None` until the request completes.
    pub fn completed_at(&self) -> Option<Instant> {
        self.slot.state().completed_at
    }

    fn take(st: &mut SlotState) -> Result<Response, CallError> {
        match st.done.as_ref().expect("call outcome set") {
            Ok(()) => Ok(Response {
                records: std::mem::take(&mut st.got),
                completed_at: st.completed_at.unwrap_or_else(Instant::now),
            }),
            Err(CallError::ServiceStopped) => Err(CallError::ServiceStopped),
            Err(CallError::Deadline) => Err(CallError::Deadline),
            Err(CallError::ReservedTag) => Err(CallError::ReservedTag),
            Err(CallError::Faulted { component, msg }) => Err(CallError::Faulted {
                component: component.clone(),
                msg: msg.clone(),
            }),
            // `Rejected` never reaches a slot (it surfaces from
            // `call_with` synchronously).
            Err(CallError::Rejected(_)) => Err(CallError::ServiceStopped),
        }
    }
}

impl Future for CallHandle {
    type Output = Result<Response, CallError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.slot.state();
        if st.done.is_some() {
            return Poll::Ready(Self::take(&mut st));
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl fmt::Debug for CallHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CallHandle {{ rid: {} }}", self.rid)
    }
}
