//! Log-linear latency histogram (the HDR-histogram technique).
//!
//! The open-loop harness records one latency sample per request at
//! rates where storing raw samples would dominate the measurement.
//! The classic fix is a **log-linear** bucket layout: exact buckets up
//! to [`SUB_BUCKETS`], then per power of two a linear run of
//! `SUB_BUCKETS / 2` buckets, so every recorded value lands in a
//! bucket whose width is at most `value / (SUB_BUCKETS / 2)` — a fixed
//! relative error (< 1 % here) across the full `u64` range, with O(1)
//! record and a few KB of memory regardless of sample count.
//!
//! Values are unitless; the serve harness records **nanoseconds**.

/// Exact buckets below this value; also fixes the relative precision
/// of the logarithmic half (width ≤ value / (SUB_BUCKETS/2), i.e.
/// < 1 % at 256).
const SUB_BUCKETS: u64 = 256;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 8
/// Buckets per power-of-two group past the linear region.
const GROUP: u64 = SUB_BUCKETS / 2;
/// Highest shift [`index`] can produce for a `u64` value.
const MAX_SHIFT: u64 = 64 - SUB_BITS as u64; // 56
const BUCKETS: usize = (SUB_BUCKETS + MAX_SHIFT * GROUP) as usize;

/// Bucket index of a value (see module docs for the layout).
fn index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    // Scale v down so it falls in [GROUP, SUB_BUCKETS): the shift
    // identifies the power-of-two group, the scaled value the linear
    // sub-bucket within it.
    let shift = msb - (SUB_BITS - 1);
    let sub = v >> shift;
    (SUB_BUCKETS + (u64::from(shift) - 1) * GROUP + (sub - GROUP)) as usize
}

/// Representative value of a bucket (midpoint of its range).
fn value_of(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let shift = (idx - SUB_BUCKETS) / GROUP + 1;
    let sub = (idx - SUB_BUCKETS) % GROUP + GROUP;
    let lo = sub << shift;
    let width = 1u64 << shift;
    lo + width / 2
}

/// A fixed-memory latency recorder with bounded relative error.
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded sample (not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact minimum recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. `0.999`), quantized to
    /// the bucket's representative value; 0 when empty. The answer is
    /// within < 1 % of the true sample quantile (see module docs).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested quantile, 1-based; ceil so q = 1.0
        // lands on the last sample.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report beyond the observed extremes.
                return value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.count(), SUB_BUCKETS);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
        // Every small value maps to its own bucket.
        for v in 0..SUB_BUCKETS {
            assert_eq!(index(v), v as usize);
            assert_eq!(value_of(v as usize), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // A bucket's representative differs from any value mapped into
        // it by less than value / GROUP.
        for &v in &[
            300u64,
            1_000,
            65_536,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let rep = value_of(index(v));
            let err = rep.abs_diff(v) as f64;
            assert!(
                err <= v as f64 / GROUP as f64,
                "value {v}: representative {rep}, err {err}"
            );
        }
    }

    #[test]
    fn index_is_monotone_across_group_boundaries() {
        let mut values: Vec<u64> = Vec::new();
        for msb in 0..63 {
            values.extend([
                (1u64 << msb).saturating_sub(1),
                1u64 << msb,
                (1u64 << msb) + 1,
            ]);
        }
        values.sort_unstable();
        let mut last = 0;
        for v in values {
            let i = index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < BUCKETS);
            last = i;
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1_000); // 1ms..10s in µs-ish units
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(
            (p50 as f64 - 5_000_000.0).abs() / 5_000_000.0 < 0.02,
            "{p50}"
        );
        assert!(
            (p99 as f64 - 9_900_000.0).abs() / 9_900_000.0 < 0.02,
            "{p99}"
        );
        assert!(
            (p999 as f64 - 9_990_000.0).abs() / 9_990_000.0 < 0.02,
            "{p999}"
        );
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
        assert!(a.mean() > 0.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
