//! Open-loop load generator for [`Service`] workloads.
//!
//! **Open loop** means requests are issued on a fixed arrival
//! schedule (request *i* is due at `start + i / rate`), not at a fixed
//! concurrency: a closed loop of N callers self-throttles the moment
//! the system slows down, hiding exactly the queueing delay a service
//! benchmark exists to measure. Two details make the numbers honest:
//!
//! - **Latency is measured from the *intended* send time**, not the
//!   actual one. When the generator falls behind schedule (an ingress
//!   `Block` stall, a scheduler hiccup) the time a real client would
//!   have spent waiting is charged to the request instead of silently
//!   dropped — the standard fix for coordinated omission.
//! - **Completion is timestamped by the demux thread**
//!   ([`Response::completed_at`]), so callers can harvest handles
//!   lazily after the send phase without inflating the tail.
//!
//! The schedule is interleaved across caller threads (caller *k* owns
//! requests `k, k+callers, …`), so many concurrent sessions drive one
//! net while the aggregate arrival process stays a fixed-rate stream.

use super::hist::Histogram;
use super::service::{CallError, CallOpts, Service};
use crate::metrics::keys;
use crate::net::OverloadPolicy;
use snet_types::Record;
use std::time::{Duration, Instant};

/// Configuration for one open-loop run.
#[derive(Clone, Debug)]
pub struct OpenLoopCfg {
    /// Aggregate arrival rate, requests per second.
    pub rate_hz: f64,
    /// Total requests to issue.
    pub total: usize,
    /// Requests (by schedule index) excluded from latency/RPS stats
    /// while the net warms up; they still count for loss accounting.
    pub warmup: usize,
    /// Concurrent caller threads the schedule is interleaved across.
    pub callers: usize,
    /// Per-call overload policy (`None` inherits the net's).
    pub policy: Option<OverloadPolicy>,
    /// Output records per request (see [`CallOpts::expect`]).
    pub expect: usize,
    /// Per-request harvest deadline, measured from the request's
    /// intended send time. Generous by design: it bounds the harness,
    /// it is not a latency target.
    pub deadline: Duration,
}

impl Default for OpenLoopCfg {
    fn default() -> OpenLoopCfg {
        OpenLoopCfg {
            rate_hz: 500.0,
            total: 2_000,
            warmup: 200,
            callers: 4,
            policy: None,
            expect: 1,
            deadline: Duration::from_secs(30),
        }
    }
}

/// What one open-loop run measured. Latencies are nanoseconds over the
/// steady-state window (warmup excluded).
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests that entered the ingress edge.
    pub sent: u64,
    /// Requests whose full response arrived (including warmup).
    pub completed: u64,
    /// Synchronous ingress rejections (shed / ingress timeout).
    pub rejected: u64,
    /// Requests sent but never completed (harvest deadline or service
    /// stop). Zero is the correctness criterion.
    pub lost: u64,
    /// Requests resolved as [`CallError::Faulted`]: a component fault
    /// consumed one of their records and the service failed them
    /// promptly. Under chaos injection these are *expected* — the
    /// correctness criterion is `lost == 0`, not `faulted == 0`.
    pub faulted: u64,
    /// Responses whose record payload failed the caller's check.
    pub misrouted: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub p999_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
    /// Completions per second over the steady-state window.
    pub sustained_rps: f64,
    /// Steady-state window length, seconds.
    pub window_secs: f64,
    /// Samples in the steady-state window.
    pub measured: u64,
    /// High-water mark of any single bounded edge's depth
    /// (`runtime/stream_depth`) — the observation the default stream
    /// bound is derived from.
    pub depth_high_water: u64,
    /// Total producer stalls on bounded edges (`runtime/credit_stalls`).
    pub credit_stalls: u64,
}

/// Sleeps (then briefly spins) until `t` for sub-millisecond schedule
/// fidelity without burning a core far ahead of the deadline.
fn sleep_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let left = t - now;
        if left > Duration::from_micros(300) {
            std::thread::sleep(left - Duration::from_micros(200));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Drives `service` with an open-loop schedule. `make_req` produces
/// the request record for schedule index `i`; `check` validates a
/// response's records against the index that produced them (request/
/// response correlation at the payload level, on top of the rid
/// plumbing) and returns `false` for a misroute.
pub fn run_open_loop(
    service: &Service,
    cfg: &OpenLoopCfg,
    make_req: impl Fn(usize) -> Record + Sync,
    check: impl Fn(usize, &[Record]) -> bool + Sync,
) -> LoadReport {
    assert!(cfg.rate_hz > 0.0 && cfg.callers > 0 && cfg.total > 0);
    let interval_ns = 1e9 / cfg.rate_hz;
    // A short runway so caller 0's first request is not already late.
    let start = Instant::now() + Duration::from_millis(20);

    struct CallerStats {
        hist: Histogram,
        sent: u64,
        completed: u64,
        rejected: u64,
        lost: u64,
        faulted: u64,
        misrouted: u64,
        /// Steady-state window edges this caller observed.
        first_intended: Option<Instant>,
        last_completed: Option<Instant>,
    }

    let per_caller: Vec<CallerStats> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..cfg.callers)
            .map(|k| {
                let make_req = &make_req;
                let check = &check;
                s.spawn(move || {
                    let mut stats = CallerStats {
                        hist: Histogram::new(),
                        sent: 0,
                        completed: 0,
                        rejected: 0,
                        lost: 0,
                        faulted: 0,
                        misrouted: 0,
                        first_intended: None,
                        last_completed: None,
                    };
                    // Send phase: stay on schedule; when behind, catch
                    // up without skipping (lateness is charged to the
                    // affected requests via their intended times).
                    let mut sent = Vec::new();
                    let mut i = k;
                    while i < cfg.total {
                        let intended =
                            start + Duration::from_nanos((i as f64 * interval_ns) as u64);
                        sleep_until(intended);
                        match service.call_with(
                            make_req(i),
                            CallOpts {
                                expect: cfg.expect,
                                policy: cfg.policy,
                            },
                        ) {
                            Ok(h) => {
                                stats.sent += 1;
                                sent.push((i, intended, h));
                            }
                            Err(CallError::Rejected(_)) => stats.rejected += 1,
                            Err(_) => stats.lost += 1,
                        }
                        i += cfg.callers;
                    }
                    // Harvest phase: waits are lazy, latency is not —
                    // completion times come from the demux stamp.
                    for (i, intended, h) in sent {
                        match h.wait_deadline(intended + cfg.deadline) {
                            Ok(resp) => {
                                stats.completed += 1;
                                if !check(i, &resp.records) {
                                    stats.misrouted += 1;
                                }
                                if i >= cfg.warmup {
                                    let lat = resp
                                        .completed_at
                                        .saturating_duration_since(intended)
                                        .as_nanos()
                                        .min(u128::from(u64::MAX))
                                        as u64;
                                    stats.hist.record(lat);
                                    if stats.first_intended.is_none() {
                                        stats.first_intended = Some(intended);
                                    }
                                    let c = resp.completed_at;
                                    if stats.last_completed.is_none_or(|l| c > l) {
                                        stats.last_completed = Some(c);
                                    }
                                }
                            }
                            // A faulted request resolved promptly with
                            // a typed error — contained, not lost.
                            Err(CallError::Faulted { .. }) => stats.faulted += 1,
                            Err(_) => stats.lost += 1,
                        }
                    }
                    stats
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let mut hist = Histogram::new();
    let mut report = LoadReport::default();
    let mut first_intended: Option<Instant> = None;
    let mut last_completed: Option<Instant> = None;
    for st in &per_caller {
        hist.merge(&st.hist);
        report.sent += st.sent;
        report.completed += st.completed;
        report.rejected += st.rejected;
        report.lost += st.lost;
        report.faulted += st.faulted;
        report.misrouted += st.misrouted;
        if let Some(fi) = st.first_intended {
            if first_intended.is_none_or(|f| fi < f) {
                first_intended = Some(fi);
            }
        }
        if let Some(lc) = st.last_completed {
            if last_completed.is_none_or(|l| lc > l) {
                last_completed = Some(lc);
            }
        }
    }
    report.measured = hist.count();
    report.p50_ns = hist.quantile(0.50);
    report.p99_ns = hist.quantile(0.99);
    report.p999_ns = hist.quantile(0.999);
    report.max_ns = hist.max();
    report.mean_ns = hist.mean();
    if let (Some(fi), Some(lc)) = (first_intended, last_completed) {
        let window = lc.saturating_duration_since(fi).as_secs_f64();
        report.window_secs = window;
        if window > 0.0 {
            report.sustained_rps = report.measured as f64 / window;
        }
    }
    let m = service.metrics();
    report.depth_high_water = m.get(keys::STREAM_DEPTH_GLOBAL);
    report.credit_stalls = m.get(keys::CREDIT_STALLS_GLOBAL);
    report
}
