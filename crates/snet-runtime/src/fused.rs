//! The fused pipeline driver: one component running a whole chain of
//! SISO stages.
//!
//! A [`crate::plan::PNode::Fused`] node is a maximal `Serial` run of
//! boxes and filters collapsed by the fusion pass (see
//! [`crate::plan`] for the legality rules). Instantiating it spawns
//! **one** component whose loop does one `recv_each` at the head and
//! one send at the tail; between them every record is handed
//! stage-to-stage **on the component's own stack** — no intermediate
//! [`Msg`]s, channels or wakeups, which is the whole point: the
//! per-stage tax of an unfused chain is a channel send, a consumer
//! wakeup and a scheduler round-trip per record per stage
//! (`RT_record_hop` is context-switch-bound on small machines), and
//! fusion pays it once per chain instead of once per stage.
//!
//! **Execution order.** Batches run **stage-major**: the stages are
//! connected by in-component FIFO queues, and each scheduling step
//! drains a *run* of messages through one stage — so each stage's
//! code, plan cache and counters stay hot across the whole run
//! instead of being re-touched per record, which measures decisively
//! faster than a per-record depth-first walk once chains get deep
//! (the 16-stage chain walks 16 scattered stage cores per record
//! depth-first, but 1 core per run stage-major). This is exactly the
//! execution shape of the unfused chain, minus the channels. The
//! observable order is identical either way: every queue is FIFO, a
//! multi-output stage's emissions are appended in emission order
//! behind the outputs of every earlier record (precisely the
//! in-order input queue the unfused downstream component processes),
//! and **sort records flow through the queues as ordinary tokens**,
//! each stage forwarding them in turn — so fused output is
//! byte-identical, sort records included.
//!
//! **Fairness.** On a shared-worker executor the unfused chain's
//! components each process at most a poll budget of messages per
//! scheduling step; the fused component keeps that invariant rather
//! than running an entire (possibly multi-emission-amplified)
//! cascade in one poll. When the executor bounds its OS threads
//! (`os_thread_bound()` is `Some`), each [`Pipeline::step`] spends
//! at most [`RECV_BATCH`] stage-message units — deepest non-empty
//! stage first, so finished work drains to the output with minimal
//! latency — and the driver cooperatively yields between steps: a
//! chain of k-emission stages costs many steps, not one unbounded
//! poll, and pool workers round-robin it against their other
//! components exactly as they would the unfused topology. Under
//! thread-per-component the OS preempts the dedicated thread, so the
//! step runs unbudgeted (a cooperative yield there would be a pure
//! park/unpark round-trip tax), matching the unfused components'
//! blocking loops.
//!
//! **Observability.** Each stage registers its own
//! [`crate::path::CompPath`] sub-path (the `s0`/`s1` suffixes the
//! unfused `Serial` instantiation would have derived) with `spawned`,
//! `records_in` and `records_out` counters at spawn, and observers
//! see per-stage In/Out events — the string metrics query API cannot
//! tell a fused chain from an unfused one. Only
//! [`crate::Net::threads_spawned`] (components, not stage paths)
//! reveals the difference: an n-stage fused chain is one component.
//!
//! The per-stage execution cores live with their standalone
//! components ([`crate::boxfn::BoxCore`],
//! [`crate::filter_exec::FilterCore`]); per-stage split plans resolve
//! through each core's spawn-local `PlanCache` keyed by record shape,
//! exactly as standalone.
//!
//! **Faults.** The fault boundary lives *inside* the cores
//! (`process_uncounted`; see [`crate::fault`]), so a fused stage and
//! its unfused twin contain panics — and receive chaos injections —
//! identically: a skipped record at stage *k* simply contributes
//! nothing to stage *k+1*'s queue, and the decision stream is keyed
//! by the stage's own path, which fusion preserves.

use crate::boxfn::BoxCore;
use crate::ctx::Ctx;
use crate::filter_exec::FilterCore;
use crate::path::CompPath;
use crate::plan::{FusedKind, FusedStage};
use crate::stream::{feed_batch, yield_now, Msg, Receiver, RECV_BATCH};
use snet_types::Record;
use std::collections::VecDeque;
use std::sync::Arc;

/// One stage's execution core inside a fused component.
enum StageCore {
    Box(BoxCore),
    Filter(FilterCore),
}

impl StageCore {
    /// One record through the stage, counter-free; returns the
    /// emission count (counters are settled per run via
    /// [`StageCore::add_counts`]).
    fn process_uncounted(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) -> u64 {
        match self {
            StageCore::Box(core) => core.process_uncounted(ctx, rec, sink),
            StageCore::Filter(core) => core.process_uncounted(ctx, rec, sink),
        }
    }

    fn add_counts(&self, records_in: u64, records_out: u64) {
        match self {
            StageCore::Box(core) => core.add_counts(records_in, records_out),
            StageCore::Filter(core) => core.add_counts(records_in, records_out),
        }
    }

    fn path(&self) -> CompPath {
        match self {
            StageCore::Box(core) => core.path(),
            StageCore::Filter(core) => core.path(),
        }
    }
}

/// The fused pipeline's working state: one FIFO message queue in
/// front of each stage (sort records travel through them as ordinary
/// tokens).
struct Pipeline {
    cores: Vec<StageCore>,
    /// `queues[i]` feeds `cores[i]`; the tail's output lands in the
    /// driver's out-buffer.
    queues: Vec<VecDeque<Msg>>,
}

impl Pipeline {
    fn new(cores: Vec<StageCore>) -> Pipeline {
        let queues = cores.iter().map(|_| VecDeque::new()).collect();
        Pipeline { cores, queues }
    }

    /// One bounded scheduling step (see module docs): spends at most
    /// `budget` stage-message units, draining the deepest non-empty
    /// stage first so completed work reaches the output with minimal
    /// latency. The tail's output is appended to `out` — the driver
    /// publishes it after the step, batched (and, on a bounded edge,
    /// credit-gated, which is why publication is not inlined here).
    /// Returns `true` while messages remain queued.
    fn step(&mut self, ctx: &Ctx, out: &mut Vec<Msg>, mut budget: usize) -> bool {
        let n_stages = self.cores.len();
        while budget > 0 {
            let Some(i) = (0..n_stages).rev().find(|&i| !self.queues[i].is_empty()) else {
                return false;
            };
            let take = budget.min(self.queues[i].len());
            budget -= take;
            let core = &mut self.cores[i];
            let (mut n_in, mut n_out) = (0u64, 0u64);
            if i + 1 == n_stages {
                // Tail stage: the run's output collects in `out` for
                // one batched publish by the driver.
                for msg in self.queues[i].drain(..take) {
                    match msg {
                        Msg::Rec(rec) => {
                            n_in += 1;
                            n_out +=
                                core.process_uncounted(ctx, &rec, &mut |r| out.push(Msg::Rec(r)));
                        }
                        sort @ Msg::Sort { .. } => out.push(sort),
                    }
                }
            } else {
                let (head, rest) = self.queues.split_at_mut(i + 1);
                let (q, next) = (&mut head[i], &mut rest[0]);
                for msg in q.drain(..take) {
                    match msg {
                        Msg::Rec(rec) => {
                            n_in += 1;
                            n_out += core
                                .process_uncounted(ctx, &rec, &mut |r| next.push_back(Msg::Rec(r)));
                        }
                        sort @ Msg::Sort { .. } => next.push_back(sort),
                    }
                }
            }
            core.add_counts(n_in, n_out);
        }
        self.queues.iter().any(|q| !q.is_empty())
    }
}

/// The dedicated-thread fast path's stage-major pass: runs a
/// contiguous record batch through every stage in order, leaving the
/// tail's output in `batch`. No budget, no inter-stage queues — the
/// OS preempts the component's own thread, so there is nothing to
/// timeslice against (see module docs: fairness). Sort records never
/// enter `batch`; the caller flushes at each one.
fn run_stages(
    cores: &mut [StageCore],
    ctx: &Ctx,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
) {
    for core in cores.iter_mut() {
        scratch.clear();
        let (mut n_in, mut n_out) = (0u64, 0u64);
        for rec in batch.drain(..) {
            n_in += 1;
            n_out += core.process_uncounted(ctx, &rec, &mut |r| scratch.push(r));
        }
        core.add_counts(n_in, n_out);
        std::mem::swap(batch, scratch);
    }
}

/// [`run_stages`] + one batched publish straight off `batch` — the
/// unbounded dedicated-thread path, where nothing gates the send and
/// the extra hop through an out-buffer would be pure per-record tax.
fn flush_send(
    cores: &mut [StageCore],
    ctx: &Ctx,
    tx: &crate::stream::Sender,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
) {
    if batch.is_empty() {
        return;
    }
    run_stages(cores, ctx, batch, scratch);
    let _ = tx.send_each(batch.drain(..).map(Msg::Rec));
}

/// [`run_stages`] collecting into `out` for the caller to publish —
/// the bounded path, where publication must go through the credit
/// gate (an async wait the stage pass cannot inline).
fn flush(
    cores: &mut [StageCore],
    ctx: &Ctx,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
    out: &mut Vec<Msg>,
) {
    if batch.is_empty() {
        return;
    }
    run_stages(cores, ctx, batch, scratch);
    out.extend(batch.drain(..).map(Msg::Rec));
}

/// Spawns a fused pipeline as a single component. Each stage's
/// sub-path is registered here, at spawn, so metrics and observers
/// match the unfused topology exactly.
pub fn spawn_fused(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    stages: &[FusedStage],
    input: Receiver,
) -> Receiver {
    let path = path.into();
    let (tx, rx) = ctx.data_stream(path, "out");
    let cores: Vec<StageCore> = stages
        .iter()
        .map(|stage| {
            let p = path.descend(&stage.suffix);
            match &stage.kind {
                FusedKind::Box { name, sig, imp } => {
                    StageCore::Box(BoxCore::new(ctx, p, name, sig.clone(), Arc::clone(imp)))
                }
                FusedKind::Filter { def } => {
                    StageCore::Filter(FilterCore::new(ctx, p, def.clone()))
                }
            }
        })
        .collect();
    // The component is named after its head stage — unique even when
    // several fused runs of one Chain share the chain-root path.
    let task_name = cores
        .first()
        .map(|c| c.path().as_str())
        .unwrap_or_else(|| path.as_str());
    // Cooperative budgeting only matters on shared workers: a pool
    // (bounded OS threads) must timeslice this component against its
    // siblings — budgeted steps with a yield between them. Under
    // thread-per-component the OS preempts the dedicated thread (a
    // cooperative yield there is a pure park/unpark round-trip tax),
    // so the contiguous unbudgeted flush runs instead, exactly like
    // the unfused components' blocking loops.
    let fair = ctx.executor().os_thread_bound().is_some();
    let ctx2 = Arc::clone(ctx);
    if fair {
        ctx.spawn(task_name, async move {
            let mut pipe = Pipeline::new(cores);
            let mut out: Vec<Msg> = Vec::new();
            let bounded = tx.is_bounded();
            // One recv_each drain per wake (the fair timeslice, as in
            // for_each_msg); messages land in the head stage's queue
            // and budgeted steps push them through the stages,
            // yielding the worker between steps (see module docs:
            // fairness). Each step's tail output publishes as one
            // batch — through the credit gate when the edge is
            // bounded, so a full edge parks this component between
            // steps instead of growing the queue. The final drain
            // after disconnection reuses the same loop; dropping `tx`
            // propagates end-of-stream.
            loop {
                let n = input
                    .recv_each(RECV_BATCH, &mut |msg| pipe.queues[0].push_back(msg))
                    .await;
                loop {
                    let more = pipe.step(&ctx2, &mut out, RECV_BATCH);
                    if bounded {
                        if feed_batch(&tx, &mut out).await.is_err() {
                            return; // downstream gone: teardown
                        }
                    } else {
                        // A send failure means downstream is gone
                        // (teardown); records are dropped, as in
                        // every component.
                        let _ = tx.send_each(out.drain(..));
                    }
                    if !more {
                        break;
                    }
                    yield_now().await;
                }
                if n == 0 {
                    break;
                }
            }
        });
    } else if tx.is_bounded() {
        ctx.spawn(task_name, async move {
            let mut cores = cores;
            let mut batch = Vec::new();
            let mut scratch = Vec::new();
            let mut out: Vec<Msg> = Vec::new();
            // Bounded output on a dedicated thread: one input record
            // flushes through the whole chain and publishes through
            // the credit gate before the next is consumed, so
            // transient memory is one record's cascade, not a
            // batch's. Sorts take the ungated send path behind the
            // data already published.
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    Msg::Rec(rec) => {
                        batch.push(rec);
                        flush(&mut cores, &ctx2, &mut batch, &mut scratch, &mut out);
                        if feed_batch(&tx, &mut out).await.is_err() {
                            return;
                        }
                    }
                    sort @ Msg::Sort { .. } => {
                        if tx.send(sort).is_err() {
                            return;
                        }
                    }
                }
            }
        });
    } else {
        ctx.spawn(task_name, async move {
            let mut cores = cores;
            let mut batch = Vec::new();
            let mut scratch = Vec::new();
            // Records buffer up and flush stage-major at the end of
            // each drain — and at every sort record, which must stay
            // behind all data ahead of it (one tail forward is then
            // equivalent to each stage forwarding in turn).
            loop {
                let n = input
                    .recv_each(RECV_BATCH, &mut |msg| match msg {
                        Msg::Rec(rec) => batch.push(rec),
                        sort @ Msg::Sort { .. } => {
                            flush_send(&mut cores, &ctx2, &tx, &mut batch, &mut scratch);
                            let _ = tx.send(sort);
                        }
                    })
                    .await;
                flush_send(&mut cores, &ctx2, &tx, &mut batch, &mut scratch);
                if n == 0 {
                    break;
                }
            }
            // Input disconnected: dropping `tx` propagates
            // end-of-stream.
        });
    }
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile_cfg, Bindings, PNode};
    use crate::stream::stream;
    use snet_lang::{parse_net_expr, parse_program};
    use std::sync::Arc;

    fn fused_plan(expr: &str) -> Arc<PNode> {
        let env = parse_program(
            "box inc (x) -> (x);\n\
             box fan (x) -> (x);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("inc", |r, e| {
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x + 1).finish());
            })
            .bind("fan", |r, e| {
                // Two emissions per input: the depth-first cascade case.
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x * 10).finish());
                e.emit(Record::build().field("x", x * 10 + 1).finish());
            });
        let ast = parse_net_expr(expr).unwrap();
        compile_cfg(&ast, &env, &b, true).unwrap().root
    }

    fn drive(root: &Arc<PNode>, n: i64) -> Vec<i64> {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, root, "net", in_rx);
        for x in 0..n {
            tx.send(Msg::Rec(Record::build().field("x", x).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        recs.iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn fused_chain_composes_like_serial() {
        let root = fused_plan("inc .. inc .. inc");
        assert!(matches!(&*root, PNode::Fused { .. }), "{root:?}");
        assert_eq!(drive(&root, 4), vec![3, 4, 5, 6]);
    }

    #[test]
    fn multi_emission_cascades_depth_first() {
        // fan .. fan: 4 outputs per input, in the exact order the
        // unfused chain produces (each emission fully traverses the
        // rest of the chain before the next).
        let root = fused_plan("fan .. fan");
        assert_eq!(drive(&root, 2), vec![0, 1, 10, 11, 100, 101, 110, 111]);
    }

    #[test]
    fn sort_records_stay_behind_cascaded_data() {
        let root = fused_plan("fan .. fan");
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, &root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        tx.send(Msg::Rec(Record::build().field("x", 2i64).finish()))
            .unwrap();
        drop(tx);
        let mut msgs = Vec::new();
        while let Ok(m) = out.recv() {
            msgs.push(m);
        }
        ctx.join_all();
        // All 4 cascaded outputs of record 1, then the sort, then the
        // 4 outputs of record 2.
        assert_eq!(msgs.len(), 9);
        assert!(msgs[..4].iter().all(|m| matches!(m, Msg::Rec(_))));
        assert_eq!(
            msgs[4],
            Msg::Sort {
                level: 0,
                counter: 0
            }
        );
        assert!(msgs[5..].iter().all(|m| matches!(m, Msg::Rec(_))));
    }

    #[test]
    fn amplified_cascade_spans_many_budgeted_steps() {
        // fan^6 = 64 outputs per input; 40 inputs = 2560 outputs plus
        // all the intermediates — far beyond one step's RECV_BATCH
        // budget, so the run crosses many step/yield boundaries (and,
        // under the pool CI legs, many worker polls). Order must be
        // the exact composition order regardless.
        let root = fused_plan("fan .. fan .. fan .. fan .. fan .. fan");
        let got = drive(&root, 40);
        assert_eq!(got.len(), 40 * 64);
        // Oracle: depth-first composition of x -> (10x, 10x+1).
        fn expand(x: i64, depth: u32, out: &mut Vec<i64>) {
            if depth == 0 {
                out.push(x);
            } else {
                expand(x * 10, depth - 1, out);
                expand(x * 10 + 1, depth - 1, out);
            }
        }
        let mut want = Vec::new();
        for x in 0..40 {
            expand(x, 6, &mut want);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn per_stage_metrics_are_registered_and_counted() {
        let root = fused_plan("inc .. fan .. inc");
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, &root, "net", in_rx);
        for x in 0..3i64 {
            tx.send(Msg::Rec(Record::build().field("x", x).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 6);
        // Exactly one component, but per-stage paths count as if
        // unfused (inc at s0/s0, fan at s0/s1, inc at s1 — or the
        // right-assoc mirror; sum_matching is layout-agnostic).
        assert_eq!(ctx.threads_spawned(), 1);
        assert_eq!(ctx.metrics.sum_matching("box:inc/spawned"), 2);
        assert_eq!(ctx.metrics.sum_matching("box:fan/spawned"), 1);
        assert_eq!(ctx.metrics.sum_matching("box:fan/records_in"), 3);
        assert_eq!(ctx.metrics.sum_matching("box:fan/records_out"), 6);
        assert_eq!(ctx.metrics.sum_matching("box:inc/records_in"), 9);
    }
}
