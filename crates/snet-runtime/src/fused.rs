//! The fused pipeline driver: one component running a whole chain of
//! SISO stages.
//!
//! A [`crate::plan::PNode::Fused`] node is a maximal `Serial` run of
//! boxes and filters collapsed by the fusion pass (see
//! [`crate::plan`] for the legality rules). Instantiating it spawns
//! **one** component whose loop does one `recv_each` at the head and
//! one send at the tail; between them every record is handed
//! stage-to-stage **on the component's own stack** — no intermediate
//! [`Msg`]s, channels or wakeups, which is the whole point: the
//! per-stage tax of an unfused chain is a channel send, a consumer
//! wakeup and a scheduler round-trip per record per stage
//! (`RT_record_hop` is context-switch-bound on small machines), and
//! fusion pays it once per chain instead of once per stage.
//!
//! **Execution order.** Batches run **stage-major**: the stages are
//! connected by in-component FIFO queues, and each scheduling step
//! drains a *run* of messages through one stage — so each stage's
//! code, plan cache and counters stay hot across the whole run
//! instead of being re-touched per record, which measures decisively
//! faster than a per-record depth-first walk once chains get deep
//! (the 16-stage chain walks 16 scattered stage cores per record
//! depth-first, but 1 core per run stage-major). This is exactly the
//! execution shape of the unfused chain, minus the channels. The
//! observable order is identical either way: every queue is FIFO, a
//! multi-output stage's emissions are appended in emission order
//! behind the outputs of every earlier record (precisely the
//! in-order input queue the unfused downstream component processes),
//! and **sort records flow through the queues as ordinary tokens**,
//! each stage forwarding them in turn — so fused output is
//! byte-identical, sort records included.
//!
//! **Fairness.** On a shared-worker executor the unfused chain's
//! components each process at most a poll budget of messages per
//! scheduling step; the fused component keeps that invariant rather
//! than running an entire (possibly multi-emission-amplified)
//! cascade in one poll. When the executor bounds its OS threads
//! (`os_thread_bound()` is `Some`), each [`Pipeline::step`] spends
//! at most [`RECV_BATCH`] stage-message units — deepest non-empty
//! stage first, so finished work drains to the output with minimal
//! latency — and the driver cooperatively yields between steps: a
//! chain of k-emission stages costs many steps, not one unbounded
//! poll, and pool workers round-robin it against their other
//! components exactly as they would the unfused topology. Under
//! thread-per-component the OS preempts the dedicated thread, so the
//! step runs unbudgeted (a cooperative yield there would be a pure
//! park/unpark round-trip tax), matching the unfused components'
//! blocking loops.
//!
//! **Observability.** Each stage registers its own
//! [`crate::path::CompPath`] sub-path (the `s0`/`s1` suffixes the
//! unfused `Serial` instantiation would have derived) with `spawned`,
//! `records_in` and `records_out` counters at spawn, and observers
//! see per-stage In/Out events — the string metrics query API cannot
//! tell a fused chain from an unfused one. Only
//! [`crate::Net::threads_spawned`] (components, not stage paths)
//! reveals the difference: an n-stage fused chain is one component.
//!
//! The per-stage execution cores live with their standalone
//! components ([`crate::boxfn::BoxCore`],
//! [`crate::filter_exec::FilterCore`]); per-stage split plans resolve
//! through each core's spawn-local `PlanCache` keyed by record shape,
//! exactly as standalone.
//!
//! **Faults.** The fault boundary lives *inside* the cores
//! (`process_uncounted`; see [`crate::fault`]), so a fused stage and
//! its unfused twin contain panics — and receive chaos injections —
//! identically: a skipped record at stage *k* simply contributes
//! nothing to stage *k+1*'s queue, and the decision stream is keyed
//! by the stage's own path, which fusion preserves.

use crate::boxfn::BoxCore;
use crate::ctx::Ctx;
use crate::filter_exec::FilterCore;
use crate::merge::FusedTail;
use crate::metrics::{keys, Counter};
use crate::parallel::{decide_or_panic, RouteCache};
use crate::path::CompPath;
use crate::plan::{FanKind, FusedKind, FusedStage, PNode};
use crate::split::TagDispatch;
use crate::star::ExitDispatch;
use crate::stream::{feed_batch, yield_now, Dir, Msg, Receiver, RECV_BATCH};
use snet_types::Record;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// One stage's execution core inside a fused component.
enum StageCore {
    Box(BoxCore),
    Filter(FilterCore),
}

/// Builds the execution core for one fused stage at its interned
/// path — the per-stage spawn bookkeeping shared by the chain driver
/// ([`spawn_fused`]) and the fan driver's lanes ([`lane_cores`]).
fn stage_core(ctx: &Ctx, p: CompPath, kind: &FusedKind) -> StageCore {
    match kind {
        FusedKind::Box { name, sig, imp } => {
            StageCore::Box(BoxCore::new(ctx, p, name, sig.clone(), Arc::clone(imp)))
        }
        FusedKind::Filter { def } => StageCore::Filter(FilterCore::new(ctx, p, def.clone())),
    }
}

/// Builds one fan lane's stage cores from its SISO-fusable body plan,
/// registering every per-stage path exactly as the unfused replica
/// instantiation would (`instantiate(body, bpath)`): a `Fused` body's
/// stages descend through their recorded suffixes; a lone box or
/// filter registers directly under the lane path (the `box:{name}` /
/// `filter` child comes from the core constructor, as standalone).
fn lane_cores(ctx: &Ctx, bpath: CompPath, body: &PNode) -> Vec<StageCore> {
    match body {
        PNode::Fused { stages } => stages
            .iter()
            .map(|stage| stage_core(ctx, bpath.descend(&stage.suffix), &stage.kind))
            .collect(),
        PNode::Box { name, sig, imp } => vec![StageCore::Box(BoxCore::new(
            ctx,
            bpath,
            name,
            sig.clone(),
            Arc::clone(imp),
        ))],
        PNode::Filter { def } => vec![StageCore::Filter(FilterCore::new(ctx, bpath, def.clone()))],
        other => unreachable!("fan-fusion body is not SISO-fusable: {other:?}"),
    }
}

impl StageCore {
    /// One record through the stage, counter-free; returns the
    /// emission count (counters are settled per run via
    /// [`StageCore::add_counts`]).
    fn process_uncounted(&mut self, ctx: &Ctx, rec: &Record, sink: &mut dyn FnMut(Record)) -> u64 {
        match self {
            StageCore::Box(core) => core.process_uncounted(ctx, rec, sink),
            StageCore::Filter(core) => core.process_uncounted(ctx, rec, sink),
        }
    }

    fn add_counts(&self, records_in: u64, records_out: u64) {
        match self {
            StageCore::Box(core) => core.add_counts(records_in, records_out),
            StageCore::Filter(core) => core.add_counts(records_in, records_out),
        }
    }

    fn path(&self) -> CompPath {
        match self {
            StageCore::Box(core) => core.path(),
            StageCore::Filter(core) => core.path(),
        }
    }
}

/// The fused pipeline's working state: one FIFO message queue in
/// front of each stage (sort records travel through them as ordinary
/// tokens).
struct Pipeline {
    cores: Vec<StageCore>,
    /// `queues[i]` feeds `cores[i]`; the tail's output lands in the
    /// driver's out-buffer.
    queues: Vec<VecDeque<Msg>>,
}

impl Pipeline {
    fn new(cores: Vec<StageCore>) -> Pipeline {
        let queues = cores.iter().map(|_| VecDeque::new()).collect();
        Pipeline { cores, queues }
    }

    /// One bounded scheduling step (see module docs): spends at most
    /// `budget` stage-message units, draining the deepest non-empty
    /// stage first so completed work reaches the output with minimal
    /// latency. The tail's output is appended to `out` — the driver
    /// publishes it after the step, batched (and, on a bounded edge,
    /// credit-gated, which is why publication is not inlined here).
    /// Returns `true` while messages remain queued.
    fn step(&mut self, ctx: &Ctx, out: &mut Vec<Msg>, mut budget: usize) -> bool {
        let n_stages = self.cores.len();
        while budget > 0 {
            let Some(i) = (0..n_stages).rev().find(|&i| !self.queues[i].is_empty()) else {
                return false;
            };
            let take = budget.min(self.queues[i].len());
            budget -= take;
            let core = &mut self.cores[i];
            let (mut n_in, mut n_out) = (0u64, 0u64);
            if i + 1 == n_stages {
                // Tail stage: the run's output collects in `out` for
                // one batched publish by the driver.
                for msg in self.queues[i].drain(..take) {
                    match msg {
                        Msg::Rec(rec) => {
                            n_in += 1;
                            n_out +=
                                core.process_uncounted(ctx, &rec, &mut |r| out.push(Msg::Rec(r)));
                        }
                        sort @ Msg::Sort { .. } => out.push(sort),
                    }
                }
            } else {
                let (head, rest) = self.queues.split_at_mut(i + 1);
                let (q, next) = (&mut head[i], &mut rest[0]);
                for msg in q.drain(..take) {
                    match msg {
                        Msg::Rec(rec) => {
                            n_in += 1;
                            n_out += core
                                .process_uncounted(ctx, &rec, &mut |r| next.push_back(Msg::Rec(r)));
                        }
                        sort @ Msg::Sort { .. } => next.push_back(sort),
                    }
                }
            }
            core.add_counts(n_in, n_out);
        }
        self.queues.iter().any(|q| !q.is_empty())
    }
}

/// The dedicated-thread fast path's stage-major pass: runs a
/// contiguous record batch through every stage in order, leaving the
/// tail's output in `batch`. No budget, no inter-stage queues — the
/// OS preempts the component's own thread, so there is nothing to
/// timeslice against (see module docs: fairness). Sort records never
/// enter `batch`; the caller flushes at each one.
fn run_stages(
    cores: &mut [StageCore],
    ctx: &Ctx,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
) {
    for core in cores.iter_mut() {
        scratch.clear();
        let (mut n_in, mut n_out) = (0u64, 0u64);
        for rec in batch.drain(..) {
            n_in += 1;
            n_out += core.process_uncounted(ctx, &rec, &mut |r| scratch.push(r));
        }
        core.add_counts(n_in, n_out);
        std::mem::swap(batch, scratch);
    }
}

/// [`run_stages`] + one batched publish straight off `batch` — the
/// unbounded dedicated-thread path, where nothing gates the send and
/// the extra hop through an out-buffer would be pure per-record tax.
fn flush_send(
    cores: &mut [StageCore],
    ctx: &Ctx,
    tx: &crate::stream::Sender,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
) {
    if batch.is_empty() {
        return;
    }
    run_stages(cores, ctx, batch, scratch);
    let _ = tx.send_each(batch.drain(..).map(Msg::Rec));
}

/// [`run_stages`] collecting into `out` for the caller to publish —
/// the bounded path, where publication must go through the credit
/// gate (an async wait the stage pass cannot inline).
fn flush(
    cores: &mut [StageCore],
    ctx: &Ctx,
    batch: &mut Vec<Record>,
    scratch: &mut Vec<Record>,
    out: &mut Vec<Msg>,
) {
    if batch.is_empty() {
        return;
    }
    run_stages(cores, ctx, batch, scratch);
    out.extend(batch.drain(..).map(Msg::Rec));
}

/// Spawns a fused pipeline as a single component. Each stage's
/// sub-path is registered here, at spawn, so metrics and observers
/// match the unfused topology exactly.
pub fn spawn_fused(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    stages: &[FusedStage],
    input: Receiver,
) -> Receiver {
    let path = path.into();
    let (tx, rx) = ctx.data_stream(path, "out");
    let cores: Vec<StageCore> = stages
        .iter()
        .map(|stage| stage_core(ctx, path.descend(&stage.suffix), &stage.kind))
        .collect();
    // The component is named after its head stage — unique even when
    // several fused runs of one Chain share the chain-root path.
    let task_name = cores
        .first()
        .map(|c| c.path().as_str())
        .unwrap_or_else(|| path.as_str());
    // Cooperative budgeting only matters on shared workers: a pool
    // (bounded OS threads) must timeslice this component against its
    // siblings — budgeted steps with a yield between them. Under
    // thread-per-component the OS preempts the dedicated thread (a
    // cooperative yield there is a pure park/unpark round-trip tax),
    // so the contiguous unbudgeted flush runs instead, exactly like
    // the unfused components' blocking loops.
    let fair = ctx.executor().os_thread_bound().is_some();
    let ctx2 = Arc::clone(ctx);
    if fair {
        ctx.spawn(task_name, async move {
            let mut pipe = Pipeline::new(cores);
            let mut out: Vec<Msg> = Vec::new();
            let bounded = tx.is_bounded();
            // One recv_each drain per wake (the fair timeslice, as in
            // for_each_msg); messages land in the head stage's queue
            // and budgeted steps push them through the stages,
            // yielding the worker between steps (see module docs:
            // fairness). Each step's tail output publishes as one
            // batch — through the credit gate when the edge is
            // bounded, so a full edge parks this component between
            // steps instead of growing the queue. The final drain
            // after disconnection reuses the same loop; dropping `tx`
            // propagates end-of-stream.
            loop {
                let n = input
                    .recv_each(RECV_BATCH, &mut |msg| pipe.queues[0].push_back(msg))
                    .await;
                loop {
                    let more = pipe.step(&ctx2, &mut out, RECV_BATCH);
                    if bounded {
                        if feed_batch(&tx, &mut out).await.is_err() {
                            return; // downstream gone: teardown
                        }
                    } else {
                        // A send failure means downstream is gone
                        // (teardown); records are dropped, as in
                        // every component.
                        let _ = tx.send_each(out.drain(..));
                    }
                    if !more {
                        break;
                    }
                    yield_now().await;
                }
                if n == 0 {
                    break;
                }
            }
        });
    } else if tx.is_bounded() {
        ctx.spawn(task_name, async move {
            let mut cores = cores;
            let mut batch = Vec::new();
            let mut scratch = Vec::new();
            let mut out: Vec<Msg> = Vec::new();
            // Bounded output on a dedicated thread: one input record
            // flushes through the whole chain and publishes through
            // the credit gate before the next is consumed, so
            // transient memory is one record's cascade, not a
            // batch's. Sorts take the ungated send path behind the
            // data already published.
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    Msg::Rec(rec) => {
                        batch.push(rec);
                        flush(&mut cores, &ctx2, &mut batch, &mut scratch, &mut out);
                        if feed_batch(&tx, &mut out).await.is_err() {
                            return;
                        }
                    }
                    sort @ Msg::Sort { .. } => {
                        if tx.send(sort).is_err() {
                            return;
                        }
                    }
                }
            }
        });
    } else {
        ctx.spawn(task_name, async move {
            let mut cores = cores;
            let mut batch = Vec::new();
            let mut scratch = Vec::new();
            // Records buffer up and flush stage-major at the end of
            // each drain — and at every sort record, which must stay
            // behind all data ahead of it (one tail forward is then
            // equivalent to each stage forwarding in turn).
            loop {
                let n = input
                    .recv_each(RECV_BATCH, &mut |msg| match msg {
                        Msg::Rec(rec) => batch.push(rec),
                        sort @ Msg::Sort { .. } => {
                            flush_send(&mut cores, &ctx2, &tx, &mut batch, &mut scratch);
                            let _ = tx.send(sort);
                        }
                    })
                    .await;
                flush_send(&mut cores, &ctx2, &tx, &mut batch, &mut scratch);
                if n == 0 {
                    break;
                }
            }
            // Input disconnected: dropping `tx` propagates
            // end-of-stream.
        });
    }
    rx
}

/// Whether a [`FanKind`] may actually run fused under this net's
/// runtime settings; `false` sends instantiation down the ordinary
/// unfused replicator spawn (see [`crate::instantiate`]). Three
/// conditions, all documented in [`crate::plan`] (*fan fusion*):
///
/// * the per-combinator escape hatch
///   ([`crate::ctx::RunCfg::fan_fuse`] / `fan_fuse_by_tag`) is off;
/// * the fault policy is `Restart` — its backoff sleep would park
///   every co-scheduled lane, not just the faulty one;
/// * an **explicit** capacity override names the `"dispatch"` edge:
///   the user asked for credit-gated lane edges, and a fused fan has
///   no lane edges to gate. (The net-global default bound does *not*
///   fall back: fusion replaces the lane edge with a synchronous
///   handoff — stricter than any capacity — and backpressure still
///   propagates through the fan's own input edge.)
pub(crate) fn fan_fusable_here(ctx: &Ctx, kind: &FanKind) -> bool {
    let tag = match kind {
        FanKind::Split { tag, .. } => Some(tag.name()),
        FanKind::Parallel { .. } | FanKind::Star { .. } => None,
    };
    ctx.fan_fuse_for(tag)
        && !ctx.fault_policy().restarts()
        && !matches!(ctx.edge_override("dispatch"), Some(n) if n > 0)
}

/// The fused fan's dispatch-and-lane state: the same classification
/// cores the standalone dispatcher tasks use ([`TagDispatch`],
/// [`RouteCache`], [`ExitDispatch`] — identical routing, panics and
/// memoization), each lane a stage-core vector run stage-major, with
/// emissions landing in the component's [`FusedTail`].
///
/// Processing each record synchronously, in input order, is what
/// makes the merge degenerate: the deterministic variants need **no
/// sort records at all** inside the fan, because concatenating each
/// record's lane output in arrival order *is* the
/// round-by-round-in-join-order drain of the unfused det merger (for
/// a star, depth-`d` exits of one record precede its depth-`d+1`
/// exits — join order — and per-depth arrival order is the lane's
/// emission order). Outer-scope sorts are forwarded at their stream
/// position, exactly once, which is what the unfused merger's
/// barrier/round bookkeeping reduces to when every branch is drained
/// in lockstep.
enum DispatchCore {
    /// `body ! <tag>` / `body !! <tag>`: lanes unfold on demand per
    /// branch key, exactly like the standalone dispatcher's replica
    /// map.
    Split {
        route: TagDispatch,
        body: Arc<PNode>,
        lanes: HashMap<i64, Vec<StageCore>>,
        records_in: Counter,
        branches_created: Counter,
    },
    /// `left | right` / `left || right`: both lanes exist up front,
    /// as standalone (parallel composition instantiates eagerly).
    Par {
        routes: RouteCache,
        left: Vec<StageCore>,
        right: Vec<StageCore>,
        records_in: Counter,
        routed_left: Counter,
        routed_right: Counter,
    },
    /// `body * {exit}` / `body ** {exit}`: replica `d` unfolds when
    /// the first record passes guard `d` without exiting, exactly
    /// like the standalone chain's demand-driven unfolding.
    Star {
        route: ExitDispatch,
        body: Arc<PNode>,
        lanes: Vec<Vec<StageCore>>,
        /// `gpaths[d]` is guard `d`'s observer path
        /// (`{comb}/stage{d}/guard`), interned at the same moment the
        /// unfused chain would intern it.
        gpaths: Vec<CompPath>,
        exits: Counter,
        stages: Counter,
        /// Scratch frontier for the per-record depth walk (reused
        /// across records).
        frontier: Vec<Record>,
    },
}

impl DispatchCore {
    /// Runs one input record through its lane(s); emissions land in
    /// `tail` in output order. Returns the stage-message units spent
    /// (the fair loop's budgeting currency). `batch`/`scratch` are
    /// the driver's reusable stage-major buffers.
    fn process(
        &mut self,
        ctx: &Ctx,
        comb: CompPath,
        rec: Record,
        tail: &mut FusedTail,
        batch: &mut Vec<Record>,
        scratch: &mut Vec<Record>,
    ) -> usize {
        match self {
            DispatchCore::Split {
                route,
                body,
                lanes,
                records_in,
                branches_created,
            } => {
                if ctx.has_observers() {
                    ctx.observe(comb, Dir::In, &rec);
                }
                records_in.inc(1);
                let key = route.key(&rec, comb);
                let cores = lanes.entry(key).or_insert_with(|| {
                    branches_created.inc(1);
                    lane_cores(ctx, comb.child(&route.seg(key)), body)
                });
                batch.clear();
                batch.push(rec);
                run_stages(cores, ctx, batch, scratch);
                let units = cores.len() + batch.len();
                tail.extend(batch.drain(..));
                units
            }
            DispatchCore::Par {
                routes,
                left,
                right,
                records_in,
                routed_left,
                routed_right,
            } => {
                if ctx.has_observers() {
                    ctx.observe(comb, Dir::In, &rec);
                }
                records_in.inc(1);
                let cores = if decide_or_panic(routes, &rec, comb) {
                    routed_left.inc(1);
                    left
                } else {
                    routed_right.inc(1);
                    right
                };
                batch.clear();
                batch.push(rec);
                run_stages(cores, ctx, batch, scratch);
                let units = cores.len() + batch.len();
                tail.extend(batch.drain(..));
                units
            }
            DispatchCore::Star {
                route,
                body,
                lanes,
                gpaths,
                exits,
                stages,
                frontier,
            } => {
                let mut units = 0;
                frontier.clear();
                frontier.push(rec);
                let mut depth = 0;
                while !frontier.is_empty() {
                    // Guard `depth`: exits leave for the tail, the
                    // rest enter replica `depth`.
                    batch.clear();
                    for r in frontier.drain(..) {
                        if ctx.has_observers() {
                            ctx.observe(gpaths[depth], Dir::In, &r);
                        }
                        units += 1;
                        if route.exits(&r) {
                            exits.inc(1);
                            tail.push(r);
                        } else {
                            batch.push(r);
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    if lanes.len() == depth {
                        // Demand-driven unfolding: replica `depth`
                        // plus the next guard's path, registered at
                        // the same moment the standalone chain would
                        // spawn them.
                        lanes.push(lane_cores(ctx, comb.child(&format!("stage{depth}")), body));
                        gpaths.push(comb.child(&format!("stage{}", depth + 1)).child("guard"));
                        stages.max(depth as u64 + 2);
                    }
                    let cores = &mut lanes[depth];
                    run_stages(cores, ctx, batch, scratch);
                    units += cores.len() + batch.len();
                    std::mem::swap(frontier, batch);
                    depth += 1;
                }
                units
            }
        }
    }
}

/// Spawns a fused fan combinator as a single component: dispatch,
/// every lane's stages and the merge handoff run in one record loop
/// (see [`DispatchCore`] for the ordering argument and
/// [`crate::plan`], *fan fusion*, for legality). Per-lane metrics
/// paths, observer events and panics are byte-identical to the
/// unfused replicator; only the component count differs.
pub fn spawn_fused_fan(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    kind: &FanKind,
    det: bool,
    input: Receiver,
) -> Receiver {
    let path = path.into();
    let (comb, mut core) = match kind {
        FanKind::Split { body, tag } => {
            let comb = path.child(if det { "split" } else { "splitnd" });
            (
                comb,
                DispatchCore::Split {
                    route: TagDispatch::new(ctx, *tag),
                    body: Arc::clone(body),
                    lanes: HashMap::new(),
                    records_in: ctx.metrics.handle_at(comb, keys::RECORDS_IN),
                    branches_created: ctx.metrics.handle_at(comb, keys::BRANCHES),
                },
            )
        }
        FanKind::Parallel {
            left,
            right,
            left_sig,
            right_sig,
        } => {
            let comb = path.child(if det { "par" } else { "parnd" });
            (
                comb,
                DispatchCore::Par {
                    routes: RouteCache::new(left_sig.clone(), right_sig.clone()),
                    left: lane_cores(ctx, comb.child("L"), left),
                    right: lane_cores(ctx, comb.child("R"), right),
                    records_in: ctx.metrics.handle_at(comb, keys::RECORDS_IN),
                    routed_left: ctx.metrics.handle_at(comb, "routed_left"),
                    routed_right: ctx.metrics.handle_at(comb, "routed_right"),
                },
            )
        }
        FanKind::Star { body, exit } => {
            let comb = path.child(if det { "star" } else { "starnd" });
            let stages = ctx.metrics.handle_at(comb, keys::STAGES);
            stages.max(1);
            (
                comb,
                DispatchCore::Star {
                    route: ExitDispatch::new(exit.clone()),
                    body: Arc::clone(body),
                    lanes: Vec::new(),
                    gpaths: vec![comb.child("stage0").child("guard")],
                    exits: ctx.metrics.handle_at(comb, keys::EXITS),
                    stages,
                    frontier: Vec::new(),
                },
            )
        }
    };
    let (tx, rx) = ctx.data_stream(comb, "merge");
    // The same fairness split as spawn_fused: budgeted processing
    // with cooperative yields on a shared-worker pool; on a dedicated
    // thread, per-record publication when the output edge is bounded
    // (transient memory is one record's cascade) and batched
    // publication per input drain otherwise.
    let fair = ctx.executor().os_thread_bound().is_some();
    let per_record_flush = !fair && tx.is_bounded();
    let ctx2 = Arc::clone(ctx);
    ctx.spawn(format!("{comb}/dispatch"), async move {
        let mut tail = FusedTail::new(tx);
        let mut batch: Vec<Record> = Vec::new();
        let mut scratch: Vec<Record> = Vec::new();
        let mut pending: VecDeque<Msg> = VecDeque::new();
        let mut units = 0usize;
        loop {
            let n = input
                .recv_each(RECV_BATCH, &mut |msg| pending.push_back(msg))
                .await;
            while let Some(msg) = pending.pop_front() {
                match msg {
                    Msg::Rec(rec) => {
                        units +=
                            core.process(&ctx2, comb, rec, &mut tail, &mut batch, &mut scratch);
                    }
                    // Outer-scope sorts forward at their stream
                    // position — everything caused by earlier input
                    // is already in the tail buffer ahead of them.
                    Msg::Sort { level, counter } => tail.push_sort(level, counter),
                }
                if per_record_flush {
                    if tail.flush().await.is_err() {
                        return; // downstream gone: teardown
                    }
                } else if fair && units >= RECV_BATCH {
                    units = 0;
                    if tail.flush().await.is_err() {
                        return;
                    }
                    yield_now().await;
                }
            }
            if tail.flush().await.is_err() {
                return;
            }
            if n == 0 {
                break;
            }
        }
        // EOS: dropping the tail's sender propagates end-of-stream.
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile_cfg, Bindings, PNode};
    use crate::stream::stream;
    use snet_lang::{parse_net_expr, parse_program};
    use std::sync::Arc;

    fn fused_plan(expr: &str) -> Arc<PNode> {
        let env = parse_program(
            "box inc (x) -> (x);\n\
             box fan (x) -> (x);",
        )
        .unwrap()
        .env()
        .unwrap();
        let b = Bindings::new()
            .bind("inc", |r, e| {
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x + 1).finish());
            })
            .bind("fan", |r, e| {
                // Two emissions per input: the depth-first cascade case.
                let x = r.field("x").unwrap().as_int().unwrap();
                e.emit(Record::build().field("x", x * 10).finish());
                e.emit(Record::build().field("x", x * 10 + 1).finish());
            });
        let ast = parse_net_expr(expr).unwrap();
        compile_cfg(&ast, &env, &b, true).unwrap().root
    }

    fn drive(root: &Arc<PNode>, n: i64) -> Vec<i64> {
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, root, "net", in_rx);
        for x in 0..n {
            tx.send(Msg::Rec(Record::build().field("x", x).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        recs.iter()
            .map(|r| r.field("x").unwrap().as_int().unwrap())
            .collect()
    }

    #[test]
    fn fused_chain_composes_like_serial() {
        let root = fused_plan("inc .. inc .. inc");
        assert!(matches!(&*root, PNode::Fused { .. }), "{root:?}");
        assert_eq!(drive(&root, 4), vec![3, 4, 5, 6]);
    }

    #[test]
    fn multi_emission_cascades_depth_first() {
        // fan .. fan: 4 outputs per input, in the exact order the
        // unfused chain produces (each emission fully traverses the
        // rest of the chain before the next).
        let root = fused_plan("fan .. fan");
        assert_eq!(drive(&root, 2), vec![0, 1, 10, 11, 100, 101, 110, 111]);
    }

    #[test]
    fn sort_records_stay_behind_cascaded_data() {
        let root = fused_plan("fan .. fan");
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, &root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("x", 1i64).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 0,
        })
        .unwrap();
        tx.send(Msg::Rec(Record::build().field("x", 2i64).finish()))
            .unwrap();
        drop(tx);
        let mut msgs = Vec::new();
        while let Ok(m) = out.recv() {
            msgs.push(m);
        }
        ctx.join_all();
        // All 4 cascaded outputs of record 1, then the sort, then the
        // 4 outputs of record 2.
        assert_eq!(msgs.len(), 9);
        assert!(msgs[..4].iter().all(|m| matches!(m, Msg::Rec(_))));
        assert_eq!(
            msgs[4],
            Msg::Sort {
                level: 0,
                counter: 0
            }
        );
        assert!(msgs[5..].iter().all(|m| matches!(m, Msg::Rec(_))));
    }

    #[test]
    fn amplified_cascade_spans_many_budgeted_steps() {
        // fan^6 = 64 outputs per input; 40 inputs = 2560 outputs plus
        // all the intermediates — far beyond one step's RECV_BATCH
        // budget, so the run crosses many step/yield boundaries (and,
        // under the pool CI legs, many worker polls). Order must be
        // the exact composition order regardless.
        let root = fused_plan("fan .. fan .. fan .. fan .. fan .. fan");
        let got = drive(&root, 40);
        assert_eq!(got.len(), 40 * 64);
        // Oracle: depth-first composition of x -> (10x, 10x+1).
        fn expand(x: i64, depth: u32, out: &mut Vec<i64>) {
            if depth == 0 {
                out.push(x);
            } else {
                expand(x * 10, depth - 1, out);
                expand(x * 10 + 1, depth - 1, out);
            }
        }
        let mut want = Vec::new();
        for x in 0..40 {
            expand(x, 6, &mut want);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn per_stage_metrics_are_registered_and_counted() {
        let root = fused_plan("inc .. fan .. inc");
        let ctx = Ctx::new(Metrics::new(), Vec::new());
        let (tx, in_rx) = stream();
        let out = crate::instantiate::instantiate(&ctx, &root, "net", in_rx);
        for x in 0..3i64 {
            tx.send(Msg::Rec(Record::build().field("x", x).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 6);
        // Exactly one component, but per-stage paths count as if
        // unfused (inc at s0/s0, fan at s0/s1, inc at s1 — or the
        // right-assoc mirror; sum_matching is layout-agnostic).
        assert_eq!(ctx.threads_spawned(), 1);
        assert_eq!(ctx.metrics.sum_matching("box:inc/spawned"), 2);
        assert_eq!(ctx.metrics.sum_matching("box:fan/spawned"), 1);
        assert_eq!(ctx.metrics.sum_matching("box:fan/records_in"), 3);
        assert_eq!(ctx.metrics.sum_matching("box:fan/records_out"), 6);
        assert_eq!(ctx.metrics.sum_matching("box:inc/records_in"), 9);
    }
}
