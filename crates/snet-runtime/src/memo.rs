//! Label-sequence memoization over record *types*.
//!
//! Several per-record decisions in the runtime depend only on the
//! record's **type** — the ordered set of labels it carries — while
//! the label universe of a coordination program is fixed. Such
//! decisions are worth memoizing: resolve the (allocating, subset-
//! testing) computation once per distinct record type, and serve every
//! later record of that type from a hash lookup with zero allocation.
//!
//! [`TypeMemo`] is that memo, extracted from the parallel dispatcher's
//! route cache (PR 1) and generalised: the dispatcher memoizes
//! [`crate::parallel::RouteClass`] decisions, and [`crate::net::Net`]
//! memoizes its `send` boundary type check, which previously ran
//! `record_type()` + `match_score` subset tests for every injected
//! record.
//!
//! Keys are order-dependent hashes of the record's label sequence
//! (fields then tags, sorted — the order `Record::labels` guarantees),
//! verified element-wise against the stored [`RecordType`], so a hash
//! collision degrades to a comparison, never a wrong answer.

use snet_types::{Record, RecordType};
use std::collections::HashMap;

/// Order-dependent FNV hash of a record's label sequence. Includes
/// the label kind: a field and a tag of the same name share an
/// interner id but are different labels.
pub fn label_seq_hash(rec: &Record) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for l in rec.labels() {
        let v = (u64::from(l.id()) << 1) | u64::from(l.is_tag());
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A memo from record type to a copyable decision `V`. The first
/// record of each type pays one `record_type()` allocation plus the
/// provided computation; every later record of that type costs one
/// hash and a bucket scan.
pub struct TypeMemo<V> {
    buckets: HashMap<u64, Vec<(RecordType, V)>>,
}

impl<V: Copy> TypeMemo<V> {
    pub fn new() -> TypeMemo<V> {
        TypeMemo {
            buckets: HashMap::new(),
        }
    }

    /// The memoized value for the record's type, if already computed.
    /// Read-only: lets concurrent callers share the memo behind a
    /// read lock once it is warm (see `Net::send`).
    pub fn get(&self, rec: &Record) -> Option<V> {
        let h = label_seq_hash(rec);
        let bucket = self.buckets.get(&h)?;
        for (rt, v) in bucket {
            if rt.len() == rec.len() && rt.labels().iter().copied().eq(rec.labels()) {
                return Some(*v);
            }
        }
        None
    }

    /// The memoized value for the record's type, computing (and
    /// caching) it on first sight of the type.
    pub fn get_or_insert_with(
        &mut self,
        rec: &Record,
        compute: impl FnOnce(&RecordType) -> V,
    ) -> V {
        if let Some(v) = self.get(rec) {
            return v;
        }
        let h = label_seq_hash(rec);
        let rt = rec.record_type();
        let v = compute(&rt);
        self.buckets.entry(h).or_default().push((rt, v));
        v
    }

    /// Number of distinct record types memoized.
    pub fn len(&self) -> usize {
        self.buckets.values().map(|b| b.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

impl<V: Copy> Default for TypeMemo<V> {
    fn default() -> Self {
        TypeMemo::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn computes_once_per_type() {
        let mut memo: TypeMemo<u32> = TypeMemo::new();
        let calls = Cell::new(0u32);
        let a = Record::build().field("a", 1i64).finish();
        let a2 = Record::build().field("a", 99i64).finish(); // same type
        let b = Record::build().field("b", 1i64).finish();
        for rec in [&a, &a2, &a, &b, &b] {
            memo.get_or_insert_with(rec, |_| {
                calls.set(calls.get() + 1);
                calls.get()
            });
        }
        assert_eq!(calls.get(), 2, "one computation per distinct type");
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get_or_insert_with(&a, |_| unreachable!()), 1);
        assert_eq!(memo.get_or_insert_with(&b, |_| unreachable!()), 2);
    }

    #[test]
    fn distinguishes_field_from_tag_of_same_name() {
        let mut memo: TypeMemo<bool> = TypeMemo::new();
        let field_rec = Record::build().field("k", 1i64).finish();
        let tag_rec = Record::build().tag("k", 1).finish();
        assert!(memo.get_or_insert_with(&field_rec, |_| true));
        assert!(!memo.get_or_insert_with(&tag_rec, |_| false));
        assert_eq!(memo.len(), 2);
        assert!(!memo.is_empty());
    }
}
