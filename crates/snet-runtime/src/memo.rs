//! Shape-keyed memoization over record *types*.
//!
//! Several per-record decisions in the runtime depend only on the
//! record's **type** — the set of labels it carries — while the label
//! universe of a coordination program is fixed. Such decisions are
//! worth memoizing: resolve the (allocating, subset-testing)
//! computation once per distinct record type, and serve every later
//! record of that type from a map hit with zero allocation.
//!
//! [`TypeMemo`] is that memo, extracted from the parallel dispatcher's
//! route cache (PR 1), generalised (PR 2/3: `Net::send` boundary
//! checks, filter pattern checks) and now keyed on **interned shape
//! ids** (PR 4, see `snet_types::shape`): a record names its type
//! with `shape().id()`, so the memo key is a single `u32` and one
//! O(1) id comparison replaces the previous scheme's label-sequence
//! hash plus element-wise key verification. Shape interning already
//! guarantees that equal ids mean identical label sets — including
//! the field-vs-tag distinction for same-named labels — so a hash
//! collision cannot produce a wrong answer by construction.

use snet_types::{FxMap, Record, RecordType, Shape, SplitPlan};

/// A memo from record type (interned shape id) to a copyable decision
/// `V`. The first record of each type pays one `record_type()`
/// allocation plus the provided computation; every later record of
/// that type costs one id-keyed map hit.
pub struct TypeMemo<V> {
    map: FxMap<u32, V>,
}

impl<V: Copy> TypeMemo<V> {
    pub fn new() -> TypeMemo<V> {
        TypeMemo {
            map: FxMap::default(),
        }
    }

    /// The memoized value for the record's type, if already computed.
    /// Read-only: lets concurrent callers share the memo behind a
    /// read lock once it is warm (see `Net::send`).
    pub fn get(&self, rec: &Record) -> Option<V> {
        self.map.get(&rec.shape().id()).copied()
    }

    /// The memoized value for the record's type, computing (and
    /// caching) it on first sight of the type.
    pub fn get_or_insert_with(
        &mut self,
        rec: &Record,
        compute: impl FnOnce(&RecordType) -> V,
    ) -> V {
        let id = rec.shape().id();
        if let Some(v) = self.map.get(&id) {
            return *v;
        }
        let v = compute(&rec.record_type());
        self.map.insert(id, v);
        v
    }

    /// Number of distinct record types memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<V: Copy> Default for TypeMemo<V> {
    fn default() -> Self {
        TypeMemo::new()
    }
}

/// A spawn-local cache from record shape to the compiled
/// [`SplitPlan`] against one fixed input type — the front line in
/// front of the process-wide plan table, shared by the box wrapper
/// and the filter component. Streams carry a handful of shapes, so a
/// linear scan over a small vec beats hashing; `None` entries cache
/// the doesn't-match verdict so repeat offenders stay cheap to
/// reject.
pub struct PlanCache {
    ty: Shape,
    plans: Vec<(u32, Option<&'static SplitPlan>)>,
}

impl PlanCache {
    /// A cache resolving plans against the given input-type shape.
    pub fn new(ty: Shape) -> PlanCache {
        PlanCache {
            ty,
            plans: Vec::new(),
        }
    }

    /// The split plan for `rec`'s shape against the cached input
    /// type; `None` when the record does not match it. First sight of
    /// a shape consults the process-wide table; later records of that
    /// shape are a scan over a few entries with no locks.
    pub fn plan_for(&mut self, rec: &Record) -> Option<&'static SplitPlan> {
        let sid = rec.shape().id();
        match self.plans.iter().find(|(id, _)| *id == sid) {
            Some((_, plan)) => *plan,
            None => {
                let plan = rec.shape().split_plan(self.ty);
                self.plans.push((sid, plan));
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn computes_once_per_type() {
        let mut memo: TypeMemo<u32> = TypeMemo::new();
        let calls = Cell::new(0u32);
        let a = Record::build().field("a", 1i64).finish();
        let a2 = Record::build().field("a", 99i64).finish(); // same type
        let b = Record::build().field("b", 1i64).finish();
        for rec in [&a, &a2, &a, &b, &b] {
            memo.get_or_insert_with(rec, |_| {
                calls.set(calls.get() + 1);
                calls.get()
            });
        }
        assert_eq!(calls.get(), 2, "one computation per distinct type");
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.get_or_insert_with(&a, |_| unreachable!()), 1);
        assert_eq!(memo.get_or_insert_with(&b, |_| unreachable!()), 2);
    }

    #[test]
    fn distinguishes_field_from_tag_of_same_name() {
        let mut memo: TypeMemo<bool> = TypeMemo::new();
        let field_rec = Record::build().field("k", 1i64).finish();
        let tag_rec = Record::build().tag("k", 1).finish();
        assert!(memo.get_or_insert_with(&field_rec, |_| true));
        assert!(!memo.get_or_insert_with(&tag_rec, |_| false));
        assert_eq!(memo.len(), 2);
        assert!(!memo.is_empty());
    }
}
