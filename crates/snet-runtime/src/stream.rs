//! Streams and messages.
//!
//! Boxes are "connected to the rest of the network by two typed
//! streams" (paper, Section 4). A stream here is an unbounded crossbeam
//! channel of [`Msg`]s. Unbounded is deliberate: deterministic merging
//! drains branches in a fixed order, and a bounded channel on a branch
//! that is not currently being drained could deadlock the dispatcher —
//! the original S-Net runtime made the same choice.
//!
//! Besides data records the streams carry **sort records** — the
//! classic S-Net implementation device for the deterministic
//! combinator variants (`|`, `*`, `!`). A deterministic dispatcher
//! broadcasts `Sort { level, counter }` to *all* branches after every
//! data record it routes; the matching merger uses them to partition
//! branch streams into rounds and re-establish input order on output.
//! Every component forwards sort records transparently (behind any data
//! they follow), so ordering survives arbitrary nesting of combinators.
//! End-of-stream is represented by channel disconnection.

use snet_types::Record;
use std::sync::Arc;

/// A message travelling on a stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A data record.
    Rec(Record),
    /// A sort record of a deterministic combinator at nesting depth
    /// `level`; `counter` is the input-record index within that scope.
    Sort { level: u32, counter: u64 },
}

/// Stream endpoints (unbounded; see module docs for why).
pub type Sender = crossbeam::channel::Sender<Msg>;
pub type Receiver = crossbeam::channel::Receiver<Msg>;

/// Creates a new stream.
pub fn stream() -> (Sender, Receiver) {
    crossbeam::channel::unbounded()
}

/// Direction of an observed record relative to the observed component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    In,
    Out,
}

/// A stream observer: "debugging the concurrent behaviour becomes
/// rather straightforward as all streams can be observed individually"
/// (paper, Section 1). Observers are called synchronously from the
/// component thread with the component's path, the direction, and the
/// record. The path `&str` borrows the component's interned
/// [`crate::path::CompPath`] rendering — handing it to an observer
/// allocates nothing.
pub type Observer = Arc<dyn Fn(&str, Dir, &Record) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Record;

    #[test]
    fn stream_carries_records_and_sorts() {
        let (tx, rx) = stream();
        tx.send(Msg::Rec(Record::build().tag("k", 1).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 7,
        })
        .unwrap();
        drop(tx);
        assert!(matches!(rx.recv().unwrap(), Msg::Rec(_)));
        assert_eq!(
            rx.recv().unwrap(),
            Msg::Sort {
                level: 0,
                counter: 7
            }
        );
        // Disconnection is end-of-stream.
        assert!(rx.recv().is_err());
    }
}
