//! Streams and messages.
//!
//! Boxes are "connected to the rest of the network by two typed
//! streams" (paper, Section 4). A stream here is an unbounded crossbeam
//! channel of [`Msg`]s. Unbounded is deliberate: deterministic merging
//! drains branches in a fixed order, and a bounded channel on a branch
//! that is not currently being drained could deadlock the dispatcher —
//! the original S-Net runtime made the same choice.
//!
//! Besides data records the streams carry **sort records** — the
//! classic S-Net implementation device for the deterministic
//! combinator variants (`|`, `*`, `!`). A deterministic dispatcher
//! broadcasts `Sort { level, counter }` to *all* branches after every
//! data record it routes; the matching merger uses them to partition
//! branch streams into rounds and re-establish input order on output.
//! Every component forwards sort records transparently (behind any data
//! they follow), so ordering survives arbitrary nesting of combinators.
//! End-of-stream is represented by channel disconnection.
//!
//! # Yield-on-empty-input
//!
//! Component bodies never call the blocking `recv()`; they await
//! `recv_async()` (or, for multi-input components, [`SelectReady`]).
//! Under the default [`crate::sched::ThreadPerComponent`] executor the
//! await parks the component's dedicated OS thread — the seed's
//! behaviour, bit for bit. Under a
//! [`crate::sched::WorkStealingPool`] the await *yields the worker*:
//! the component's state machine suspends, the stream registers the
//! task's waker, and the send path reschedules the component when data
//! (or end-of-stream) arrives. This is what lets thousands of
//! dynamically unfolded components share a handful of OS threads.
//! Combined with unbounded channels — senders never wait — cooperative
//! parking cannot deadlock even the deterministic merger's fixed
//! drain order; the full argument lives in the [`crate::sched`]
//! module docs.

use snet_types::Record;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};

/// A message travelling on a stream.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// A data record.
    Rec(Record),
    /// A sort record of a deterministic combinator at nesting depth
    /// `level`; `counter` is the input-record index within that scope.
    Sort { level: u32, counter: u64 },
}

/// Stream endpoints (unbounded; see module docs for why).
pub type Sender = crossbeam::channel::Sender<Msg>;
pub type Receiver = crossbeam::channel::Receiver<Msg>;

/// Creates a new stream.
pub fn stream() -> (Sender, Receiver) {
    crossbeam::channel::unbounded()
}

/// Direction of an observed record relative to the observed component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    In,
    Out,
}

/// A source a component can await readiness of without consuming it —
/// the readiness-notification hook multi-input components (mergers)
/// build their select loops on. `Ready` means the next `try_recv`
/// returns without blocking: a message is queued or the stream has
/// disconnected.
pub trait ReadySource: Sync {
    fn poll_source(&self, cx: &mut Context<'_>) -> Poll<()>;
}

impl<T: Send> ReadySource for crossbeam::channel::Receiver<T> {
    fn poll_source(&self, cx: &mut Context<'_>) -> Poll<()> {
        self.poll_ready(cx)
    }
}

/// Future resolving to the index of the first ready source, scanning
/// in rotation from `start` (callers advance `start` across awaits so
/// no source starves — the cooperative rendering of a blocking
/// multi-channel select).
///
/// Sources that report `Pending` register the awaiting task's waker;
/// a wake from a source other than the one eventually consumed is
/// spurious and simply causes a re-poll.
pub struct SelectReady<'a> {
    pub sources: Vec<&'a dyn ReadySource>,
    pub start: usize,
}

impl Future for SelectReady<'_> {
    type Output = usize;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
        let n = self.sources.len();
        debug_assert!(n > 0, "SelectReady over zero sources never resolves");
        for off in 0..n {
            let i = (self.start + off) % n;
            if self.sources[i].poll_source(cx).is_ready() {
                return Poll::Ready(i);
            }
        }
        Poll::Pending
    }
}

/// A stream observer: "debugging the concurrent behaviour becomes
/// rather straightforward as all streams can be observed individually"
/// (paper, Section 1). Observers are called synchronously from the
/// component thread with the component's path, the direction, and the
/// record. The path `&str` borrows the component's interned
/// [`crate::path::CompPath`] rendering — handing it to an observer
/// allocates nothing.
pub type Observer = Arc<dyn Fn(&str, Dir, &Record) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Record;

    #[test]
    fn stream_carries_records_and_sorts() {
        let (tx, rx) = stream();
        tx.send(Msg::Rec(Record::build().tag("k", 1).finish()))
            .unwrap();
        tx.send(Msg::Sort {
            level: 0,
            counter: 7,
        })
        .unwrap();
        drop(tx);
        assert!(matches!(rx.recv().unwrap(), Msg::Rec(_)));
        assert_eq!(
            rx.recv().unwrap(),
            Msg::Sort {
                level: 0,
                counter: 7
            }
        );
        // Disconnection is end-of-stream.
        assert!(rx.recv().is_err());
    }
}
