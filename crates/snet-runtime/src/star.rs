//! Serial replication `A ** {exit}` and `A * {exit}`.
//!
//! "The serial replicator A**(type) constructs an infinite chain of
//! replicas of A connected via serial combination. The chain is tapped
//! before every replica to extract records that match the type
//! specified as second operand. These records are merged into the
//! overall output stream. The unfolding of the chain of networks is
//! demand-driven" (paper, Section 4).
//!
//! Implementation: a chain of *guards*. Guard `i` taps the stream in
//! front of replica `i`; records matching the exit pattern (and its
//! optional tag guard — the Figure 3 `{<level>} if <level> > 40`
//! throttle) leave through the guard's tap into the output merger,
//! everything else enters replica `i`, whose output feeds guard `i+1`.
//! Replica `i` and guard `i+1` are only created when the first record
//! actually needs to pass — this is exactly the paper's observation
//! that the sudoku pipeline "cannot lead to pipelines longer than 81
//! replicas": a record is only forwarded when a number was placed.
//!
//! The deterministic variant prefixes the chain with a *stamper* that
//! broadcasts a sort record after every input record; guards duplicate
//! sorts to their tap and down the chain, and the deterministic merger
//! reassembles input order across taps (see [`crate::merge`]).

use crate::ctx::Ctx;
use crate::instantiate::instantiate;
use crate::memo::TypeMemo;
use crate::merge::{spawn_merge, BranchSpec, MergeMode, Watermark};
use crate::metrics::{keys, Counter};
use crate::path::CompPath;
use crate::plan::PNode;
use crate::stream::{chan, for_each_msg, stream, Dir, Msg, Receiver, Sender};
use snet_lang::ExitPattern;
use snet_types::Record;
use std::sync::Arc;

/// The exit decision for a serial replicator, shared between the
/// standalone guard tasks and the fused-fan driver (see
/// [`crate::fused`]): a per-shape memo of the exit-pattern subset test
/// plus the dynamic tag guard. One instance per guard position — the
/// memo is keyed by record shape, and shapes flowing past different
/// chain depths can differ.
pub(crate) struct ExitDispatch {
    exit: ExitPattern,
    memo: TypeMemo<bool>,
}

impl ExitDispatch {
    pub(crate) fn new(exit: ExitPattern) -> ExitDispatch {
        ExitDispatch {
            exit,
            memo: TypeMemo::new(),
        }
    }

    /// Whether this record leaves through the guard's tap. The subset
    /// test depends only on the record's type and is memoized per
    /// shape id; the optional tag guard stays dynamic (it reads
    /// values, not labels). A guard that cannot evaluate (a referenced
    /// tag is absent) does not release the record.
    pub(crate) fn exits(&mut self, rec: &Record) -> bool {
        let ExitDispatch { exit, memo } = self;
        memo.get_or_insert_with(rec, |rt| rt.is_subtype_of(&exit.pattern))
            && exit
                .guard
                .as_ref()
                .map(|g| g.eval(rec).unwrap_or(false))
                .unwrap_or(true)
    }
}

struct StarShared {
    inner: Arc<PNode>,
    exit: ExitPattern,
    comb: CompPath,
    /// Registered once for the whole chain; every guard's exit tap
    /// increments through this handle.
    exits: Counter,
    /// High-water mark of the unfolded chain depth.
    stages: Counter,
}

/// Spawns a serial replicator; returns its output stream.
pub fn spawn_star(
    ctx: &Arc<Ctx>,
    path: impl Into<CompPath>,
    inner: &Arc<PNode>,
    exit: &ExitPattern,
    det: bool,
    level: u32,
    input: Receiver,
) -> Receiver {
    let comb = path.into().child(if det { "star" } else { "starnd" });
    let (ctl_tx, ctl_rx) = chan::channel::<BranchSpec>();
    let (out_tx, out_rx) = ctx.data_stream(comb, "merge");
    let mode = if det {
        MergeMode::Det { level }
    } else {
        MergeMode::NonDet
    };
    spawn_merge(ctx, comb, mode, Vec::new(), ctl_rx, out_tx);

    let shared = Arc::new(StarShared {
        inner: Arc::clone(inner),
        exit: exit.clone(),
        comb,
        exits: ctx.metrics.handle_at(comb, keys::EXITS),
        stages: ctx.metrics.handle_at(comb, keys::STAGES),
    });

    let guard0_input = if det {
        spawn_stamper(ctx, comb, level, input)
    } else {
        input
    };
    spawn_guard(ctx, shared, 0, guard0_input, Watermark::new(), ctl_tx);
    out_rx
}

/// The deterministic entry stamper: broadcasts `Sort{level, n}` after
/// the n-th input record, partitioning the chain into rounds.
fn spawn_stamper(ctx: &Arc<Ctx>, comb: CompPath, level: u32, input: Receiver) -> Receiver {
    let (tx, rx) = ctx.data_stream(comb.child("stamper"), "dispatch");
    if tx.is_bounded() {
        // Credit-gated data, ungated sorts: the sort stamped after a
        // record must follow it even when the edge is full, or the
        // det merger's round bookkeeping would run ahead of the data.
        ctx.spawn(format!("{comb}/stamper"), async move {
            let mut counter: u64 = 0;
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    rec @ Msg::Rec(_) => {
                        let _ = tx.feed(rec).await;
                        let _ = tx.send(Msg::Sort { level, counter });
                        counter += 1;
                    }
                    sort @ Msg::Sort { .. } => {
                        let _ = tx.send(sort);
                    }
                }
            }
        });
        return rx;
    }
    ctx.spawn(format!("{comb}/stamper"), async move {
        let mut counter: u64 = 0;
        for_each_msg(input, |msg| match msg {
            rec @ Msg::Rec(_) => {
                let _ = tx.send(rec);
                let _ = tx.send(Msg::Sort { level, counter });
                counter += 1;
            }
            sort @ Msg::Sort { .. } => {
                let _ = tx.send(sort);
            }
        })
        .await;
    });
    rx
}

/// Spawns guard `stage`, registering its exit tap with the merger
/// before any message can flow (the registration must happen-before
/// subsequent sort broadcasts for the merger's bookkeeping).
///
/// All bookkeeping state — the interned guard path, the shared
/// `exits`/`stages` counters — is resolved here, once per guard; the
/// record loop allocates only when it unfolds the next replica.
fn spawn_guard(
    ctx: &Arc<Ctx>,
    shared: Arc<StarShared>,
    stage: usize,
    input: Receiver,
    watermark: Watermark,
    ctl: chan::Sender<BranchSpec>,
) {
    // The tap is a merger branch: it stays a plain unbounded stream
    // (the merger would exempt any bound at adoption anyway — see
    // crate::merge, *branch inputs are exempt*).
    let (tap_tx, tap_rx) = stream();
    let _ = ctl.send(BranchSpec {
        rx: tap_rx,
        watermark: watermark.clone(),
    });
    shared.stages.max(stage as u64 + 1);
    let ctx2 = Arc::clone(ctx);
    let stage_path = shared.comb.child(&format!("stage{stage}"));
    let gpath = stage_path.child("guard");
    if ctx.edge_bounded("dispatch") {
        // Bounded chain edges: the forward into the next replica goes
        // through the credit gate, so a slow replica parks this guard
        // (and transitively the whole upstream chain) instead of
        // growing its queue. Exits and sorts stay ungated — the tap
        // is exempt, and a det round boundary must propagate down the
        // chain without waiting.
        ctx.spawn(gpath.as_str(), async move {
            let mut wm = watermark;
            let mut next: Option<Sender> = None;
            let mut exit_memo = ExitDispatch::new(shared.exit.clone());
            while let Ok(msg) = input.recv_async().await {
                match msg {
                    Msg::Rec(rec) => {
                        if ctx2.has_observers() {
                            ctx2.observe(gpath, Dir::In, &rec);
                        }
                        if exit_memo.exits(&rec) {
                            shared.exits.inc(1);
                            let _ = tap_tx.send(Msg::Rec(rec));
                        } else {
                            if next.is_none() {
                                let (rtx, rrx) = ctx2.data_stream(stage_path, "dispatch");
                                let replica_out =
                                    instantiate(&ctx2, &shared.inner, stage_path, rrx);
                                spawn_guard(
                                    &ctx2,
                                    Arc::clone(&shared),
                                    stage + 1,
                                    replica_out,
                                    wm.clone(),
                                    ctl.clone(),
                                );
                                next = Some(rtx);
                            }
                            let _ = next.as_ref().unwrap().feed(Msg::Rec(rec)).await;
                        }
                    }
                    Msg::Sort {
                        level: l,
                        counter: c,
                    } => {
                        let _ = tap_tx.send(Msg::Sort {
                            level: l,
                            counter: c,
                        });
                        if let Some(tx) = &next {
                            let _ = tx.send(Msg::Sort {
                                level: l,
                                counter: c,
                            });
                        }
                        wm.insert(l, c + 1);
                    }
                }
            }
        });
        return;
    }
    ctx.spawn(gpath.as_str(), async move {
        let mut wm = watermark;
        let mut next: Option<Sender> = None;
        let mut exit_memo = ExitDispatch::new(shared.exit.clone());
        for_each_msg(input, |msg| match msg {
            Msg::Rec(rec) => {
                if ctx2.has_observers() {
                    ctx2.observe(gpath, Dir::In, &rec);
                }
                if exit_memo.exits(&rec) {
                    shared.exits.inc(1);
                    let _ = tap_tx.send(Msg::Rec(rec));
                } else {
                    if next.is_none() {
                        // Demand-driven unfolding: the replica and the
                        // next guard exist only because this record
                        // needs them.
                        let (rtx, rrx) = stream();
                        let replica_out = instantiate(&ctx2, &shared.inner, stage_path, rrx);
                        spawn_guard(
                            &ctx2,
                            Arc::clone(&shared),
                            stage + 1,
                            replica_out,
                            wm.clone(),
                            ctl.clone(),
                        );
                        next = Some(rtx);
                    }
                    let _ = next.as_ref().unwrap().send(Msg::Rec(rec));
                }
            }
            Msg::Sort {
                level: l,
                counter: c,
            } => {
                // Duplicate every sort to the tap (the merger needs it
                // for round/barrier bookkeeping) and down the chain if
                // it exists.
                let _ = tap_tx.send(Msg::Sort {
                    level: l,
                    counter: c,
                });
                if let Some(tx) = &next {
                    let _ = tx.send(Msg::Sort {
                        level: l,
                        counter: c,
                    });
                }
                wm.insert(l, c + 1);
            }
        })
        .await;
        // EOS: tap, chain sender and control clone all drop here,
        // cascading end-of-stream down the chain and eventually closing
        // the merger's control channel.
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::net::collect_records;
    use crate::plan::{compile, Bindings};
    use snet_lang::{parse_net_expr, parse_program};
    use snet_types::Record;

    fn ctx() -> Arc<Ctx> {
        Ctx::new(Metrics::new(), Vec::new())
    }

    /// `step (n) -> (n) | (n, <done>)`: decrements n; emits `<done>`
    /// when it reaches zero. A record entering with n therefore
    /// traverses exactly n replicas — a miniature of the sudoku
    /// pipeline's "one number per replica" structure.
    fn countdown_plan(det: bool) -> (Arc<Ctx>, crate::plan::Plan) {
        let env = parse_program("box step (n) -> (n) | (n, <done>);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("step", |r, e| {
            let n = r.field("n").unwrap().as_int().unwrap();
            let n = n - 1;
            if n == 0 {
                e.emit(Record::build().field("n", n).tag("done", 1).finish());
            } else {
                e.emit(Record::build().field("n", n).finish());
            }
        });
        let src = if det {
            "step * {<done>}"
        } else {
            "step ** {<done>}"
        };
        let ast = parse_net_expr(src).unwrap();
        (ctx(), compile(&ast, &env, &b).unwrap())
    }

    #[test]
    fn record_traverses_until_exit() {
        let (ctx, plan) = countdown_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("n", 5i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].field("n").unwrap().as_int(), Some(0));
        assert_eq!(recs[0].tag("done"), Some(1));
        // Demand-driven: exactly 5 replicas (stages 0..4 created
        // replicas; guard 5 tapped the exit).
        assert_eq!(ctx.metrics.get("net/starnd/stages"), 6);
    }

    #[test]
    fn immediate_exit_creates_no_replica() {
        // A record already matching the exit pattern leaves through
        // guard 0's tap; the replicated network is never instantiated.
        let (ctx, plan) = countdown_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(
            Record::build().field("n", 9i64).tag("done", 1).finish(),
        ))
        .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 1);
        assert_eq!(ctx.metrics.get("net/starnd/stages"), 1);
        assert_eq!(ctx.metrics.sum_matching("box:step/records_in"), 0);
    }

    #[test]
    fn unfolding_depth_matches_deepest_record() {
        let (ctx, plan) = countdown_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for n in [3i64, 7, 2] {
            tx.send(Msg::Rec(Record::build().field("n", n).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 3);
        assert_eq!(ctx.metrics.get("net/starnd/stages"), 8); // depth 7 + exit guard
        assert_eq!(ctx.metrics.get("net/starnd/exits"), 3);
    }

    #[test]
    fn det_star_preserves_input_order() {
        let (ctx, plan) = countdown_plan(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        // Records with wildly different depths: deep ones exit late in
        // wall-clock terms, but det order must follow input order.
        let depths = [9i64, 1, 6, 2, 8, 3];
        for (i, n) in depths.iter().enumerate() {
            tx.send(Msg::Rec(
                Record::build().field("n", *n).tag("id", i as i64).finish(),
            ))
            .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        let ids: Vec<i64> = recs.iter().map(|r| r.tag("id").unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn nondet_star_emits_fast_records_first() {
        // With non-deterministic merging, a shallow record entered
        // *after* a deep one usually overtakes it. We only assert that
        // all records arrive (overtaking is timing-dependent).
        let (ctx, plan) = countdown_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for n in [40i64, 1] {
            tx.send(Msg::Rec(Record::build().field("n", n).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn guarded_exit_pattern_fig3_shape() {
        // bump: increments <level>; exit when <level> > 3. Uses the
        // paper's guarded exit semantics. Note <level> must be part of
        // the box's *input* signature — a box only sees its declared
        // inputs, so deriving the level from an undeclared tag would
        // read flow-inherited state the box never receives.
        let env = parse_program("box bump (x, <level>) -> (x, <level>);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("bump", |r, e| {
            let x = r.field("x").unwrap().as_int().unwrap();
            let lvl = r.tag("level").unwrap();
            e.emit(Record::build().field("x", x).tag("level", lvl + 1).finish());
        });
        let ast = parse_net_expr("bump ** {<level>} if <level> > 3").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(
            Record::build().field("x", 0i64).tag("level", 0).finish(),
        ))
        .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tag("level"), Some(4)); // first level > 3
    }

    #[test]
    fn det_star_with_zero_records_terminates() {
        let (ctx, plan) = countdown_plan(true);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert!(recs.is_empty());
    }

    #[test]
    fn guard_referencing_missing_tag_never_exits_early() {
        // Exit pattern {} (matches every record) with a guard over a
        // tag that only appears at the end: records without the tag
        // must keep circulating (guard evaluation failure = no exit).
        let env = parse_program("box until5 (n) -> (n) | (n, <lvl>);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("until5", |r, e| {
            let n = r.field("n").unwrap().as_int().unwrap() + 1;
            if n >= 5 {
                e.emit(Record::build().field("n", n).tag("lvl", n).finish());
            } else {
                e.emit(Record::build().field("n", n).finish());
            }
        });
        let ast = parse_net_expr("until5 ** {} if <lvl> > 0").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("n", 0i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].tag("lvl"), Some(5));
    }

    #[test]
    fn interleaved_deep_and_shallow_records_all_complete() {
        let (ctx, plan) = countdown_plan(false);
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        for i in 0..40i64 {
            let depth = if i % 2 == 0 { 20 } else { 1 };
            tx.send(Msg::Rec(Record::build().field("n", depth).finish()))
                .unwrap();
        }
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        assert_eq!(recs.len(), 40);
        assert_eq!(ctx.metrics.get("net/starnd/exits"), 40);
    }

    #[test]
    fn multiplying_records_in_star() {
        // A box that fans out: each record of weight w emits w records
        // of weight w-1; exit at weight 0. Total exits = w! paths...
        // use small w. Checks that replicas handle fan-out and that the
        // merger sees every exit.
        let env = parse_program("box fan (w) -> (w) | (w, <z>);")
            .unwrap()
            .env()
            .unwrap();
        let b = Bindings::new().bind("fan", |r, e| {
            let w = r.field("w").unwrap().as_int().unwrap();
            if w == 0 {
                e.emit(Record::build().field("w", 0i64).tag("z", 1).finish());
            } else {
                for _ in 0..w {
                    e.emit(Record::build().field("w", w - 1).finish());
                }
            }
        });
        let ast = parse_net_expr("fan ** {<z>}").unwrap();
        let plan = compile(&ast, &env, &b).unwrap();
        let ctx = ctx();
        let (tx, in_rx) = stream();
        let out = instantiate(&ctx, &plan.root, "net", in_rx);
        tx.send(Msg::Rec(Record::build().field("w", 4i64).finish()))
            .unwrap();
        drop(tx);
        let recs = collect_records(out);
        ctx.join_all();
        // 4 * 3 * 2 * 1 = 24 leaves.
        assert_eq!(recs.len(), 24);
        // Replicas 0..=4 handle weights 4..=0; guard 5 taps the exits.
        assert_eq!(ctx.metrics.get("net/starnd/stages"), 6);
    }
}
