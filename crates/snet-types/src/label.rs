//! Interned record labels.
//!
//! S-Net messages are records of label/value pairs. "Labels are
//! subdivided into fields and tags. Fields are associated with values
//! from the SaC domain that are entirely opaque to S-Net; tags are
//! associated with integer numbers ... Tag labels are distinguished
//! from field labels by angular brackets" (paper, Section 4).
//!
//! Labels are interned process-wide so that records, record types and
//! routing tables compare labels by a copyable id rather than by
//! string — label comparison is the innermost operation of the whole
//! runtime (every record dispatch does subset tests over label sets).
//! Interned names are leaked into `&'static str`s: the label universe
//! of a coordination program is small and fixed, and leaking makes
//! `name()` allocation-free.

use crate::intern::StringInterner;
use std::fmt;
use std::sync::OnceLock;

/// Whether a label names a field (opaque payload) or a tag (integer
/// visible to the coordination layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelKind {
    Field,
    Tag,
}

/// An interned label. Cheap to copy and compare; the total order is
/// kind-major then name-alphabetical, so sorted label vectors print in
/// a stable, human-readable order.
#[derive(Clone, Copy)]
pub struct Label {
    kind: LabelKind,
    id: u32,
    name: &'static str,
}

impl PartialEq for Label {
    /// Interning makes `(kind, id)` a complete identity — no string
    /// comparison (labels key hot-path hash maps: shape transition
    /// caches, route memos).
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.kind == other.kind
    }
}

impl Eq for Label {}

impl std::hash::Hash for Label {
    /// Hashes the interned identity only, never the name bytes —
    /// consistent with `Eq` because the id determines the name.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u32((self.id << 1) | u32::from(self.kind == LabelKind::Tag));
    }
}

fn intern(name: &str) -> (u32, &'static str) {
    static INTERNER: OnceLock<StringInterner> = OnceLock::new();
    INTERNER.get_or_init(StringInterner::new).intern(name)
}

impl Label {
    /// Interns a field label, e.g. `board`.
    pub fn field(name: &str) -> Label {
        let (id, name) = intern(name);
        Label {
            kind: LabelKind::Field,
            id,
            name,
        }
    }

    /// Interns a tag label, e.g. `<done>` (pass the bare name, `done`).
    pub fn tag(name: &str) -> Label {
        let (id, name) = intern(name);
        Label {
            kind: LabelKind::Tag,
            id,
            name,
        }
    }

    pub fn kind(&self) -> LabelKind {
        self.kind
    }

    pub fn is_tag(&self) -> bool {
        self.kind == LabelKind::Tag
    }

    pub fn is_field(&self) -> bool {
        self.kind == LabelKind::Field
    }

    /// The label's name without tag brackets.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The label's interner id. Stable for the process lifetime and
    /// shared between the field and tag of the same name — combine
    /// with [`Label::kind`] when a unique key is needed. Exposed so
    /// hot paths (e.g. the parallel dispatcher's route cache) can hash
    /// label sequences without touching string data.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    /// Kind-major (all fields before all tags, mirroring the
    /// `(fields, tags)` split of a record), then alphabetical.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.kind
            .cmp(&other.kind)
            .then_with(|| self.name.cmp(other.name))
    }
}

impl fmt::Display for Label {
    /// Fields print bare, tags in the paper's angular brackets.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LabelKind::Field => write!(f, "{}", self.name),
            LabelKind::Tag => write!(f, "<{}>", self.name),
        }
    }
}

impl fmt::Debug for Label {
    /// Defers to Display — labels read much better as `<k>` than as a
    /// struct dump in test failures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_kind_is_equal() {
        assert_eq!(Label::field("board"), Label::field("board"));
        assert_eq!(Label::tag("k"), Label::tag("k"));
    }

    #[test]
    fn field_and_tag_of_same_name_differ() {
        assert_ne!(Label::field("k"), Label::tag("k"));
    }

    #[test]
    fn display_uses_angular_brackets_for_tags() {
        assert_eq!(Label::field("opts").to_string(), "opts");
        assert_eq!(Label::tag("done").to_string(), "<done>");
    }

    #[test]
    fn name_roundtrips() {
        assert_eq!(Label::field("some_long_label").name(), "some_long_label");
        assert_eq!(Label::tag("level").name(), "level");
    }

    #[test]
    fn ordering_is_kind_major_then_alphabetical() {
        assert!(Label::field("z") < Label::tag("a"));
        assert!(Label::field("a") < Label::field("b"));
        assert!(Label::tag("x") < Label::tag("y"));
        // Interning order must not influence the total order.
        let late = Label::field("zz_interned_late_aa");
        let later = Label::field("aa_interned_later_zz");
        assert!(later < late);
    }

    #[test]
    fn interning_is_concurrent_safe() {
        std::thread::scope(|s| {
            for t in 0..8 {
                s.spawn(move || {
                    for i in 0..200 {
                        let l = Label::field(&format!("lbl{}", i % 50));
                        assert_eq!(l.name(), format!("lbl{}", i % 50));
                        let _ = t;
                    }
                });
            }
        });
    }
}
