//! Interned record *shapes* and compiled per-shape type-operation
//! plans.
//!
//! A **shape** is the sorted field+tag label set of a record — its
//! type, stripped of values. PR 1 interned label strings, PR 1/2
//! interned component paths and memoized routing per label sequence;
//! this module makes the same move for the label *sets* themselves:
//! every distinct shape is interned process-wide into a copyable
//! [`Shape`] handle (`(id, &'static ShapeInfo)`), so
//!
//! * a record names its type with one `u32` — type-keyed memos
//!   ([`snet-runtime`'s `TypeMemo`]) become a plain id-keyed map hit
//!   with no element-wise key verification;
//! * the per-record halves of subtype acceptance and flow inheritance
//!   compile, **once per shape pair**, into index-map plans
//!   ([`SplitPlan`], [`InheritPlan`]) that are then applied as
//!   straight array copies — no per-label binary searches, no subset
//!   tests on the hot path.
//!
//! # Why shape interning is bounded (unlike path interning)
//!
//! Shapes are subsets of the *label universe*, which is fixed by the
//! program text (box signatures, filter specifiers, routing tags).
//! Records flowing through a network only ever carry labels some
//! declaration introduced, so the set of shapes that actually occurs
//! is bounded by program structure — in practice a few dozen. This is
//! the crucial contrast with `CompPath` interning, where indexed-split
//! branch paths embed the routing tag *value* and therefore grow with
//! the (potentially unbounded) tag domain. Tag values never enter a
//! shape. An application that fabricates unboundedly many distinct
//! label *names* at runtime would grow this interner — but it would
//! grow the label interner identically, a pre-existing (and
//! documented) property of the label model.
//!
//! Transition caches (`shape + label -> shape'`) make incremental
//! record construction (`set_field`/`set_tag`/`remove`) cheap once
//! warm, and plan caches do the same for `split_for`/`inherit`. All
//! interned data is leaked, like labels and paths: handles are
//! `Copy`, lookups return `&'static` references, and the universes
//! are bounded per the argument above.
//!
//! # Lock-free warm construction
//!
//! Warm transitions resolve through a **thread-local** mirror of the
//! process-wide transition tables before touching the table lock:
//! once a thread has seen a `(shape, label)` transition, every later
//! `set_field`/`set_tag`/`remove` taking it is a plain map hit with
//! no shared atomic RMW at all. The process-wide read lock was
//! invisible on one core, but it is one shared cache line bouncing
//! between every pool worker constructing records concurrently —
//! the transition result is immutable (`&'static ShapeInfo`), so each
//! thread can cache it forever. The thread-local maps are bounded by
//! the same label-universe argument as the global tables; each thread
//! pays one global lookup per transition to warm its own copy.

use crate::fxmap::FxMap;
use crate::label::{Label, LabelKind};
use crate::rtype::RecordType;
use parking_lot::RwLock;

use std::sync::OnceLock;

/// The interned label sets of one shape. Leaked on first sight;
/// handed out as `&'static` so per-record code borrows freely.
pub struct ShapeInfo {
    id: u32,
    fields: Vec<Label>,
    tags: Vec<Label>,
}

/// An interned record shape: the sorted field and tag label sets.
/// One word (the id lives inside the leaked [`ShapeInfo`]) — a record
/// pays 8 bytes for its complete type identity. Cheap to copy;
/// equality is one pointer comparison (interning makes the info
/// pointer unique per shape).
#[derive(Clone, Copy)]
pub struct Shape {
    info: &'static ShapeInfo,
}

impl PartialEq for Shape {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.info, other.info)
    }
}

impl Eq for Shape {}

impl std::hash::Hash for Shape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.info.id.hash(state);
    }
}

impl std::fmt::Debug for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// A compiled subtype-acceptance split: how records of shape `source`
/// partition against an input type of shape `matched`. Applying the
/// plan is straight array copies by the stored indices — the runtime
/// half of "split the record into what the box sees and the excess".
pub struct SplitPlan {
    /// The record shape this plan splits.
    pub source: Shape,
    /// The matched part's shape — exactly the input type's shape.
    pub matched: Shape,
    /// The excess part's shape.
    pub excess: Shape,
    /// For each matched field slot, its index in the source fields.
    pub matched_fields: Vec<u32>,
    /// For each excess field slot, its index in the source fields.
    pub excess_fields: Vec<u32>,
    /// For each matched tag slot, its index in the source tags.
    pub matched_tags: Vec<u32>,
    /// For each excess tag slot, its index in the source tags.
    pub excess_tags: Vec<u32>,
}

impl SplitPlan {
    /// True when the whole record is matched (no excess): the record
    /// can be handed to the box as-is, with nothing to inherit back.
    pub fn is_identity(&self) -> bool {
        self.excess.is_empty()
    }
}

/// One slot of an [`InheritPlan`] result: where the value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InheritSrc {
    /// Take the value from the excess record (false: from the output
    /// record itself — present labels win, paper Section 4).
    pub from_excess: bool,
    /// Index into the source's same-kind value array.
    pub idx: u32,
}

/// A compiled flow-inheritance merge for one (output shape, excess
/// shape) pair: the result shape plus, per result slot, which source
/// array the value copies from. Duplicate labels resolve at compile
/// time — the output record's entry wins, the inherited one "is
/// discarded" — so applying the plan never compares labels.
pub struct InheritPlan {
    /// The merged record's shape.
    pub result: Shape,
    /// True when the excess contributes nothing (every excess label is
    /// already present, or the excess is empty): `inherit` returns the
    /// output record unchanged, no copies at all.
    pub identity: bool,
    /// Value source per result field slot.
    pub fields: Vec<InheritSrc>,
    /// Value source per result tag slot.
    pub tags: Vec<InheritSrc>,
}

struct Tables {
    /// label-sequence hash -> candidate shape ids (collisions resolved
    /// by element-wise comparison, once per *interning*, never on the
    /// id-keyed fast paths).
    buckets: FxMap<u64, Vec<u32>>,
    shapes: Vec<&'static ShapeInfo>,
    /// `(shape, label)` -> `(shape with label added, slot index)`.
    grown: FxMap<(u32, Label), (u32, u32)>,
    /// `(shape, label)` -> shape with label removed.
    shrunk: FxMap<(u32, Label), u32>,
    /// `(record shape, input-type shape)` -> split plan (`None` when
    /// the record does not match the type).
    splits: FxMap<(u32, u32), Option<&'static SplitPlan>>,
    /// `(output shape, excess shape)` -> inherit plan.
    inherits: FxMap<(u32, u32), &'static InheritPlan>,
}

/// The empty shape's info, cached outside the table lock:
/// `Shape::empty()` runs per constructed record (every
/// `Record::new()`), so it must be a plain pointer load.
static EMPTY_INFO: OnceLock<&'static ShapeInfo> = OnceLock::new();

/// Thread-local mirror of the `grown`/`shrunk` transition tables (see
/// module docs): warm record construction hits this cache without
/// taking the process-wide table's read lock. Values are immutable
/// `&'static` interner data, so a stale-free copy per thread is
/// always safe.
struct LocalTransitions {
    grown: FxMap<(u32, Label), (&'static ShapeInfo, u32)>,
    shrunk: FxMap<(u32, Label), &'static ShapeInfo>,
}

thread_local! {
    static LOCAL: std::cell::RefCell<LocalTransitions> =
        std::cell::RefCell::new(LocalTransitions {
            grown: FxMap::default(),
            shrunk: FxMap::default(),
        });
}

fn tables() -> &'static RwLock<Tables> {
    static TABLES: OnceLock<RwLock<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = Tables {
            buckets: FxMap::default(),
            shapes: Vec::new(),
            grown: FxMap::default(),
            shrunk: FxMap::default(),
            splits: FxMap::default(),
            inherits: FxMap::default(),
        };
        // Shape 0 is the empty shape, so `Shape::empty()` never
        // misses.
        let info: &'static ShapeInfo = Box::leak(Box::new(ShapeInfo {
            id: 0,
            fields: Vec::new(),
            tags: Vec::new(),
        }));
        let _ = EMPTY_INFO.set(info);
        t.shapes.push(info);
        t.buckets.insert(label_hash(&[], &[]), vec![0]);
        RwLock::new(t)
    })
}

/// Order-dependent FNV over the (kind, id) label sequence — the same
/// scheme the route cache used before shapes subsumed it.
fn label_hash(fields: &[Label], tags: &[Label]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for l in fields.iter().chain(tags) {
        let v = (u64::from(l.id()) << 1) | u64::from(l.is_tag());
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shape_at(t: &Tables, id: u32) -> Shape {
    Shape {
        info: t.shapes[id as usize],
    }
}

/// Interns the shape with the given sorted, deduplicated label halves.
fn intern_sorted(fields: &[Label], tags: &[Label]) -> Shape {
    debug_assert!(fields.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(tags.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(fields.iter().all(|l| l.is_field()));
    debug_assert!(tags.iter().all(|l| l.is_tag()));
    let h = label_hash(fields, tags);
    {
        let t = tables().read();
        if let Some(bucket) = t.buckets.get(&h) {
            for &id in bucket {
                let info = t.shapes[id as usize];
                if info.fields == fields && info.tags == tags {
                    return shape_at(&t, id);
                }
            }
        }
    }
    let mut t = tables().write();
    if let Some(bucket) = t.buckets.get(&h) {
        for &id in bucket {
            let info = t.shapes[id as usize];
            if info.fields == fields && info.tags == tags {
                return shape_at(&t, id);
            }
        }
    }
    let id = t.shapes.len() as u32;
    let info: &'static ShapeInfo = Box::leak(Box::new(ShapeInfo {
        id,
        fields: fields.to_vec(),
        tags: tags.to_vec(),
    }));
    t.shapes.push(info);
    t.buckets.entry(h).or_default().push(id);
    Shape { info }
}

impl Shape {
    /// The empty shape `{}` (lock-free after first use: every
    /// `Record::new()` calls this).
    pub fn empty() -> Shape {
        match EMPTY_INFO.get() {
            Some(info) => Shape { info },
            None => {
                let _ = tables(); // initializes EMPTY_INFO
                Shape {
                    info: EMPTY_INFO.get().expect("table init sets the empty shape"),
                }
            }
        }
    }

    /// Interns the shape of a [`RecordType`] (a sorted label set;
    /// fields sort before tags under the kind-major label order, so
    /// the halves are a partition point apart).
    pub fn of_type(ty: &RecordType) -> Shape {
        let labels = ty.labels();
        let split = labels.partition_point(|l| l.is_field());
        intern_sorted(&labels[..split], &labels[split..])
    }

    /// The shape's stable interner id.
    pub fn id(&self) -> u32 {
        self.info.id
    }

    /// The sorted field labels.
    pub fn fields(&self) -> &'static [Label] {
        &self.info.fields
    }

    /// The sorted tag labels.
    pub fn tags(&self) -> &'static [Label] {
        &self.info.tags
    }

    pub fn len(&self) -> usize {
        self.info.fields.len() + self.info.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.info.fields.is_empty() && self.info.tags.is_empty()
    }

    /// All labels, fields then tags — the globally sorted order under
    /// the kind-major label ordering.
    pub fn labels(&self) -> impl Iterator<Item = Label> + 'static {
        self.info
            .fields
            .iter()
            .copied()
            .chain(self.info.tags.iter().copied())
    }

    /// Slot of a field label within the field half.
    pub fn field_index(&self, label: Label) -> Option<usize> {
        debug_assert_eq!(label.kind(), LabelKind::Field);
        self.info.fields.binary_search(&label).ok()
    }

    /// Slot of a tag label within the tag half.
    pub fn tag_index(&self, label: Label) -> Option<usize> {
        debug_assert_eq!(label.kind(), LabelKind::Tag);
        self.info.tags.binary_search(&label).ok()
    }

    pub fn contains(&self, label: Label) -> bool {
        match label.kind() {
            LabelKind::Field => self.field_index(label).is_some(),
            LabelKind::Tag => self.tag_index(label).is_some(),
        }
    }

    /// The shape as a [`RecordType`] (allocates — memo-miss paths
    /// only).
    pub fn record_type(&self) -> RecordType {
        self.labels().collect()
    }

    /// The shape with `label` added: `(new shape, insertion slot in
    /// the same-kind half)`. The label must not already be present.
    /// Cached per `(shape, label)` transition — thread-locally first,
    /// so warm record construction takes no lock at all.
    pub fn with(&self, label: Label) -> (Shape, usize) {
        debug_assert!(!self.contains(label));
        let key = (self.id(), label);
        if let Some((info, slot)) = LOCAL.with(|l| l.borrow().grown.get(&key).copied()) {
            return (Shape { info }, slot as usize);
        }
        let (shape, slot) = self.with_global(label);
        LOCAL.with(|l| l.borrow_mut().grown.insert(key, (shape.info, slot as u32)));
        (shape, slot)
    }

    /// The global-table half of [`Shape::with`]: one read-locked hit
    /// when some thread already interned the transition, the full
    /// computation plus a write-locked insert on process-wide first
    /// sight.
    fn with_global(&self, label: Label) -> (Shape, usize) {
        {
            let t = tables().read();
            if let Some(&(id, slot)) = t.grown.get(&(self.id(), label)) {
                return (shape_at(&t, id), slot as usize);
            }
        }
        let (half, other) = match label.kind() {
            LabelKind::Field => (&self.info.fields, &self.info.tags),
            LabelKind::Tag => (&self.info.tags, &self.info.fields),
        };
        let slot = half.partition_point(|l| *l < label);
        let mut grown = half.clone();
        grown.insert(slot, label);
        let shape = match label.kind() {
            LabelKind::Field => intern_sorted(&grown, other),
            LabelKind::Tag => intern_sorted(other, &grown),
        };
        tables()
            .write()
            .grown
            .insert((self.id(), label), (shape.id(), slot as u32));
        (shape, slot)
    }

    /// The shape with `label` removed (which must be present). Cached
    /// like [`Shape::with`] — thread-locally first, lock-free when
    /// warm.
    pub fn without(&self, label: Label) -> Shape {
        debug_assert!(self.contains(label));
        let key = (self.id(), label);
        if let Some(info) = LOCAL.with(|l| l.borrow().shrunk.get(&key).copied()) {
            return Shape { info };
        }
        let shape = self.without_global(label);
        LOCAL.with(|l| l.borrow_mut().shrunk.insert(key, shape.info));
        shape
    }

    fn without_global(&self, label: Label) -> Shape {
        {
            let t = tables().read();
            if let Some(&id) = t.shrunk.get(&(self.id(), label)) {
                return shape_at(&t, id);
            }
        }
        let (half, other) = match label.kind() {
            LabelKind::Field => (&self.info.fields, &self.info.tags),
            LabelKind::Tag => (&self.info.tags, &self.info.fields),
        };
        let mut shrunk = half.clone();
        let slot = shrunk.binary_search(&label).expect("label present");
        shrunk.remove(slot);
        let shape = match label.kind() {
            LabelKind::Field => intern_sorted(&shrunk, other),
            LabelKind::Tag => intern_sorted(other, &shrunk),
        };
        tables()
            .write()
            .shrunk
            .insert((self.id(), label), shape.id());
        shape
    }

    /// The compiled split of records of this shape against an input
    /// type of shape `ty`: `None` when such records do not match the
    /// type (subtype acceptance fails). Compiled once per shape pair,
    /// then a read-locked map hit.
    pub fn split_plan(&self, ty: Shape) -> Option<&'static SplitPlan> {
        {
            let t = tables().read();
            if let Some(&plan) = t.splits.get(&(self.id(), ty.id())) {
                return plan;
            }
        }
        let plan = self.compile_split(ty);
        let mut t = tables().write();
        *t.splits.entry((self.id(), ty.id())).or_insert(plan)
    }

    fn compile_split(&self, ty: Shape) -> Option<&'static SplitPlan> {
        // Subtype acceptance: every label of the input type must be
        // present on the record.
        if !ty.labels().all(|l| self.contains(l)) {
            return None;
        }
        let mut matched_fields = Vec::new();
        let mut excess_fields = Vec::new();
        let mut excess_field_labels = Vec::new();
        for (i, l) in self.info.fields.iter().enumerate() {
            if ty.field_index(*l).is_some() {
                matched_fields.push(i as u32);
            } else {
                excess_fields.push(i as u32);
                excess_field_labels.push(*l);
            }
        }
        let mut matched_tags = Vec::new();
        let mut excess_tags = Vec::new();
        let mut excess_tag_labels = Vec::new();
        for (i, l) in self.info.tags.iter().enumerate() {
            if ty.tag_index(*l).is_some() {
                matched_tags.push(i as u32);
            } else {
                excess_tags.push(i as u32);
                excess_tag_labels.push(*l);
            }
        }
        let excess = intern_sorted(&excess_field_labels, &excess_tag_labels);
        Some(Box::leak(Box::new(SplitPlan {
            source: *self,
            matched: ty,
            excess,
            matched_fields,
            excess_fields,
            matched_tags,
            excess_tags,
        })))
    }

    /// The compiled flow-inheritance merge of an output record of this
    /// shape with an excess record of shape `excess`. Compiled once
    /// per shape pair, then a read-locked map hit.
    pub fn inherit_plan(&self, excess: Shape) -> &'static InheritPlan {
        {
            let t = tables().read();
            if let Some(&plan) = t.inherits.get(&(self.id(), excess.id())) {
                return plan;
            }
        }
        let plan = self.compile_inherit(excess);
        let mut t = tables().write();
        t.inherits.entry((self.id(), excess.id())).or_insert(plan)
    }

    fn compile_inherit(&self, excess: Shape) -> &'static InheritPlan {
        // Merge the sorted halves; on a duplicate label the output
        // record's entry wins and the inherited one is discarded
        // (paper, Section 4).
        fn merge_half(own: &[Label], exc: &[Label]) -> (Vec<Label>, Vec<InheritSrc>) {
            let mut labels = Vec::with_capacity(own.len() + exc.len());
            let mut srcs = Vec::with_capacity(own.len() + exc.len());
            let (mut i, mut j) = (0, 0);
            while i < own.len() || j < exc.len() {
                let take_own = match (own.get(i), exc.get(j)) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            j += 1; // duplicate: inherited entry discarded
                            true
                        } else {
                            a < b
                        }
                    }
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => unreachable!(),
                };
                if take_own {
                    labels.push(own[i]);
                    srcs.push(InheritSrc {
                        from_excess: false,
                        idx: i as u32,
                    });
                    i += 1;
                } else {
                    labels.push(exc[j]);
                    srcs.push(InheritSrc {
                        from_excess: true,
                        idx: j as u32,
                    });
                    j += 1;
                }
            }
            (labels, srcs)
        }
        let (flabels, fsrcs) = merge_half(&self.info.fields, &excess.info.fields);
        let (tlabels, tsrcs) = merge_half(&self.info.tags, &excess.info.tags);
        let result = intern_sorted(&flabels, &tlabels);
        let identity = result == *self;
        Box::leak(Box::new(InheritPlan {
            result,
            identity,
            fields: fsrcs,
            tags: tsrcs,
        }))
    }
}

/// Number of distinct shapes interned so far, process-wide (the
/// observability hook mirroring `interned_paths`; bounded by the
/// label universe — see module docs).
pub fn interned_shapes() -> usize {
    tables().read().shapes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(name: &str) -> Label {
        Label::field(name)
    }
    fn t(name: &str) -> Label {
        Label::tag(name)
    }

    #[test]
    fn interning_dedups_and_orders() {
        let a = Shape::of_type(&RecordType::of(&["a", "d"], &["b"]));
        let b = Shape::of_type(&RecordType::of(&["d", "a"], &["b"]));
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.fields(), &[l("a"), l("d")]);
        assert_eq!(a.tags(), &[t("b")]);
        assert_eq!(a.len(), 3);
        let c = Shape::of_type(&RecordType::of(&["a"], &["b"]));
        assert_ne!(a, c);
    }

    #[test]
    fn empty_shape_is_id_zero() {
        assert_eq!(Shape::empty().id(), 0);
        assert!(Shape::empty().is_empty());
        assert_eq!(Shape::of_type(&RecordType::empty()), Shape::empty());
    }

    #[test]
    fn field_and_tag_of_same_name_are_distinct_shapes() {
        let f = Shape::of_type(&RecordType::of(&["k"], &[]));
        let g = Shape::of_type(&RecordType::of(&[], &["k"]));
        assert_ne!(f, g);
    }

    #[test]
    fn with_and_without_roundtrip_through_cache() {
        let s = Shape::empty();
        let (s1, i1) = s.with(l("b"));
        assert_eq!(i1, 0);
        let (s2, i2) = s1.with(l("a"));
        assert_eq!(i2, 0); // `a` sorts before `b`
        let (s3, i3) = s2.with(t("z"));
        assert_eq!(i3, 0); // first tag slot
        assert_eq!(s3.record_type(), RecordType::of(&["a", "b"], &["z"]));
        // Cached transitions return the identical shape.
        let (s1b, _) = s.with(l("b"));
        assert_eq!(s1, s1b);
        assert_eq!(
            s3.without(l("a")),
            Shape::of_type(&RecordType::of(&["b"], &["z"]))
        );
        assert_eq!(s3.without(t("z")), s2);
    }

    #[test]
    fn split_plan_partitions_by_index() {
        let rec = Shape::of_type(&RecordType::of(&["a", "d"], &["b"]));
        let ty = Shape::of_type(&RecordType::of(&["a"], &["b"]));
        let plan = rec.split_plan(ty).unwrap();
        assert_eq!(plan.matched, ty);
        assert_eq!(plan.excess, Shape::of_type(&RecordType::of(&["d"], &[])));
        assert_eq!(plan.matched_fields, vec![0]);
        assert_eq!(plan.excess_fields, vec![1]);
        assert_eq!(plan.matched_tags, vec![0]);
        assert!(plan.excess_tags.is_empty());
        assert!(!plan.is_identity());
        // Same pair -> same leaked plan.
        assert!(std::ptr::eq(plan, rec.split_plan(ty).unwrap()));
        // Non-matching type -> None, cached too.
        let wrong = Shape::of_type(&RecordType::of(&["zz"], &[]));
        assert!(rec.split_plan(wrong).is_none());
        assert!(rec.split_plan(wrong).is_none());
    }

    #[test]
    fn identity_split_has_no_excess() {
        let s = Shape::of_type(&RecordType::of(&["x"], &["k"]));
        let plan = s.split_plan(s).unwrap();
        assert!(plan.is_identity());
        assert_eq!(plan.matched, s);
    }

    #[test]
    fn inherit_plan_discards_duplicates_at_compile_time() {
        // Output {c,d} inheriting excess {d,e}: own d wins, e joins.
        let out = Shape::of_type(&RecordType::of(&["c", "d"], &[]));
        let exc = Shape::of_type(&RecordType::of(&["d", "e"], &[]));
        let plan = out.inherit_plan(exc);
        assert_eq!(
            plan.result,
            Shape::of_type(&RecordType::of(&["c", "d", "e"], &[]))
        );
        assert!(!plan.identity);
        assert_eq!(
            plan.fields,
            vec![
                InheritSrc {
                    from_excess: false,
                    idx: 0
                }, // c
                InheritSrc {
                    from_excess: false,
                    idx: 1
                }, // own d wins
                InheritSrc {
                    from_excess: true,
                    idx: 1
                }, // e
            ]
        );
    }

    #[test]
    fn inherit_identity_when_excess_contributes_nothing() {
        let out = Shape::of_type(&RecordType::of(&["c", "d"], &["k"]));
        assert!(out.inherit_plan(Shape::empty()).identity);
        let covered = Shape::of_type(&RecordType::of(&["d"], &["k"]));
        assert!(out.inherit_plan(covered).identity);
    }

    #[test]
    fn warm_transitions_agree_across_threads() {
        // The thread-local transition cache must hand every thread
        // the same interned shapes the global tables hold: N threads
        // repeatedly building the same record shape (the warm-path
        // pattern of pool workers constructing records concurrently)
        // all converge on one shape id per label set.
        let base = Shape::of_type(&RecordType::of(&["ltc_a"], &[]));
        let (expect, _) = base.with(l("ltc_b"));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        // Cold on this thread's cache first time,
                        // warm (lock-free) for the other 99.
                        let (grown, slot) = base.with(l("ltc_b"));
                        assert_eq!(grown, expect);
                        assert_eq!(slot, 1);
                        assert_eq!(grown.without(l("ltc_b")), base);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_interning_converges() {
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for i in 0..200 {
                        let ty = RecordType::of(&[&format!("cc{}", i % 10)], &["cct"]);
                        let a = Shape::of_type(&ty);
                        let b = Shape::of_type(&ty);
                        assert_eq!(a, b);
                    }
                });
            }
        });
    }
}
