//! A process-wide string interner, shared by every identifier-like
//! type that wants copyable `(id, &'static str)` handles ([`crate::Label`]
//! here; `CompPath` in `snet-runtime`).
//!
//! Interned strings are leaked: the universes being interned (label
//! names, component paths) are bounded by program structure, and
//! leaking makes the rendered `&'static str` free to hand out. Each
//! consumer owns its own `StringInterner` instance, so ids are dense
//! per namespace.

use parking_lot::RwLock;
use std::collections::HashMap;

/// Double-checked-locking intern table: read-lock fast path for known
/// strings, write-lock only on first sight.
pub struct StringInterner {
    inner: RwLock<Inner>,
}

struct Inner {
    by_text: HashMap<&'static str, u32>,
    texts: Vec<&'static str>,
}

impl StringInterner {
    #[allow(clippy::new_without_default)]
    pub fn new() -> StringInterner {
        StringInterner {
            inner: RwLock::new(Inner {
                by_text: HashMap::new(),
                texts: Vec::new(),
            }),
        }
    }

    /// Interns `text`, returning its dense id and the leaked
    /// `'static` rendering. The same text always returns the same
    /// pair (pointer-identical string).
    pub fn intern(&self, text: &str) -> (u32, &'static str) {
        {
            let r = self.inner.read();
            if let Some(&id) = r.by_text.get(text) {
                return (id, r.texts[id as usize]);
            }
        }
        let mut w = self.inner.write();
        if let Some(&id) = w.by_text.get(text) {
            return (id, w.texts[id as usize]);
        }
        let stat: &'static str = Box::leak(text.to_string().into_boxed_str());
        let id = w.texts.len() as u32;
        w.texts.push(stat);
        w.by_text.insert(stat, id);
        (id, stat)
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_id_and_pointer() {
        let i = StringInterner::new();
        let (a, sa) = i.intern("hello");
        let (b, sb) = i.intern("hello");
        assert_eq!(a, b);
        assert!(std::ptr::eq(sa, sb));
        let (c, _) = i.intern("world");
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn concurrent_interning_converges() {
        let i = StringInterner::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..200 {
                        let (_, text) = i.intern(&format!("s{}", k % 50));
                        assert!(text.starts_with('s'));
                    }
                });
            }
        });
        assert_eq!(i.len(), 50);
    }
}
