//! Records: the messages of S-Net streams.
//!
//! "Messages on these typed streams are organised as non-recursive
//! records, i.e. label-value pairs" (paper, Section 4). A record maps
//! field labels to opaque [`Value`]s and tag labels to integers.
//!
//! The module also implements the record-level halves of the two
//! distinctive S-Net mechanisms:
//!
//! * **subtype acceptance** — [`Record::split_for`] checks that a
//!   record has at least the labels of an input type and splits it into
//!   the matched part (handed to the box function) and the *excess*;
//! * **flow inheritance** — [`Record::inherit`] re-attaches that excess
//!   to an output record "unless some label is already present in the
//!   output record, in which case the field or tag is discarded".

use crate::label::{Label, LabelKind};
use crate::rtype::RecordType;
use crate::value::Value;
use std::fmt;

/// A record: sorted field and tag label/value pairs.
#[derive(Clone, Default, PartialEq)]
pub struct Record {
    fields: Vec<(Label, Value)>,
    tags: Vec<(Label, i64)>,
}

impl Record {
    /// The empty record `{}`.
    pub fn new() -> Record {
        Record::default()
    }

    /// Fluent builder: `Record::build().field("board", v).tag("k", 1)`.
    pub fn build() -> RecordBuilder {
        RecordBuilder(Record::new())
    }

    /// Number of fields plus tags.
    pub fn len(&self) -> usize {
        self.fields.len() + self.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.tags.is_empty()
    }

    /// Sets (or replaces) a field by name.
    pub fn set_field(&mut self, name: &str, value: Value) {
        self.set_field_label(Label::field(name), value);
    }

    /// Sets (or replaces) a field by label. Panics on a tag label —
    /// fields and tags live in separate namespaces.
    pub fn set_field_label(&mut self, label: Label, value: Value) {
        assert!(
            label.kind() == LabelKind::Field,
            "set_field_label requires a field label, got {label}"
        );
        match self.fields.binary_search_by_key(&label, |(l, _)| *l) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (label, value)),
        }
    }

    /// Sets (or replaces) a tag by name.
    pub fn set_tag(&mut self, name: &str, value: i64) {
        self.set_tag_label(Label::tag(name), value);
    }

    /// Sets (or replaces) a tag by label. Panics on a field label.
    pub fn set_tag_label(&mut self, label: Label, value: i64) {
        assert!(
            label.kind() == LabelKind::Tag,
            "set_tag_label requires a tag label, got {label}"
        );
        match self.tags.binary_search_by_key(&label, |(l, _)| *l) {
            Ok(i) => self.tags[i].1 = value,
            Err(i) => self.tags.insert(i, (label, value)),
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.field_label(Label::field(name))
    }

    pub fn field_label(&self, label: Label) -> Option<&Value> {
        self.fields
            .binary_search_by_key(&label, |(l, _)| *l)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Looks up a tag by name.
    pub fn tag(&self, name: &str) -> Option<i64> {
        self.tag_label(Label::tag(name))
    }

    pub fn tag_label(&self, label: Label) -> Option<i64> {
        self.tags
            .binary_search_by_key(&label, |(l, _)| *l)
            .ok()
            .map(|i| self.tags[i].1)
    }

    /// True when the record carries the label (field or tag).
    pub fn has(&self, label: Label) -> bool {
        match label.kind() {
            LabelKind::Field => self.field_label(label).is_some(),
            LabelKind::Tag => self.tag_label(label).is_some(),
        }
    }

    /// Removes a label if present; returns whether it was there.
    pub fn remove(&mut self, label: Label) -> bool {
        match label.kind() {
            LabelKind::Field => {
                if let Ok(i) = self.fields.binary_search_by_key(&label, |(l, _)| *l) {
                    self.fields.remove(i);
                    true
                } else {
                    false
                }
            }
            LabelKind::Tag => {
                if let Ok(i) = self.tags.binary_search_by_key(&label, |(l, _)| *l) {
                    self.tags.remove(i);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Iterates field entries in label order.
    pub fn fields(&self) -> impl Iterator<Item = (Label, &Value)> {
        self.fields.iter().map(|(l, v)| (*l, v))
    }

    /// Iterates tag entries in label order.
    pub fn tags(&self) -> impl Iterator<Item = (Label, i64)> + '_ {
        self.tags.iter().map(|(l, v)| (*l, *v))
    }

    /// The record's type: its set of labels.
    pub fn record_type(&self) -> RecordType {
        self.fields
            .iter()
            .map(|(l, _)| *l)
            .chain(self.tags.iter().map(|(l, _)| *l))
            .collect()
    }

    /// Iterates every label of the record (fields then tags) in the
    /// same sorted order [`Record::record_type`] would produce, without
    /// allocating. Fields sort before tags under [`Label`]'s kind-major
    /// order and each half is kept sorted internally, so the chained
    /// sequence is globally sorted — hot paths rely on this to compare
    /// a record's type against a cached [`RecordType`] element-wise.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.fields
            .iter()
            .map(|(l, _)| *l)
            .chain(self.tags.iter().map(|(l, _)| *l))
    }

    /// True when the record can enter an input of type `ty`
    /// (record subtyping: `ty ⊆ labels(self)`).
    pub fn matches(&self, ty: &RecordType) -> bool {
        ty.labels().iter().all(|l| self.has(*l))
    }

    /// Splits the record against an input type: the first component
    /// carries exactly the labels of `ty` (what the box function sees),
    /// the second the *excess* kept by the runtime for flow
    /// inheritance. `None` when the record does not match `ty`.
    pub fn split_for(&self, ty: &RecordType) -> Option<(Record, Record)> {
        if !self.matches(ty) {
            return None;
        }
        let mut matched = Record::new();
        let mut excess = Record::new();
        for (l, v) in &self.fields {
            if ty.contains(*l) {
                matched.fields.push((*l, v.clone()));
            } else {
                excess.fields.push((*l, v.clone()));
            }
        }
        for (l, v) in &self.tags {
            if ty.contains(*l) {
                matched.tags.push((*l, *v));
            } else {
                excess.tags.push((*l, *v));
            }
        }
        Some((matched, excess))
    }

    /// Flow inheritance: extends `self` with every entry of `excess`
    /// whose label is not already present (paper, Section 4: present
    /// labels win, the inherited entry "is discarded").
    pub fn inherit(mut self, excess: &Record) -> Record {
        for (l, v) in &excess.fields {
            if self.field_label(*l).is_none() {
                self.set_field_label(*l, v.clone());
            }
        }
        for (l, v) in &excess.tags {
            if self.tag_label(*l).is_none() {
                self.set_tag_label(*l, *v);
            }
        }
        self
    }

    /// Projects the record onto a set of labels (used by filters: "a
    /// field name occurring in the pattern: it is copied").
    pub fn project(&self, ty: &RecordType) -> Record {
        let mut out = Record::new();
        for (l, v) in &self.fields {
            if ty.contains(*l) {
                out.fields.push((*l, v.clone()));
            }
        }
        for (l, v) in &self.tags {
            if ty.contains(*l) {
                out.tags.push((*l, *v));
            }
        }
        out
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (l, v) in &self.fields {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l}={v:?}")?;
        }
        for (l, v) in &self.tags {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Fluent construction of records.
pub struct RecordBuilder(Record);

impl RecordBuilder {
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.0.set_field(name, value.into());
        self
    }

    pub fn tag(mut self, name: &str, value: i64) -> Self {
        self.0.set_tag(name, value);
        self
    }

    pub fn finish(self) -> Record {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_abd() -> Record {
        // The paper's flow-inheritance example input: {a,<b>,d}.
        Record::build()
            .field("a", 1i64)
            .tag("b", 10)
            .field("d", 4i64)
            .finish()
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let mut r = Record::new();
        assert!(r.is_empty());
        r.set_field("x", Value::Int(5));
        r.set_tag("t", 7);
        assert_eq!(r.field("x").unwrap().as_int(), Some(5));
        assert_eq!(r.tag("t"), Some(7));
        assert_eq!(r.len(), 2);
        // Replacement, not duplication.
        r.set_field("x", Value::Int(6));
        assert_eq!(r.field("x").unwrap().as_int(), Some(6));
        assert_eq!(r.len(), 2);
        assert!(r.remove(Label::field("x")));
        assert!(!r.remove(Label::field("x")));
        assert_eq!(r.field("x"), None);
    }

    #[test]
    fn fields_and_tags_are_separate_namespaces() {
        let mut r = Record::new();
        r.set_field("k", Value::Int(1));
        r.set_tag("k", 2);
        assert_eq!(r.field("k").unwrap().as_int(), Some(1));
        assert_eq!(r.tag("k"), Some(2));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires a field label")]
    fn set_field_with_tag_label_panics() {
        let mut r = Record::new();
        r.set_field_label(Label::tag("t"), Value::Int(1));
    }

    #[test]
    fn record_type_collects_all_labels() {
        let r = rec_abd();
        let t = r.record_type();
        assert!(t.contains(Label::field("a")));
        assert!(t.contains(Label::tag("b")));
        assert!(t.contains(Label::field("d")));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn matches_is_subtype_acceptance() {
        let r = rec_abd();
        assert!(r.matches(&RecordType::of(&["a"], &["b"])));
        assert!(r.matches(&RecordType::empty()));
        assert!(!r.matches(&RecordType::of(&["a", "z"], &[])));
    }

    #[test]
    fn split_for_partitions_matched_and_excess() {
        // Box foo (a,<b>) receiving {a,<b>,d}: a and <b> are arguments,
        // d is kept by the runtime (paper, Section 4).
        let r = rec_abd();
        let ty = RecordType::of(&["a"], &["b"]);
        let (matched, excess) = r.split_for(&ty).unwrap();
        assert_eq!(matched.record_type(), ty);
        assert_eq!(excess.record_type(), RecordType::of(&["d"], &[]));
        assert_eq!(excess.field("d").unwrap().as_int(), Some(4));
        // Non-matching split yields None.
        assert!(r.split_for(&RecordType::of(&["zz"], &[])).is_none());
    }

    #[test]
    fn inherit_attaches_excess_unless_present() {
        // Output {c} inherits d; output {c,d,<e>} keeps its own d.
        let excess = Record::build().field("d", 4i64).finish();
        let out1 = Record::build().field("c", 9i64).finish().inherit(&excess);
        assert_eq!(out1.field("d").unwrap().as_int(), Some(4));
        let out2 = Record::build()
            .field("c", 9i64)
            .field("d", 99i64)
            .finish()
            .inherit(&excess);
        assert_eq!(out2.field("d").unwrap().as_int(), Some(99));
    }

    #[test]
    fn inherit_covers_tags_too() {
        let excess = Record::build().tag("lvl", 3).finish();
        let out = Record::build().tag("k", 1).finish().inherit(&excess);
        assert_eq!(out.tag("lvl"), Some(3));
        let out2 = Record::build().tag("lvl", 8).finish().inherit(&excess);
        assert_eq!(out2.tag("lvl"), Some(8));
    }

    #[test]
    fn project_copies_only_pattern_labels() {
        let r = rec_abd();
        let p = r.project(&RecordType::of(&["a"], &[]));
        assert_eq!(p.len(), 1);
        assert_eq!(p.field("a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn equality_is_structural() {
        let a = Record::build().field("x", 1i64).tag("t", 2).finish();
        let b = Record::build().tag("t", 2).field("x", 1i64).finish();
        assert_eq!(a, b);
        let c = Record::build().field("x", 1i64).tag("t", 3).finish();
        assert_ne!(a, c);
    }

    #[test]
    fn debug_render() {
        let r = Record::build().field("a", 1i64).tag("k", 2).finish();
        let s = format!("{r:?}");
        assert!(s.contains("a=Int(1)"));
        assert!(s.contains("<k>=2"));
    }
}
