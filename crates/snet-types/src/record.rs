//! Records: the messages of S-Net streams.
//!
//! "Messages on these typed streams are organised as non-recursive
//! records, i.e. label-value pairs" (paper, Section 4). A record maps
//! field labels to opaque [`Value`]s and tag labels to integers.
//!
//! # Shape-interned representation
//!
//! A record is an interned [`Shape`] (its sorted field+tag label set —
//! see [`crate::shape`]) plus two value arrays aligned with the
//! shape's label halves. The labels themselves live in the interner,
//! `&'static` and shared by every record of the shape; the values live
//! inline in the record for up to four fields and four tags
//! ([`crate::svec::SVec`]), so records of that size — every workload
//! in this tree — are **allocation-free to construct, clone, split
//! and inherit**.
//!
//! The shape id makes every type-level question about a record O(1):
//! type-keyed memos key on `shape().id()` with no element-wise
//! verification, and equality short-circuits on the id before looking
//! at a single value.
//!
//! # Compiled subtype acceptance and flow inheritance
//!
//! The module implements the record-level halves of the two
//! distinctive S-Net mechanisms as **plan applications**:
//!
//! * **subtype acceptance** — [`Record::split_for`] checks that a
//!   record has at least the labels of an input type and splits it
//!   into the matched part (handed to the box function) and the
//!   *excess*. The partition is compiled once per (record shape,
//!   input type) pair into a [`SplitPlan`] of value-array indices;
//!   applying it is straight copies, no per-label binary searches.
//! * **flow inheritance** — [`Record::inherit`] re-attaches that
//!   excess to an output record "unless some label is already present
//!   in the output record, in which case the field or tag is
//!   discarded". The duplicate-discard rule resolves at plan-compile
//!   time ([`crate::shape::InheritPlan`]); when the excess
//!   contributes nothing the plan is the identity and `inherit`
//!   returns its input untouched.

use crate::label::{Label, LabelKind};
use crate::rtype::RecordType;
use crate::shape::{Shape, SplitPlan};
use crate::svec::SVec;
use crate::value::Value;
use std::fmt;

/// Inline value slots per kind half: records with at most this many
/// fields and this many tags never touch the heap.
pub const INLINE_SLOTS: usize = 4;

/// A record: an interned shape plus shape-aligned value storage.
#[derive(Clone, PartialEq)]
pub struct Record {
    shape: Shape,
    /// Field values, aligned with `shape.fields()`.
    fields: SVec<Value, INLINE_SLOTS>,
    /// Tag values, aligned with `shape.tags()`.
    tags: SVec<i64, INLINE_SLOTS>,
}

impl Default for Record {
    fn default() -> Record {
        Record {
            shape: Shape::empty(),
            fields: SVec::new(),
            tags: SVec::new(),
        }
    }
}

impl Record {
    /// The empty record `{}`.
    pub fn new() -> Record {
        Record::default()
    }

    /// Fluent builder: `Record::build().field("board", v).tag("k", 1)`.
    pub fn build() -> RecordBuilder {
        RecordBuilder(Record::new())
    }

    /// The record's interned shape: its label set as a copyable
    /// handle. Two records have the same shape id iff they carry
    /// exactly the same labels.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of fields plus tags.
    pub fn len(&self) -> usize {
        self.fields.len() + self.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty() && self.tags.is_empty()
    }

    /// Sets (or replaces) a field by name.
    pub fn set_field(&mut self, name: &str, value: Value) {
        self.set_field_label(Label::field(name), value);
    }

    /// Sets (or replaces) a field by label. Panics on a tag label —
    /// fields and tags live in separate namespaces.
    pub fn set_field_label(&mut self, label: Label, value: Value) {
        assert!(
            label.kind() == LabelKind::Field,
            "set_field_label requires a field label, got {label}"
        );
        match self.shape.field_index(label) {
            Some(i) => self.fields.as_mut_slice()[i] = value,
            None => {
                let (shape, slot) = self.shape.with(label);
                self.shape = shape;
                self.fields.insert(slot, value);
            }
        }
    }

    /// Sets (or replaces) a tag by name.
    pub fn set_tag(&mut self, name: &str, value: i64) {
        self.set_tag_label(Label::tag(name), value);
    }

    /// Sets (or replaces) a tag by label. Panics on a field label.
    pub fn set_tag_label(&mut self, label: Label, value: i64) {
        assert!(
            label.kind() == LabelKind::Tag,
            "set_tag_label requires a tag label, got {label}"
        );
        match self.shape.tag_index(label) {
            Some(i) => self.tags.as_mut_slice()[i] = value,
            None => {
                let (shape, slot) = self.shape.with(label);
                self.shape = shape;
                self.tags.insert(slot, value);
            }
        }
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.field_label(Label::field(name))
    }

    pub fn field_label(&self, label: Label) -> Option<&Value> {
        self.shape
            .field_index(label)
            .and_then(|i| self.fields.get(i))
    }

    /// Looks up a tag by name.
    pub fn tag(&self, name: &str) -> Option<i64> {
        self.tag_label(Label::tag(name))
    }

    pub fn tag_label(&self, label: Label) -> Option<i64> {
        self.shape.tag_index(label).map(|i| self.tags.as_slice()[i])
    }

    /// The tag value in slot `i` of the shape's tag half — for callers
    /// that resolved the slot once per shape (e.g. the indexed-split
    /// dispatcher) instead of re-searching per record.
    pub fn tag_value_at(&self, i: usize) -> i64 {
        self.tags.as_slice()[i]
    }

    /// True when the record carries the label (field or tag).
    pub fn has(&self, label: Label) -> bool {
        self.shape.contains(label)
    }

    /// Removes a label if present; returns whether it was there.
    pub fn remove(&mut self, label: Label) -> bool {
        match label.kind() {
            LabelKind::Field => match self.shape.field_index(label) {
                Some(i) => {
                    self.shape = self.shape.without(label);
                    self.fields.remove(i);
                    true
                }
                None => false,
            },
            LabelKind::Tag => match self.shape.tag_index(label) {
                Some(i) => {
                    self.shape = self.shape.without(label);
                    self.tags.remove(i);
                    true
                }
                None => false,
            },
        }
    }

    /// Iterates field entries in label order.
    pub fn fields(&self) -> impl Iterator<Item = (Label, &Value)> {
        self.shape.fields().iter().copied().zip(self.fields.iter())
    }

    /// Iterates tag entries in label order.
    pub fn tags(&self) -> impl Iterator<Item = (Label, i64)> + '_ {
        self.shape
            .tags()
            .iter()
            .copied()
            .zip(self.tags.iter().copied())
    }

    /// The record's type: its set of labels (allocates — hot paths key
    /// on [`Record::shape`] instead).
    pub fn record_type(&self) -> RecordType {
        self.shape.record_type()
    }

    /// Iterates every label of the record (fields then tags) in the
    /// sorted order [`Record::record_type`] would produce, without
    /// allocating.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        self.shape.labels()
    }

    /// True when the record can enter an input of type `ty`
    /// (record subtyping: `ty ⊆ labels(self)`).
    pub fn matches(&self, ty: &RecordType) -> bool {
        ty.labels().iter().all(|l| self.shape.contains(*l))
    }

    /// Splits the record against an input type: the first component
    /// carries exactly the labels of `ty` (what the box function sees),
    /// the second the *excess* kept by the runtime for flow
    /// inheritance. `None` when the record does not match `ty`.
    ///
    /// Resolves the compiled [`SplitPlan`] for `(shape, ty)` and
    /// applies it; components that process many records against one
    /// fixed type resolve the plan once per shape and call
    /// [`Record::split_with`] directly.
    pub fn split_for(&self, ty: &RecordType) -> Option<(Record, Record)> {
        let plan = self.shape.split_plan(Shape::of_type(ty))?;
        Some(self.split_with(plan))
    }

    /// Applies a compiled split plan (straight value copies by index).
    /// The plan must have been compiled for this record's shape.
    pub fn split_with(&self, plan: &SplitPlan) -> (Record, Record) {
        debug_assert_eq!(plan.source, self.shape, "split plan for a different shape");
        let fields = self.fields.as_slice();
        let tags = self.tags.as_slice();
        let matched = Record {
            shape: plan.matched,
            fields: plan
                .matched_fields
                .iter()
                .map(|&i| fields[i as usize].clone())
                .collect(),
            tags: plan
                .matched_tags
                .iter()
                .map(|&i| tags[i as usize])
                .collect(),
        };
        let excess = Record {
            shape: plan.excess,
            fields: plan
                .excess_fields
                .iter()
                .map(|&i| fields[i as usize].clone())
                .collect(),
            tags: plan.excess_tags.iter().map(|&i| tags[i as usize]).collect(),
        };
        (matched, excess)
    }

    /// The excess half of [`Record::split_for`] alone — what filters
    /// need for flow inheritance (the matched values are read from the
    /// original record).
    pub fn excess_for(&self, ty: &RecordType) -> Option<Record> {
        let plan = self.shape.split_plan(Shape::of_type(ty))?;
        Some(self.excess_with(plan))
    }

    /// Applies only the excess half of a compiled split plan —
    /// for components that resolved the plan once per record shape
    /// (see [`Record::split_with`]).
    pub fn excess_with(&self, plan: &SplitPlan) -> Record {
        debug_assert_eq!(plan.source, self.shape, "split plan for a different shape");
        let fields = self.fields.as_slice();
        let tags = self.tags.as_slice();
        Record {
            shape: plan.excess,
            fields: plan
                .excess_fields
                .iter()
                .map(|&i| fields[i as usize].clone())
                .collect(),
            tags: plan.excess_tags.iter().map(|&i| tags[i as usize]).collect(),
        }
    }

    /// Flow inheritance: extends `self` with every entry of `excess`
    /// whose label is not already present (paper, Section 4: present
    /// labels win, the inherited entry "is discarded"). Applies the
    /// compiled [`crate::shape::InheritPlan`] for the shape pair; the
    /// identity case (nothing to inherit) returns `self` untouched.
    pub fn inherit(self, excess: &Record) -> Record {
        if excess.is_empty() {
            return self;
        }
        let plan = self.shape.inherit_plan(excess.shape);
        if plan.identity {
            return self;
        }
        let own_fields = self.fields.as_slice();
        let exc_fields = excess.fields.as_slice();
        let own_tags = self.tags.as_slice();
        let exc_tags = excess.tags.as_slice();
        Record {
            shape: plan.result,
            fields: plan
                .fields
                .iter()
                .map(|s| {
                    if s.from_excess {
                        exc_fields[s.idx as usize].clone()
                    } else {
                        own_fields[s.idx as usize].clone()
                    }
                })
                .collect(),
            tags: plan
                .tags
                .iter()
                .map(|s| {
                    if s.from_excess {
                        exc_tags[s.idx as usize]
                    } else {
                        own_tags[s.idx as usize]
                    }
                })
                .collect(),
        }
    }

    /// Projects the record onto a set of labels (used by filters: "a
    /// field name occurring in the pattern: it is copied").
    pub fn project(&self, ty: &RecordType) -> Record {
        let mut out = Record::new();
        for (l, v) in self.fields() {
            if ty.contains(l) {
                out.set_field_label(l, v.clone());
            }
        }
        for (l, v) in self.tags() {
            if ty.contains(l) {
                out.set_tag_label(l, v);
            }
        }
        out
    }
}

impl fmt::Debug for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (l, v) in self.fields() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l}={v:?}")?;
        }
        for (l, v) in self.tags() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{l}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Fluent construction of records.
pub struct RecordBuilder(Record);

impl RecordBuilder {
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        self.0.set_field(name, value.into());
        self
    }

    pub fn tag(mut self, name: &str, value: i64) -> Self {
        self.0.set_tag(name, value);
        self
    }

    pub fn finish(self) -> Record {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec_abd() -> Record {
        // The paper's flow-inheritance example input: {a,<b>,d}.
        Record::build()
            .field("a", 1i64)
            .tag("b", 10)
            .field("d", 4i64)
            .finish()
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let mut r = Record::new();
        assert!(r.is_empty());
        r.set_field("x", Value::Int(5));
        r.set_tag("t", 7);
        assert_eq!(r.field("x").unwrap().as_int(), Some(5));
        assert_eq!(r.tag("t"), Some(7));
        assert_eq!(r.len(), 2);
        // Replacement, not duplication.
        r.set_field("x", Value::Int(6));
        assert_eq!(r.field("x").unwrap().as_int(), Some(6));
        assert_eq!(r.len(), 2);
        assert!(r.remove(Label::field("x")));
        assert!(!r.remove(Label::field("x")));
        assert_eq!(r.field("x"), None);
    }

    #[test]
    fn fields_and_tags_are_separate_namespaces() {
        let mut r = Record::new();
        r.set_field("k", Value::Int(1));
        r.set_tag("k", 2);
        assert_eq!(r.field("k").unwrap().as_int(), Some(1));
        assert_eq!(r.tag("k"), Some(2));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires a field label")]
    fn set_field_with_tag_label_panics() {
        let mut r = Record::new();
        r.set_field_label(Label::tag("t"), Value::Int(1));
    }

    #[test]
    fn record_type_collects_all_labels() {
        let r = rec_abd();
        let t = r.record_type();
        assert!(t.contains(Label::field("a")));
        assert!(t.contains(Label::tag("b")));
        assert!(t.contains(Label::field("d")));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn shape_identity_tracks_label_set() {
        let a = rec_abd();
        let b = Record::build()
            .field("d", 9i64)
            .tag("b", 0)
            .field("a", 9i64)
            .finish();
        // Same labels, any construction order: same interned shape.
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.shape().id(), b.shape().id());
        let c = Record::build().field("a", 1i64).finish();
        assert_ne!(a.shape(), c.shape());
    }

    #[test]
    fn matches_is_subtype_acceptance() {
        let r = rec_abd();
        assert!(r.matches(&RecordType::of(&["a"], &["b"])));
        assert!(r.matches(&RecordType::empty()));
        assert!(!r.matches(&RecordType::of(&["a", "z"], &[])));
    }

    #[test]
    fn split_for_partitions_matched_and_excess() {
        // Box foo (a,<b>) receiving {a,<b>,d}: a and <b> are arguments,
        // d is kept by the runtime (paper, Section 4).
        let r = rec_abd();
        let ty = RecordType::of(&["a"], &["b"]);
        let (matched, excess) = r.split_for(&ty).unwrap();
        assert_eq!(matched.record_type(), ty);
        assert_eq!(excess.record_type(), RecordType::of(&["d"], &[]));
        assert_eq!(excess.field("d").unwrap().as_int(), Some(4));
        // Non-matching split yields None.
        assert!(r.split_for(&RecordType::of(&["zz"], &[])).is_none());
    }

    #[test]
    fn excess_for_matches_split_for_excess() {
        let r = rec_abd();
        let ty = RecordType::of(&["a"], &["b"]);
        let (_, excess) = r.split_for(&ty).unwrap();
        assert_eq!(r.excess_for(&ty).unwrap(), excess);
        assert!(r.excess_for(&RecordType::of(&["zz"], &[])).is_none());
    }

    #[test]
    fn inherit_attaches_excess_unless_present() {
        // Output {c} inherits d; output {c,d,<e>} keeps its own d.
        let excess = Record::build().field("d", 4i64).finish();
        let out1 = Record::build().field("c", 9i64).finish().inherit(&excess);
        assert_eq!(out1.field("d").unwrap().as_int(), Some(4));
        let out2 = Record::build()
            .field("c", 9i64)
            .field("d", 99i64)
            .finish()
            .inherit(&excess);
        assert_eq!(out2.field("d").unwrap().as_int(), Some(99));
    }

    #[test]
    fn inherit_covers_tags_too() {
        let excess = Record::build().tag("lvl", 3).finish();
        let out = Record::build().tag("k", 1).finish().inherit(&excess);
        assert_eq!(out.tag("lvl"), Some(3));
        let out2 = Record::build().tag("lvl", 8).finish().inherit(&excess);
        assert_eq!(out2.tag("lvl"), Some(8));
    }

    #[test]
    fn project_copies_only_pattern_labels() {
        let r = rec_abd();
        let p = r.project(&RecordType::of(&["a"], &[]));
        assert_eq!(p.len(), 1);
        assert_eq!(p.field("a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn equality_is_structural() {
        let a = Record::build().field("x", 1i64).tag("t", 2).finish();
        let b = Record::build().tag("t", 2).field("x", 1i64).finish();
        assert_eq!(a, b);
        let c = Record::build().field("x", 1i64).tag("t", 3).finish();
        assert_ne!(a, c);
        // Different shapes short-circuit on the id.
        let d = Record::build().field("y", 1i64).tag("t", 2).finish();
        assert_ne!(a, d);
    }

    #[test]
    fn large_records_spill_and_stay_correct() {
        // Past the inline capacity in both halves: same observable
        // semantics, values stay aligned with sorted labels.
        let mut r = Record::new();
        for i in (0..10i64).rev() {
            r.set_field(&format!("f{i}"), Value::Int(i));
            r.set_tag(&format!("t{i}"), i * 10);
        }
        assert_eq!(r.len(), 20);
        for i in 0..10i64 {
            assert_eq!(r.field(&format!("f{i}")).unwrap().as_int(), Some(i));
            assert_eq!(r.tag(&format!("t{i}")), Some(i * 10));
        }
        let ty = RecordType::of(&["f0", "f5"], &["t3"]);
        let (m, e) = r.split_for(&ty).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(e.len(), 17);
        assert_eq!(m.inherit(&e), r);
        assert!(r.remove(Label::field("f7")));
        assert_eq!(r.len(), 19);
    }

    #[test]
    fn tag_value_at_is_slot_aligned() {
        let r = Record::build().tag("b", 2).tag("a", 1).finish();
        let shape = r.shape();
        let ia = shape.tag_index(Label::tag("a")).unwrap();
        let ib = shape.tag_index(Label::tag("b")).unwrap();
        assert_eq!(r.tag_value_at(ia), 1);
        assert_eq!(r.tag_value_at(ib), 2);
    }

    #[test]
    fn debug_render() {
        let r = Record::build().field("a", 1i64).tag("k", 2).finish();
        let s = format!("{r:?}");
        assert!(s.contains("a=Int(1)"));
        assert!(s.contains("<k>=2"));
    }
}
