//! Field values.
//!
//! Field values come "from the SaC domain" and are "entirely opaque to
//! S-Net" (paper, Section 4): the coordination layer never inspects
//! them, it only moves them between boxes. This enum carries the value
//! shapes the SaC layer of this reproduction produces — scalars and
//! n-dimensional arrays — plus raw bytes and a fully opaque escape
//! hatch for applications with their own payload types.
//!
//! All variants are cheap to clone (arrays are reference-counted), so
//! records can be duplicated by filters without copying payloads.
//!
//! Every non-scalar payload sits behind a **thin** (single-word)
//! pointer, so a `Value` is 16 bytes. This is deliberate: records
//! store values inline (see `record`), records travel by value
//! through stream channel slots and batch buffers, and every byte of
//! `Value` is copied several times per hop — the PR 4 record-size
//! budget keeps a whole 4-field/4-tag record near two cache lines.
//! The price is one extra indirection when *reading* a string, byte
//! buffer or opaque payload, none of which sit on the coordination
//! hot path (the coordination layer never inspects payloads).

use bytes::Bytes;
use sacarray::Array;
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A field value: opaque payload from the computation layer.
#[derive(Clone)]
pub enum Value {
    /// Scalar integer (a rank-0 SaC array).
    Int(i64),
    /// Scalar double.
    Double(f64),
    /// Scalar boolean.
    Bool(bool),
    /// Immutable string (thin: the length lives with the data).
    Str(Arc<String>),
    /// n-dimensional integer array (SaC `int[*]`) — boards, etc.
    IntArray(Arc<Array<i64>>),
    /// n-dimensional boolean array (SaC `bool[*]`) — option cubes, etc.
    BoolArray(Arc<Array<bool>>),
    /// n-dimensional double array (SaC `double[*]`).
    DoubleArray(Arc<Array<f64>>),
    /// Raw bytes (e.g. serialised external payloads).
    Bytes(Bytes),
    /// Anything else; compared by identity (thin: the vtable lives
    /// behind the box).
    Opaque(Arc<Box<dyn Any + Send + Sync>>),
}

impl Value {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn as_int_array(&self) -> Option<&Array<i64>> {
        match self {
            Value::IntArray(a) => Some(a.as_ref()),
            _ => None,
        }
    }

    pub fn as_bool_array(&self) -> Option<&Array<bool>> {
        match self {
            Value::BoolArray(a) => Some(a.as_ref()),
            _ => None,
        }
    }

    pub fn as_double_array(&self) -> Option<&Array<f64>> {
        match self {
            Value::DoubleArray(a) => Some(a.as_ref()),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Downcasts an opaque payload.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        match self {
            Value::Opaque(a) => (**a).downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Wraps an arbitrary payload as an opaque value.
    pub fn opaque<T: Any + Send + Sync>(v: T) -> Value {
        Value::Opaque(Arc::new(Box::new(v)))
    }

    /// A short human-readable description of the value's kind (used by
    /// stream observers; payload contents stay opaque).
    pub fn kind_str(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Double(_) => "double",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::IntArray(_) => "int[*]",
            Value::BoolArray(_) => "bool[*]",
            Value::DoubleArray(_) => "double[*]",
            Value::Bytes(_) => "bytes",
            Value::Opaque(_) => "opaque",
        }
    }
}

impl PartialEq for Value {
    /// Structural equality where the payload supports it; opaque
    /// payloads compare by identity (same allocation).
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::IntArray(a), Value::IntArray(b)) => a == b,
            (Value::BoolArray(a), Value::BoolArray(b)) => a == b,
            (Value::DoubleArray(a), Value::DoubleArray(b)) => {
                a.shape() == b.shape() && a.data() == b.data()
            }
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Opaque(a), Value::Opaque(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "Int({v})"),
            Value::Double(v) => write!(f, "Double({v})"),
            Value::Bool(v) => write!(f, "Bool({v})"),
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::IntArray(a) => write!(f, "IntArray(shape {})", a.shape()),
            Value::BoolArray(a) => write!(f, "BoolArray(shape {})", a.shape()),
            Value::DoubleArray(a) => write!(f, "DoubleArray(shape {})", a.shape()),
            Value::Bytes(b) => write!(f, "Bytes({} bytes)", b.len()),
            Value::Opaque(_) => write!(f, "Opaque(..)"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(Arc::new(v.to_string()))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(Arc::new(v))
    }
}

impl From<Array<i64>> for Value {
    fn from(v: Array<i64>) -> Value {
        Value::IntArray(Arc::new(v))
    }
}

impl From<Array<bool>> for Value {
    fn from(v: Array<bool>) -> Value {
        Value::BoolArray(Arc::new(v))
    }
}

impl From<Array<f64>> for Value {
    fn from(v: Array<f64>) -> Value {
        Value::DoubleArray(Arc::new(v))
    }
}

impl From<Bytes> for Value {
    fn from(v: Bytes) -> Value {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions_and_accessors() {
        assert_eq!(Value::from(42i64).as_int(), Some(42));
        assert_eq!(Value::from(1.5f64).as_double(), Some(1.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::from(42i64).as_bool(), None);
    }

    #[test]
    fn array_values_are_cheap_clones() {
        let a = Array::fill([100, 100], 7i64);
        let v = Value::from(a.clone());
        let w = v.clone();
        match (&v, &w) {
            (Value::IntArray(x), Value::IntArray(y)) => assert!(x.ptr_eq(y)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn equality_is_structural_for_arrays() {
        let a = Value::from(Array::from_vec(vec![1i64, 2, 3]));
        let b = Value::from(Array::from_vec(vec![1i64, 2, 3]));
        assert_eq!(a, b);
        let c = Value::from(Array::from_vec(vec![1i64, 2]));
        assert_ne!(a, c);
    }

    #[test]
    fn opaque_compares_by_identity() {
        #[derive(Debug)]
        struct Payload(#[allow(dead_code)] u32);
        let v = Value::opaque(Payload(1));
        let w = v.clone();
        assert_eq!(v, w);
        let x = Value::opaque(Payload(1));
        assert_ne!(v, x);
        assert_eq!(v.downcast::<Payload>().unwrap().0, 1);
        assert!(v.downcast::<String>().is_none());
    }

    #[test]
    fn cross_variant_equality_is_false() {
        assert_ne!(Value::Int(1), Value::Double(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
    }

    #[test]
    fn kind_str_names() {
        assert_eq!(Value::Int(0).kind_str(), "int");
        assert_eq!(
            Value::from(Array::from_vec(vec![true])).kind_str(),
            "bool[*]"
        );
    }
}
