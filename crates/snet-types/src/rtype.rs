//! Record types and structural subtyping.
//!
//! "The formal foundation of this behaviour is structural subtyping on
//! records: Any record type t1 is a subtype of t2 iff t2 ⊆ t1. This
//! subtyping relationship extends nicely to multivariant types ...: A
//! multivariant type x is a subtype of y if every variant v ∈ x is a
//! subtype of some variant w ∈ y" (paper, Section 4).
//!
//! A [`RecordType`] is a *set of labels* — the paper drops ordering
//! when moving from box signatures to type signatures. A [`MultiType`]
//! is a disjunction of variants, the right-hand side of a signature
//! like `{c} | {c,d,<e>}`.

use crate::label::Label;
use std::fmt;

/// A set of labels: one variant of a record type.
///
/// Stored sorted and deduplicated, so subset tests are linear merges.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct RecordType(Vec<Label>);

impl RecordType {
    /// The empty record type `{}` — every record matches it.
    pub fn empty() -> Self {
        RecordType(Vec::new())
    }

    /// Builds a record type from labels (dedups and sorts).
    pub fn new(mut labels: Vec<Label>) -> Self {
        labels.sort();
        labels.dedup();
        RecordType(labels)
    }

    /// Convenience constructor from field and tag names:
    /// `RecordType::of(&["board", "opts"], &["k"])` is `{board,opts,<k>}`.
    pub fn of(fields: &[&str], tags: &[&str]) -> Self {
        let mut labels: Vec<Label> = fields.iter().map(|f| Label::field(f)).collect();
        labels.extend(tags.iter().map(|t| Label::tag(t)));
        RecordType::new(labels)
    }

    pub fn labels(&self) -> &[Label] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains(&self, label: Label) -> bool {
        self.0.binary_search(&label).is_ok()
    }

    /// Subset test: `self ⊆ other` (linear merge over sorted labels).
    pub fn is_subset(&self, other: &RecordType) -> bool {
        let mut it = other.0.iter();
        'outer: for l in &self.0 {
            for o in it.by_ref() {
                match o.cmp(l) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Record subtyping: a record of type `self` may be used where
    /// `other` is expected iff `other ⊆ self`.
    pub fn is_subtype_of(&self, other: &RecordType) -> bool {
        other.is_subset(self)
    }

    /// Set union.
    pub fn union(&self, other: &RecordType) -> RecordType {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        RecordType::new(v)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &RecordType) -> RecordType {
        RecordType(
            self.0
                .iter()
                .copied()
                .filter(|l| !other.contains(*l))
                .collect(),
        )
    }

    /// Set intersection.
    pub fn intersection(&self, other: &RecordType) -> RecordType {
        RecordType(
            self.0
                .iter()
                .copied()
                .filter(|l| other.contains(*l))
                .collect(),
        )
    }

    /// Adds a label, returning the extended type.
    pub fn with(&self, label: Label) -> RecordType {
        let mut v = self.0.clone();
        v.push(label);
        RecordType::new(v)
    }

    /// Match score for best-match routing (paper, Section 4: "Any
    /// incoming record is directed towards the subnetwork whose input
    /// type better matches the type of the record itself").
    ///
    /// `None` when a record of type `self` cannot enter an input of
    /// type `required` at all; otherwise the number of labels the input
    /// type pins down — a more specific (larger) accepted input type is
    /// the better match.
    pub fn match_score(&self, required: &RecordType) -> Option<usize> {
        if required.is_subset(self) {
            Some(required.len())
        } else {
            None
        }
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromIterator<Label> for RecordType {
    fn from_iter<I: IntoIterator<Item = Label>>(iter: I) -> Self {
        RecordType::new(iter.into_iter().collect())
    }
}

/// A disjunction of record-type variants, e.g. `{c} | {c,d,<e>}`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct MultiType(Vec<RecordType>);

impl MultiType {
    pub fn new(variants: Vec<RecordType>) -> Self {
        let mut v = variants;
        v.dedup();
        MultiType(v)
    }

    pub fn single(variant: RecordType) -> Self {
        MultiType(vec![variant])
    }

    pub fn variants(&self) -> &[RecordType] {
        &self.0
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn push(&mut self, variant: RecordType) {
        if !self.0.contains(&variant) {
            self.0.push(variant);
        }
    }

    /// Multivariant subtyping: every variant of `self` is a subtype of
    /// some variant of `other` (paper, Section 4).
    pub fn is_subtype_of(&self, other: &MultiType) -> bool {
        self.0
            .iter()
            .all(|v| other.0.iter().any(|w| v.is_subtype_of(w)))
    }

    /// Union of variant sets.
    pub fn union(&self, other: &MultiType) -> MultiType {
        let mut v = self.0.clone();
        for w in &other.0 {
            if !v.contains(w) {
                v.push(w.clone());
            }
        }
        MultiType(v)
    }

    /// The best match score a record of type `rt` achieves against any
    /// variant (used when a branch's input is itself multivariant).
    pub fn best_match(&self, rt: &RecordType) -> Option<usize> {
        self.0.iter().filter_map(|v| rt.match_score(v)).max()
    }
}

impl fmt::Display for MultiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for MultiType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(fields: &[&str], tags: &[&str]) -> RecordType {
        RecordType::of(fields, tags)
    }

    #[test]
    fn subset_and_subtype_duality() {
        let small = rt(&["a"], &["b"]);
        let big = rt(&["a", "d"], &["b"]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        // t1 <: t2 iff t2 ⊆ t1 — the *bigger* record is the subtype.
        assert!(big.is_subtype_of(&small));
        assert!(!small.is_subtype_of(&big));
    }

    #[test]
    fn every_type_is_subtype_of_empty() {
        let e = RecordType::empty();
        assert!(rt(&["x"], &[]).is_subtype_of(&e));
        assert!(e.is_subtype_of(&e));
    }

    #[test]
    fn dedup_and_order_insensitivity() {
        let a = RecordType::new(vec![Label::field("x"), Label::tag("t"), Label::field("x")]);
        let b = RecordType::new(vec![Label::tag("t"), Label::field("x")]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn set_operations() {
        let a = rt(&["a", "b"], &["t"]);
        let b = rt(&["b", "c"], &[]);
        assert_eq!(a.union(&b), rt(&["a", "b", "c"], &["t"]));
        assert_eq!(a.difference(&b), rt(&["a"], &["t"]));
        assert_eq!(a.intersection(&b), rt(&["b"], &[]));
        assert_eq!(a.with(Label::field("z")), rt(&["a", "b", "z"], &["t"]));
    }

    #[test]
    fn match_score_prefers_specificity() {
        // The paper's routing rule: a record {a,b,<t>} offered to inputs
        // {a} and {a,b} goes to {a,b} — the better match.
        let rec = rt(&["a", "b"], &["t"]);
        let loose = rt(&["a"], &[]);
        let tight = rt(&["a", "b"], &[]);
        let wrong = rt(&["z"], &[]);
        assert_eq!(rec.match_score(&loose), Some(1));
        assert_eq!(rec.match_score(&tight), Some(2));
        assert_eq!(rec.match_score(&wrong), None);
        assert!(rec.match_score(&tight) > rec.match_score(&loose));
    }

    #[test]
    fn empty_input_type_matches_everything_with_zero_score() {
        let rec = rt(&["a"], &[]);
        assert_eq!(rec.match_score(&RecordType::empty()), Some(0));
    }

    #[test]
    fn multitype_subtyping_paper_shape() {
        // {c} | {c,d,<e>}  <:  {c}   (both variants have at least {c}'s
        // labels... precisely: each variant must be a subtype of some
        // variant of the supertype).
        let x = MultiType::new(vec![rt(&["c"], &[]), rt(&["c", "d"], &["e"])]);
        let y = MultiType::single(rt(&["c"], &[]));
        assert!(x.is_subtype_of(&y));
        assert!(!y.is_subtype_of(&x) || y.is_subtype_of(&x)); // y <: x trivially too ({c} <: {c})
        let z = MultiType::single(rt(&["c", "d"], &[]));
        assert!(!x.is_subtype_of(&z)); // {c} is not a subtype of {c,d}
    }

    #[test]
    fn multitype_union_dedups() {
        let x = MultiType::single(rt(&["a"], &[]));
        let y = MultiType::new(vec![rt(&["a"], &[]), rt(&["b"], &[])]);
        let u = x.union(&y);
        assert_eq!(u.variants().len(), 2);
    }

    #[test]
    fn multitype_best_match() {
        let branch = MultiType::new(vec![rt(&["a"], &[]), rt(&["a", "b"], &[])]);
        assert_eq!(branch.best_match(&rt(&["a", "b", "c"], &[])), Some(2));
        assert_eq!(branch.best_match(&rt(&["a"], &[])), Some(1));
        assert_eq!(branch.best_match(&rt(&["z"], &[])), None);
    }

    #[test]
    fn display_formats() {
        let t = rt(&["board"], &["done"]);
        assert_eq!(t.to_string(), "{board,<done>}");
        let m = MultiType::new(vec![rt(&["c"], &[]), rt(&["c", "d"], &["e"])]);
        assert_eq!(m.to_string(), "{c} | {c,d,<e>}");
    }
}
