//! # snet-types — the S-Net record model and type system
//!
//! S-Net coordinates opaque computational components by routing typed
//! *records* through streaming networks (Grelck, Scholz & Shafarenko,
//! IPPS 2007, Section 4). This crate implements the data model and the
//! structural type theory that routing relies on:
//!
//! * [`Label`] — interned field/tag labels (`board`, `<k>`);
//! * [`Value`] — opaque field payloads from the SaC domain;
//! * [`Record`] — label/value messages, including the record-level
//!   halves of subtype acceptance and **flow inheritance**;
//! * [`Shape`] — interned record shapes (label sets) with compiled
//!   split/inherit plans, making every per-record type operation an
//!   id-keyed lookup plus straight array copies;
//! * [`RecordType`] / [`MultiType`] — label-set types with structural
//!   subtyping (`t1 <: t2 ⟺ t2 ⊆ t1`) and best-match scoring;
//! * [`BoxSig`] / [`NetSig`] — box and network signatures, with static
//!   composition for all four combinators (serial, parallel, serial
//!   replication, indexed parallel replication) performing
//!   requirement propagation through flow inheritance.
//!
//! The execution engine lives in `snet-runtime`; the surface syntax in
//! `snet-lang`. This crate is pure data — no threads, no channels —
//! which is what makes the type-level properties property-testable.

pub mod fxmap;
pub mod intern;
pub mod label;
pub mod record;
pub mod rtype;
pub mod shape;
pub mod sig;
pub mod svec;
pub mod value;

pub use fxmap::{FxHasher, FxMap};
pub use intern::StringInterner;
pub use label::{Label, LabelKind};
pub use record::{Record, RecordBuilder, INLINE_SLOTS};
pub use rtype::{MultiType, RecordType};
pub use shape::{interned_shapes, InheritPlan, Shape, SplitPlan};
pub use sig::{parallel, serial, split, star, BoxSig, Mapping, NetSig, OutVariant, TypeError};
pub use value::Value;
