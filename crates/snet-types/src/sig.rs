//! Type signatures and signature composition.
//!
//! A box signature "naturally induces a type signature": the ordered
//! parameter tuple becomes a set-of-labels input type, the outputs a
//! multivariant output type (paper, Section 4). Networks have inferred
//! signatures; "type inference algorithms developed for S-Net take
//! full account of subtyping and flow inheritance, which can be dealt
//! with statically".
//!
//! This module implements that static inference as *requirement
//! propagation over concrete label sets*:
//!
//! * every network signature is a set of [`Mapping`]s — an input
//!   variant together with the output variants records of that input
//!   may turn into;
//! * each output variant tracks the concrete labels it is known to
//!   carry **after** flow inheritance, plus an `inherits` flag saying
//!   whether further unknown labels of the original input record (the
//!   "row") may also be present;
//! * serial composition checks every upstream output variant against
//!   the downstream input variants. If none accepts, but the upstream
//!   variant still inherits its row, the missing labels are *pushed
//!   back* into the composite's input type — they must then arrive on
//!   the outer input record and reach the downstream component by flow
//!   inheritance. This is exactly how the paper's Figure 2 network
//!   types: the `[{} -> {<k>=1}]` filter declares only `{<k>}`, yet
//!   `solveOneLevel`'s `{board, opts}` input is satisfied because both
//!   fields flow through the filter.
//!
//! The inference is conservative where the paper's full algorithm is
//! richer (we do not track per-variant row *identities*, so a
//! requirement discovered on one output variant is added to the whole
//! mapping input), but it accepts all networks of the paper and rejects
//! genuinely ill-typed compositions.

use crate::label::Label;
use crate::rtype::{MultiType, RecordType};
use std::fmt;

/// An output variant: concretely known labels plus whether the unknown
/// remainder ("row") of the input record still flow-inherits onto it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OutVariant {
    pub labels: RecordType,
    pub inherits: bool,
}

impl OutVariant {
    pub fn new(labels: RecordType) -> Self {
        OutVariant {
            labels,
            inherits: true,
        }
    }
}

/// One input variant and the output variants it can produce.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mapping {
    pub input: RecordType,
    pub outputs: Vec<OutVariant>,
}

/// A network type signature: a disjunction of mappings.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetSig {
    pub maps: Vec<Mapping>,
}

/// A box signature as *declared*: the ordered parameter list matters
/// for calling the box function ("a concrete sequence of fields and
/// tags is essential for the proper specification of the box
/// interface"), the induced [`NetSig`] drops the order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoxSig {
    /// Parameters in declaration order, e.g. `(a, <b>)`.
    pub params: Vec<Label>,
    /// Output variants in declaration order; each variant is an ordered
    /// label list for `snet_out` argument mapping.
    pub outputs: Vec<Vec<Label>>,
}

impl BoxSig {
    pub fn new(params: Vec<Label>, outputs: Vec<Vec<Label>>) -> Self {
        BoxSig { params, outputs }
    }

    /// The induced type signature (sets of labels, flow inheritance on).
    pub fn net_sig(&self) -> NetSig {
        NetSig {
            maps: vec![Mapping {
                input: self.params.iter().copied().collect(),
                outputs: self
                    .outputs
                    .iter()
                    .map(|v| OutVariant::new(v.iter().copied().collect()))
                    .collect(),
            }],
        }
    }

    /// The input type as a label set.
    pub fn input_type(&self) -> RecordType {
        self.params.iter().copied().collect()
    }

    /// The output type as a multitype.
    pub fn output_type(&self) -> MultiType {
        MultiType::new(
            self.outputs
                .iter()
                .map(|v| v.iter().copied().collect())
                .collect(),
        )
    }
}

/// A static composition error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

impl NetSig {
    /// A signature with a single mapping.
    pub fn simple(input: RecordType, outputs: Vec<RecordType>) -> NetSig {
        NetSig {
            maps: vec![Mapping {
                input,
                outputs: outputs.into_iter().map(OutVariant::new).collect(),
            }],
        }
    }

    /// The identity signature on a given type (used for pass-through
    /// paths such as the exit tap of a serial replicator).
    pub fn identity(ty: RecordType) -> NetSig {
        NetSig {
            maps: vec![Mapping {
                input: ty.clone(),
                outputs: vec![OutVariant::new(ty)],
            }],
        }
    }

    /// Input variants as a multitype (what routing sees).
    pub fn input_type(&self) -> MultiType {
        MultiType::new(self.maps.iter().map(|m| m.input.clone()).collect())
    }

    /// Output variants as a multitype, flattened over mappings.
    pub fn output_type(&self) -> MultiType {
        let mut mt = MultiType::default();
        for m in &self.maps {
            for o in &m.outputs {
                mt.push(o.labels.clone());
            }
        }
        mt
    }

    /// Best-match score of a record type against this network's inputs
    /// (paper: records go "towards the subnetwork whose input type
    /// better matches the type of the record itself").
    pub fn match_score(&self, rt: &RecordType) -> Option<usize> {
        self.maps
            .iter()
            .filter_map(|m| rt.match_score(&m.input))
            .max()
    }

    fn push_mapping(&mut self, m: Mapping) {
        if !self.maps.contains(&m) {
            self.maps.push(m);
        }
    }
}

/// Result of finding the downstream mapping that accepts a record of
/// (at least) the given concrete labels.
fn best_accepting<'a>(
    concrete: &RecordType,
    downstream: &'a NetSig,
) -> Option<(&'a Mapping, usize)> {
    downstream
        .maps
        .iter()
        .filter_map(|m| concrete.match_score(&m.input).map(|s| (m, s)))
        .max_by_key(|(_, s)| *s)
}

/// Downstream mapping needing the fewest extra labels; used for
/// requirement propagation when nothing accepts outright.
fn least_missing<'a>(
    concrete: &RecordType,
    downstream: &'a NetSig,
) -> Option<(&'a Mapping, RecordType)> {
    downstream
        .maps
        .iter()
        .map(|m| (m, m.input.difference(concrete)))
        .min_by_key(|(_, need)| need.len())
}

/// Applies one downstream mapping to a concrete upstream output
/// variant, producing the composed output variants (flow inheritance
/// re-attaches `concrete \ mb.input` when the downstream output
/// inherits).
fn apply_mapping(concrete: &RecordType, inherits: bool, mb: &Mapping) -> Vec<OutVariant> {
    let excess = concrete.difference(&mb.input);
    mb.outputs
        .iter()
        .map(|ob| {
            let labels = if ob.inherits {
                ob.labels.union(&excess)
            } else {
                ob.labels.clone()
            };
            OutVariant {
                labels,
                inherits: ob.inherits && inherits,
            }
        })
        .collect()
}

/// Serial composition `A .. B`.
///
/// For every mapping of `A` and every output variant it may produce,
/// find the best-matching input of `B`; when none matches and the
/// variant still inherits its row, the missing labels become additional
/// requirements on the composite's input (they will reach `B` via flow
/// inheritance). Fails when an output variant can never be accepted.
pub fn serial(a: &NetSig, b: &NetSig) -> Result<NetSig, TypeError> {
    if b.maps.is_empty() {
        return Err(TypeError("serial composition with an empty network".into()));
    }
    let mut result = NetSig::default();
    for ma in &a.maps {
        let mut input = ma.input.clone();
        let mut outs: Vec<OutVariant> = Vec::new();
        for oa in &ma.outputs {
            let mut concrete = oa.labels.clone();
            let accepted = best_accepting(&concrete, b).map(|(m, _)| m.clone());
            let mb = match accepted {
                Some(mb) => mb,
                None => {
                    if !oa.inherits {
                        return Err(TypeError(format!(
                            "output variant {} cannot enter downstream network expecting {}",
                            oa.labels,
                            b.input_type()
                        )));
                    }
                    let (mb, need) = least_missing(&concrete, b).expect("b has mappings");
                    // Labels consumed by A's input cannot be resupplied
                    // by flow inheritance — they never reach A's output.
                    let blocked = need.intersection(&ma.input);
                    if !blocked.is_empty() {
                        return Err(TypeError(format!(
                            "labels {blocked} are consumed upstream and cannot flow-inherit to \
                             satisfy downstream input {}",
                            mb.input
                        )));
                    }
                    input = input.union(&need);
                    concrete = concrete.union(&need);
                    mb.clone()
                }
            };
            for ov in apply_mapping(&concrete, oa.inherits, &mb) {
                if !outs.contains(&ov) {
                    outs.push(ov);
                }
            }
        }
        result.push_mapping(Mapping {
            input,
            outputs: outs,
        });
    }
    Ok(result)
}

/// Parallel composition `A || B` (and its deterministic sibling): the
/// union of the operands' mappings; routing picks per record.
pub fn parallel(a: &NetSig, b: &NetSig) -> NetSig {
    let mut result = a.clone();
    for m in &b.maps {
        result.push_mapping(m.clone());
    }
    result
}

/// Indexed parallel replication `A !! <tag>`: replicas have A's type
/// but every record must additionally carry the routing tag, which is
/// not consumed and flow-inherits through.
pub fn split(a: &NetSig, tag: Label) -> NetSig {
    NetSig {
        maps: a
            .maps
            .iter()
            .map(|m| {
                let consumed = m.input.contains(tag);
                Mapping {
                    input: m.input.with(tag),
                    outputs: m
                        .outputs
                        .iter()
                        .map(|o| {
                            let labels = if o.inherits && !consumed {
                                o.labels.with(tag)
                            } else {
                                o.labels.clone()
                            };
                            OutVariant {
                                labels,
                                inherits: o.inherits,
                            }
                        })
                        .collect(),
                }
            })
            .collect(),
    }
}

/// Serial replication `A ** {exit}`: the chain is tapped before every
/// replica; records matching the exit pattern leave. Statically we
/// close A's signature under self-composition (records may traverse
/// any number of replicas) and keep the variants that can match the
/// exit pattern, plus the immediate pass-through.
///
/// `MAX_UNFOLD` bounds the fixpoint iteration; the variant set almost
/// always stabilises after one or two rounds because label sets only
/// grow under flow inheritance.
pub fn star(a: &NetSig, exit: &RecordType) -> Result<NetSig, TypeError> {
    const MAX_UNFOLD: usize = 16;
    // Pass-through mapping: records that already match the exit leave
    // untouched.
    let mut result = NetSig::identity(exit.clone());

    // Reachable output variants of repeated traversal, per entry mapping.
    for ma in &a.maps {
        let mut input = ma.input.clone();
        let mut frontier: Vec<OutVariant> = ma.outputs.clone();
        let mut seen: Vec<OutVariant> = frontier.clone();
        for _round in 0..MAX_UNFOLD {
            let mut next: Vec<OutVariant> = Vec::new();
            for ov in &frontier {
                // A variant matching the exit pattern leaves the star;
                // one that doesn't re-enters a replica of A.
                if ov.labels.match_score(exit).is_some() {
                    continue;
                }
                let mut concrete = ov.labels.clone();
                let mb = match best_accepting(&concrete, a) {
                    Some((m, _)) => m.clone(),
                    None => {
                        if !ov.inherits {
                            return Err(TypeError(format!(
                                "variant {} circulating in serial replication cannot re-enter \
                                 the replicated network (input {})",
                                ov.labels,
                                a.input_type()
                            )));
                        }
                        let (mb, need) = least_missing(&concrete, a)
                            .ok_or_else(|| TypeError("empty replicated network".into()))?;
                        let blocked = need.intersection(&ma.input);
                        if !blocked.is_empty() {
                            return Err(TypeError(format!(
                                "labels {blocked} consumed by the replicated network cannot \
                                 flow-inherit on re-entry"
                            )));
                        }
                        input = input.union(&need);
                        concrete = concrete.union(&need);
                        mb.clone()
                    }
                };
                for nv in apply_mapping(&concrete, ov.inherits, &mb) {
                    if !seen.contains(&nv) {
                        seen.push(nv.clone());
                        next.push(nv);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        // Exit variants: anything reachable that can match the pattern.
        // Variants with an open row *may* match at runtime once
        // inherited labels arrive; conservatively keep concrete matches
        // only — the paper's examples all exit on concretely produced
        // tags (<done>, <level>).
        let outs: Vec<OutVariant> = seen
            .iter()
            .filter(|ov| ov.labels.match_score(exit).is_some())
            .cloned()
            .collect();
        if outs.is_empty() {
            return Err(TypeError(format!(
                "serial replication never produces a record matching exit pattern {exit}"
            )));
        }
        result.push_mapping(Mapping {
            input,
            outputs: outs,
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(fields: &[&str], tags: &[&str]) -> RecordType {
        RecordType::of(fields, tags)
    }

    /// The paper's example box: `box foo (a,<b>) -> (c) | (c,d,<e>)`.
    fn foo_sig() -> BoxSig {
        BoxSig::new(
            vec![Label::field("a"), Label::tag("b")],
            vec![
                vec![Label::field("c")],
                vec![Label::field("c"), Label::field("d"), Label::tag("e")],
            ],
        )
    }

    #[test]
    fn box_sig_induces_type_signature() {
        let s = foo_sig().net_sig();
        assert_eq!(s.maps.len(), 1);
        assert_eq!(s.maps[0].input, rt(&["a"], &["b"]));
        assert_eq!(s.maps[0].outputs.len(), 2);
        assert_eq!(s.output_type().to_string(), "{c} | {c,d,<e>}");
    }

    #[test]
    fn serial_direct_match() {
        // {a} -> {b}  ..  {b} -> {c}   ==>  {a} -> {c,...}
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["b"], &[])]);
        let b = NetSig::simple(rt(&["b"], &[]), vec![rt(&["c"], &[])]);
        let s = serial(&a, &b).unwrap();
        assert_eq!(s.maps.len(), 1);
        assert_eq!(s.maps[0].input, rt(&["a"], &[]));
        assert_eq!(s.maps[0].outputs[0].labels, rt(&["c"], &[]));
    }

    #[test]
    fn serial_flow_inheritance_carries_excess() {
        // {a} -> {a, x}  ..  {a} -> {y}: x is excess for the second
        // component and must appear on its output.
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["a", "x"], &[])]);
        let b = NetSig::simple(rt(&["a"], &[]), vec![rt(&["y"], &[])]);
        let s = serial(&a, &b).unwrap();
        assert_eq!(s.maps[0].outputs[0].labels, rt(&["x", "y"], &[]));
    }

    #[test]
    fn serial_requirement_propagation_fig2_filter() {
        // The Figure 2 situation: computeOpts {board}->{board,opts},
        // then filter {}->{<k>}, then a consumer needing {board,opts}.
        let compute = NetSig::simple(rt(&["board"], &[]), vec![rt(&["board", "opts"], &[])]);
        let filter = NetSig::simple(RecordType::empty(), vec![rt(&[], &["k"])]);
        let solver = NetSig::simple(
            rt(&["board", "opts"], &[]),
            vec![rt(&["board", "opts"], &["k"])],
        );
        let s1 = serial(&compute, &filter).unwrap();
        // After the filter, board/opts are present via flow inheritance.
        assert_eq!(s1.maps[0].outputs[0].labels, rt(&["board", "opts"], &["k"]));
        let s2 = serial(&s1, &solver).unwrap();
        assert_eq!(s2.maps[0].input, rt(&["board"], &[]));
        assert_eq!(s2.maps[0].outputs[0].labels, rt(&["board", "opts"], &["k"]));
    }

    #[test]
    fn serial_pushes_requirements_to_composite_input() {
        // {a}->{a} .. needs {a,extra}: extra must come in from outside.
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["a"], &[])]);
        let b = NetSig::simple(rt(&["a", "extra"], &[]), vec![rt(&["z"], &[])]);
        let s = serial(&a, &b).unwrap();
        assert_eq!(s.maps[0].input, rt(&["a", "extra"], &[]));
    }

    #[test]
    fn serial_rejects_consumed_labels() {
        // A consumes `x` (it is in A's input but not its output);
        // downstream needs it — impossible.
        let a = NetSig::simple(rt(&["x"], &[]), vec![rt(&["y"], &[])]);
        let b = NetSig::simple(rt(&["x"], &[]), vec![rt(&["z"], &[])]);
        assert!(serial(&a, &b).is_err());
    }

    #[test]
    fn serial_rejects_non_inheriting_mismatch() {
        let mut a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["y"], &[])]);
        a.maps[0].outputs[0].inherits = false;
        let b = NetSig::simple(rt(&["q"], &[]), vec![rt(&["z"], &[])]);
        assert!(serial(&a, &b).is_err());
    }

    #[test]
    fn parallel_unions_mappings() {
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["x"], &[])]);
        let b = NetSig::simple(rt(&["b"], &[]), vec![rt(&["y"], &[])]);
        let p = parallel(&a, &b);
        assert_eq!(p.maps.len(), 2);
        // Best-match routing scores.
        assert_eq!(p.match_score(&rt(&["a"], &[])), Some(1));
        assert_eq!(p.match_score(&rt(&["a", "b"], &[])), Some(1));
        assert_eq!(p.match_score(&rt(&["c"], &[])), None);
    }

    #[test]
    fn split_requires_and_propagates_tag() {
        let a = NetSig::simple(rt(&["board"], &[]), vec![rt(&["board"], &[])]);
        let s = split(&a, Label::tag("k"));
        assert_eq!(s.maps[0].input, rt(&["board"], &["k"]));
        // The tag is not consumed: it flow-inherits onto the output.
        assert_eq!(s.maps[0].outputs[0].labels, rt(&["board"], &["k"]));
    }

    #[test]
    fn split_consumed_tag_does_not_reappear() {
        // If the replicated network consumes <k>, splitting on <k> must
        // not pretend it survives.
        let a = NetSig::simple(rt(&["b"], &["k"]), vec![rt(&["b"], &[])]);
        let s = split(&a, Label::tag("k"));
        assert_eq!(s.maps[0].input, rt(&["b"], &["k"]));
        assert_eq!(s.maps[0].outputs[0].labels, rt(&["b"], &[]));
    }

    #[test]
    fn star_fig1_shape() {
        // solveOneLevel: {board,opts} -> {board,opts} | {board,<done>},
        // replicated with exit pattern {<done>}.
        let solve = NetSig::simple(
            rt(&["board", "opts"], &[]),
            vec![rt(&["board", "opts"], &[]), rt(&["board"], &["done"])],
        );
        let s = star(&solve, &rt(&[], &["done"])).unwrap();
        // Pass-through mapping plus the solver mapping.
        assert_eq!(s.maps.len(), 2);
        // The non-trivial mapping outputs only the <done> variant.
        let m = &s.maps[1];
        assert_eq!(m.input, rt(&["board", "opts"], &[]));
        assert_eq!(m.outputs.len(), 1);
        assert!(m.outputs[0].labels.contains(Label::tag("done")));
    }

    #[test]
    fn star_rejects_never_exiting_network() {
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["a"], &[])]);
        let mut a = a;
        a.maps[0].outputs[0].inherits = false;
        assert!(star(&a, &rt(&[], &["done"])).is_err());
    }

    #[test]
    fn star_inheriting_loop_requirement() {
        // A: {a} -> {b}; exit {<e>}: b cannot re-enter (needs a), but a
        // can flow-inherit... no — `a` is consumed by A. Must error.
        let a = NetSig::simple(rt(&["a"], &[]), vec![rt(&["b"], &[])]);
        assert!(star(&a, &rt(&[], &["e"])).is_err());
    }

    #[test]
    fn identity_sig_passthrough() {
        let ty = rt(&["x"], &["t"]);
        let id = NetSig::identity(ty.clone());
        assert_eq!(id.maps[0].input, ty);
        assert_eq!(id.maps[0].outputs[0].labels, ty);
    }

    #[test]
    fn type_error_display() {
        let e = TypeError("boom".into());
        assert_eq!(e.to_string(), "type error: boom");
    }
}
