//! An inline small vector for record value storage.
//!
//! Records carry their values (field payloads, tag integers) in
//! [`SVec`]s: up to `N` elements live inline in the record itself, so
//! constructing, cloning, splitting and flow-inheriting a record with
//! at most `N` fields and `N` tags performs **no heap allocation** —
//! the allocation-free-hot-path invariant PR 4's counting-allocator
//! test pins. Larger records spill to an ordinary `Vec` and stay
//! spilled (records only ever hold a handful of labels in practice;
//! the spill path exists for correctness, not speed).
//!
//! The surface is the tiny subset `Record` needs: sorted-position
//! `insert`/`remove`, slice views, `push`. It is deliberately not a
//! general-purpose container.

use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;

/// A vector storing up to `N` elements inline, spilling to the heap
/// beyond that.
pub enum SVec<T, const N: usize> {
    /// Inline storage: the first `len` slots of `buf` are initialized.
    Inline { len: u8, buf: [MaybeUninit<T>; N] },
    /// Spilled storage.
    Heap(Vec<T>),
}

impl<T, const N: usize> SVec<T, N> {
    pub fn new() -> SVec<T, N> {
        SVec::Inline {
            len: 0,
            buf: [const { MaybeUninit::uninit() }; N],
        }
    }

    pub fn len(&self) -> usize {
        match self {
            SVec::Inline { len, .. } => *len as usize,
            SVec::Heap(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True while the elements live inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self, SVec::Inline { .. })
    }

    pub fn as_slice(&self) -> &[T] {
        match self {
            SVec::Inline { len, buf } => {
                // SAFETY: the first `len` slots are initialized (struct
                // invariant maintained by every mutation below).
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len as usize) }
            }
            SVec::Heap(v) => v.as_slice(),
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self {
            SVec::Inline { len, buf } => {
                // SAFETY: as in `as_slice`.
                unsafe {
                    std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len as usize)
                }
            }
            SVec::Heap(v) => v.as_mut_slice(),
        }
    }

    pub fn get(&self, i: usize) -> Option<&T> {
        self.as_slice().get(i)
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Moves the inline elements to the heap. No-op when already
    /// spilled.
    fn spill(&mut self) {
        if let SVec::Inline { len, buf } = self {
            let n = *len as usize;
            let mut v = Vec::with_capacity(n + 1);
            // SAFETY: the first `n` slots are initialized; after the
            // reads, `len = 0` marks them logically moved-out so the
            // Drop impl cannot double-drop (the reads cannot panic).
            for slot in buf.iter().take(n) {
                v.push(unsafe { slot.assume_init_read() });
            }
            *len = 0;
            *self = SVec::Heap(v);
        }
    }

    pub fn push(&mut self, value: T) {
        match self {
            SVec::Inline { len, buf } if (*len as usize) < N => {
                buf[*len as usize].write(value);
                *len += 1;
            }
            SVec::Inline { .. } => {
                self.spill();
                self.push(value);
            }
            SVec::Heap(v) => v.push(value),
        }
    }

    /// Inserts at position `i`, shifting the tail right.
    pub fn insert(&mut self, i: usize, value: T) {
        match self {
            SVec::Inline { len, buf } if (*len as usize) < N => {
                let n = *len as usize;
                assert!(i <= n, "insert index {i} out of bounds (len {n})");
                // SAFETY: slots i..n are initialized; shifting them one
                // to the right leaves exactly slot i logically
                // uninitialized, which `write` then fills. Bumping
                // `len` afterwards restores the invariant.
                unsafe {
                    let p = buf.as_mut_ptr().cast::<T>();
                    ptr::copy(p.add(i), p.add(i + 1), n - i);
                }
                buf[i].write(value);
                *len += 1;
            }
            SVec::Inline { .. } => {
                self.spill();
                self.insert(i, value);
            }
            SVec::Heap(v) => v.insert(i, value),
        }
    }

    /// Removes and returns the element at position `i`, shifting the
    /// tail left.
    pub fn remove(&mut self, i: usize) -> T {
        match self {
            SVec::Inline { len, buf } => {
                let n = *len as usize;
                assert!(i < n, "remove index {i} out of bounds (len {n})");
                // SAFETY: slot i is initialized; after the read it is
                // logically moved out, and the shift re-packs i+1..n
                // over it. Decrementing `len` drops the (now
                // duplicated) last slot from the initialized range.
                unsafe {
                    let p = buf.as_mut_ptr().cast::<T>();
                    let value = p.add(i).read();
                    ptr::copy(p.add(i + 1), p.add(i), n - i - 1);
                    *len -= 1;
                    value
                }
            }
            SVec::Heap(v) => v.remove(i),
        }
    }
}

impl<T, const N: usize> Default for SVec<T, N> {
    fn default() -> Self {
        SVec::new()
    }
}

impl<T, const N: usize> Drop for SVec<T, N> {
    fn drop(&mut self) {
        if let SVec::Inline { len, buf } = self {
            let n = *len as usize;
            // SAFETY: the first `n` slots are initialized and dropped
            // exactly once here.
            unsafe {
                ptr::drop_in_place(ptr::slice_from_raw_parts_mut(
                    buf.as_mut_ptr().cast::<T>(),
                    n,
                ));
            }
        }
        // Heap: the Vec drops itself.
    }
}

impl<T: Clone, const N: usize> Clone for SVec<T, N> {
    fn clone(&self) -> Self {
        let mut out = SVec::new();
        for v in self.iter() {
            out.push(v.clone());
        }
        out
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T, const N: usize> FromIterator<T> for SVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

// SAFETY: an SVec owns its elements exactly like a Vec does; the raw
// buffer introduces no sharing.
unsafe impl<T: Send, const N: usize> Send for SVec<T, N> {}
unsafe impl<T: Sync, const N: usize> Sync for SVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn push_insert_remove_inline() {
        let mut v: SVec<i64, 4> = SVec::new();
        assert!(v.is_empty() && v.is_inline());
        v.push(10);
        v.push(30);
        v.insert(1, 20);
        assert_eq!(v.as_slice(), &[10, 20, 30]);
        assert_eq!(v.remove(0), 10);
        assert_eq!(v.as_slice(), &[20, 30]);
        assert!(v.is_inline());
        v.as_mut_slice()[0] = 99;
        assert_eq!(v.get(0), Some(&99));
    }

    #[test]
    fn spills_beyond_capacity_and_keeps_order() {
        let mut v: SVec<i64, 4> = SVec::new();
        for i in 0..10 {
            v.insert(v.len(), i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(v.remove(5), 5);
        v.insert(0, -1);
        assert_eq!(v.len(), 10);
        assert_eq!(v.as_slice()[0], -1);
    }

    #[test]
    fn insert_at_capacity_boundary_spills() {
        let mut v: SVec<i64, 2> = SVec::new();
        v.push(1);
        v.push(3);
        v.insert(1, 2); // full inline -> spill -> insert
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn clone_is_deep_and_inline_when_small() {
        let mut v: SVec<String, 4> = SVec::new();
        v.push("a".into());
        v.push("b".into());
        let w = v.clone();
        assert_eq!(v, w);
        assert!(w.is_inline());
    }

    #[test]
    fn drops_every_element_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] Arc<()>);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        DROPS.store(0, Ordering::SeqCst);
        {
            let mut v: SVec<D, 4> = SVec::new();
            let token = Arc::new(());
            for _ in 0..3 {
                v.push(D(Arc::clone(&token)));
            }
            drop(v.remove(1)); // one dropped here
            assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        } // remaining two dropped with the SVec
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);

        DROPS.store(0, Ordering::SeqCst);
        {
            let mut v: SVec<D, 2> = SVec::new();
            let token = Arc::new(());
            for _ in 0..5 {
                v.push(D(Arc::clone(&token))); // spills at 3
            }
            assert!(!v.is_inline());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn remove_out_of_bounds_panics() {
        let mut v: SVec<i64, 4> = SVec::new();
        v.push(1);
        v.remove(1);
    }
}
