//! A tiny multiply-fold hasher for the runtime's small integer keys.
//!
//! The shape tables and type memos key on interned ids (`u32` shape
//! ids, `(u32, u32)` shape pairs, `(u32, Label)` transitions). The
//! standard library's default SipHash is DoS-hardened — pointless for
//! keys drawn from bounded interner-assigned universes — and costs
//! tens of nanoseconds per lookup, which is material when the lookup
//! *is* the hot-path operation the memo exists to make cheap. This is
//! the classic FxHash fold: one wrapping multiply per word.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-multiply-per-word hasher for interned-id keys.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// A `HashMap` over interned-id keys with the fold hasher.
pub type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_and_distribution() {
        let mut m: FxMap<(u32, u32), u32> = FxMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn sequential_ids_spread() {
        // The multiply must spread dense ids across the u64 space so
        // bucket collisions stay near uniform.
        let mut hs: Vec<u64> = (0..64u32)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        hs.sort_unstable();
        hs.dedup();
        assert_eq!(hs.len(), 64);
    }
}
