//! Stateless n-dimensional arrays.
//!
//! SaC arrays "are neither explicitly allocated nor de-allocated. They
//! exist as long as the associated data is needed, just like scalars"
//! (paper, Section 2). We model this with value semantics over
//! reference-counted storage: cloning an [`Array`] is O(1); mutation
//! (e.g. by a `modarray` with-loop) copies only when the storage is
//! shared — the same avoid-copy optimisation SaC's reference-counting
//! runtime performs.

use crate::error::{ArrayError, Result};
use crate::shape::Shape;
use std::fmt;
use std::sync::Arc;

/// An immutable n-dimensional array with shape-generic rank, mirroring
/// SaC's `T[*]` type class.
///
/// `Array<T>` is `Send + Sync` whenever `T` is, which is what lets S-Net
/// streams carry arrays between box threads without copies.
#[derive(Clone)]
pub struct Array<T> {
    shape: Shape,
    data: Arc<Vec<T>>,
}

impl<T: Clone> Array<T> {
    /// Builds an array from a shape and row-major data.
    pub fn new(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.size() {
            return Err(ArrayError::DataLengthMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Array {
            shape,
            data: Arc::new(data),
        })
    }

    /// A rank-0 array holding a single value (SaC scalars are rank-0
    /// arrays with an empty shape vector).
    pub fn scalar(v: T) -> Self {
        Array {
            shape: Shape::scalar(),
            data: Arc::new(vec![v]),
        }
    }

    /// A rank-1 array from a Vec.
    pub fn from_vec(v: Vec<T>) -> Self {
        Array {
            shape: Shape::vector(v.len()),
            data: Arc::new(v),
        }
    }

    /// An array of the given shape with every element set to `v`.
    pub fn fill(shape: impl Into<Shape>, v: T) -> Self {
        let shape = shape.into();
        let n = shape.size();
        Array {
            shape,
            data: Arc::new(vec![v; n]),
        }
    }

    /// `dim(a)` in SaC: the rank.
    pub fn dim(&self) -> usize {
        self.shape.rank()
    }

    /// `shape(a)` in SaC.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total element count.
    pub fn size(&self) -> usize {
        self.shape.size()
    }

    /// Row-major view of the data.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Element selection with a full index vector: `a[idx]`.
    pub fn sel(&self, idx: &[usize]) -> Result<&T> {
        let lin = self
            .shape
            .linearize(idx)
            .ok_or_else(|| ArrayError::IndexOutOfBounds {
                shape: self.shape.clone(),
                index: idx.to_vec(),
            })?;
        Ok(&self.data[lin])
    }

    /// Like [`Array::sel`] but panics on bad indices; convenient inside
    /// with-loop bodies where bounds are guaranteed by the generator.
    pub fn at(&self, idx: &[usize]) -> &T {
        self.sel(idx)
            .unwrap_or_else(|e| panic!("array selection failed: {e}"))
    }

    /// Subarray selection with a prefix index vector, SaC's
    /// `a[iv]` where `len(iv) < dim(a)`: selecting row `i` of a matrix
    /// yields a vector.
    pub fn sel_subarray(&self, idx: &[usize]) -> Result<Array<T>> {
        let (start, span) =
            self.shape
                .linearize_prefix(idx)
                .ok_or_else(|| ArrayError::IndexOutOfBounds {
                    shape: self.shape.clone(),
                    index: idx.to_vec(),
                })?;
        Ok(Array {
            shape: self.shape.suffix_shape(idx.len()),
            data: Arc::new(self.data[start..start + span].to_vec()),
        })
    }

    /// The scalar value of a rank-0 array.
    pub fn unwrap_scalar(&self) -> Result<T> {
        if self.shape.rank() != 0 {
            return Err(ArrayError::ShapeMismatch {
                expected: Shape::scalar(),
                actual: self.shape.clone(),
            });
        }
        Ok(self.data[0].clone())
    }

    /// Functional single-element update: returns a new array equal to
    /// `self` except at `idx`. Copies only if the storage is shared
    /// (SaC-style reference-count-one in-place update).
    pub fn with_elem(mut self, idx: &[usize], v: T) -> Result<Self> {
        let lin = self
            .shape
            .linearize(idx)
            .ok_or_else(|| ArrayError::IndexOutOfBounds {
                shape: self.shape.clone(),
                index: idx.to_vec(),
            })?;
        Arc::make_mut(&mut self.data)[lin] = v;
        Ok(self)
    }

    /// Interprets the array as mutable storage for with-loop evaluation,
    /// copying if shared. Internal to the crate.
    pub(crate) fn make_mut(&mut self) -> &mut [T] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Rectangular slice: the subarray with indices in
    /// `lower <= iv < upper` (SaC's selection on index ranges). The
    /// result's shape is `upper - lower` per axis.
    pub fn slice(&self, lower: &[usize], upper: &[usize]) -> Result<Array<T>> {
        if lower.len() != self.shape.rank() || upper.len() != self.shape.rank() {
            return Err(ArrayError::IndexOutOfBounds {
                shape: self.shape.clone(),
                index: lower.to_vec(),
            });
        }
        for axis in 0..lower.len() {
            if lower[axis] > upper[axis] || upper[axis] > self.shape.extent(axis) {
                return Err(ArrayError::IndexOutOfBounds {
                    shape: self.shape.clone(),
                    index: upper.to_vec(),
                });
            }
        }
        let out_shape = Shape::new(
            lower
                .iter()
                .zip(upper.iter())
                .map(|(&l, &u)| u - l)
                .collect(),
        );
        let mut data = Vec::with_capacity(out_shape.size());
        let mut idx = lower.to_vec();
        for out_idx in out_shape.indices() {
            for (axis, &o) in out_idx.iter().enumerate() {
                idx[axis] = lower[axis] + o;
            }
            data.push(self.at(&idx).clone());
        }
        Array::new(out_shape, data)
    }

    /// Reshapes to a new shape with the same element count.
    pub fn reshape(&self, to: impl Into<Shape>) -> Result<Self> {
        let to = to.into();
        if to.size() != self.shape.size() {
            return Err(ArrayError::ReshapeSizeMismatch {
                from: self.shape.clone(),
                to,
            });
        }
        Ok(Array {
            shape: to,
            data: Arc::clone(&self.data),
        })
    }

    /// Applies `f` to every element, producing a same-shaped array.
    pub fn map<U: Clone>(&self, f: impl Fn(&T) -> U) -> Array<U> {
        Array {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(f).collect()),
        }
    }

    /// Elementwise combination of two same-shaped arrays.
    pub fn zip_with<U: Clone, V: Clone>(
        &self,
        other: &Array<U>,
        f: impl Fn(&T, &U) -> V,
    ) -> Result<Array<V>> {
        if self.shape != other.shape {
            return Err(ArrayError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        Ok(Array {
            shape: self.shape.clone(),
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(a, b)| f(a, b))
                    .collect(),
            ),
        })
    }

    /// True when the two arrays share the same underlying buffer — used in
    /// tests to verify copy-on-write behaviour.
    pub fn ptr_eq(&self, other: &Array<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl<T: Clone + PartialEq> PartialEq for Array<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl<T: Clone + Eq> Eq for Array<T> {}

impl<T: fmt::Debug> fmt::Debug for Array<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Array{{shape: {}, data: ", self.shape)?;
        if self.data.len() <= 32 {
            write!(f, "{:?}", &self.data[..])?;
        } else {
            write!(f, "{:?}…({} elems)", &self.data[..16], self.data.len())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_data_length() {
        assert!(Array::new([2, 3], vec![0i32; 6]).is_ok());
        assert!(matches!(
            Array::new([2, 3], vec![0i32; 5]),
            Err(ArrayError::DataLengthMismatch { .. })
        ));
    }

    #[test]
    fn scalar_roundtrip() {
        let a = Array::scalar(42i32);
        assert_eq!(a.dim(), 0);
        assert_eq!(a.size(), 1);
        assert_eq!(a.unwrap_scalar().unwrap(), 42);
        assert_eq!(*a.at(&[]), 42);
    }

    #[test]
    fn selection_full_and_prefix() {
        let a = Array::new([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(*a.at(&[0, 0]), 1);
        assert_eq!(*a.at(&[1, 2]), 6);
        let row = a.sel_subarray(&[1]).unwrap();
        assert_eq!(row.shape(), &Shape::vector(3));
        assert_eq!(row.data(), &[4, 5, 6]);
        // Full-length prefix yields a rank-0 subarray.
        let cell = a.sel_subarray(&[0, 2]).unwrap();
        assert_eq!(cell.unwrap_scalar().unwrap(), 3);
    }

    #[test]
    fn sel_out_of_bounds() {
        let a = Array::new([2, 2], vec![1, 2, 3, 4]).unwrap();
        assert!(a.sel(&[2, 0]).is_err());
        assert!(a.sel(&[0]).is_err());
        assert!(a.sel_subarray(&[5]).is_err());
    }

    #[test]
    fn with_elem_copies_only_when_shared() {
        let a = Array::new([3], vec![1, 2, 3]).unwrap();
        let b = a.clone();
        // a and b share storage.
        assert!(a.ptr_eq(&b));
        let c = b.with_elem(&[1], 99).unwrap();
        // The original is unchanged (copy happened because it was shared).
        assert_eq!(a.data(), &[1, 2, 3]);
        assert_eq!(c.data(), &[1, 99, 3]);
        assert!(!a.ptr_eq(&c));

        // A uniquely-owned array is updated in place: the buffer address
        // is stable across the update.
        let d = Array::new([3], vec![7, 8, 9]).unwrap();
        let before = d.data().as_ptr();
        let d = d.with_elem(&[0], 0).unwrap();
        assert_eq!(d.data().as_ptr(), before);
        assert_eq!(d.data(), &[0, 8, 9]);
    }

    #[test]
    fn slice_extracts_rectangles() {
        let a = Array::new([3, 4], (0..12).collect::<Vec<i32>>()).unwrap();
        let s = a.slice(&[1, 1], &[3, 3]).unwrap();
        assert_eq!(s.shape(), &Shape::matrix(2, 2));
        assert_eq!(s.data(), &[5, 6, 9, 10]);
        // Whole-array slice is identity.
        assert_eq!(a.slice(&[0, 0], &[3, 4]).unwrap(), a);
        // Empty slice.
        assert_eq!(a.slice(&[1, 1], &[1, 3]).unwrap().size(), 0);
        // Errors: inverted bounds, out of range, wrong rank.
        assert!(a.slice(&[2, 0], &[1, 4]).is_err());
        assert!(a.slice(&[0, 0], &[4, 4]).is_err());
        assert!(a.slice(&[0], &[3]).is_err());
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Array::new([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        let b = a.reshape([6]).unwrap();
        assert!(a.ptr_eq(&b));
        assert_eq!(*b.at(&[3]), 4);
        assert!(a.reshape([4]).is_err());
    }

    #[test]
    fn map_and_zip_with() {
        let a = Array::new([2, 2], vec![1, 2, 3, 4]).unwrap();
        let b = a.map(|x| x * 10);
        assert_eq!(b.data(), &[10, 20, 30, 40]);
        let c = a.zip_with(&b, |x, y| x + y).unwrap();
        assert_eq!(c.data(), &[11, 22, 33, 44]);
        let d = Array::new([4], vec![0, 0, 0, 0]).unwrap();
        assert!(a.zip_with(&d, |x, y| x + y).is_err());
    }

    #[test]
    fn equality_is_structural() {
        let a = Array::new([2], vec![1, 2]).unwrap();
        let b = Array::new([2], vec![1, 2]).unwrap();
        let c = Array::new([1, 2], vec![1, 2]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c); // same data, different shape
    }
}
