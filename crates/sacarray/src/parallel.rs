//! Data-parallel execution substrate.
//!
//! SaC's claim — quoted by the paper — is that data parallelism "comes
//! for free ... it just requires multi-threaded code generation to be
//! enabled". This module is the library-level equivalent of that code
//! generation: a persistent worker pool plus a chunk-claiming
//! `parallel_for` over linear iteration spaces. With-loop evaluation
//! partitions a generator's index set into contiguous chunks; idle
//! workers claim chunks from an atomic counter, so imbalanced bodies
//! (cheap defaults vs. expensive generator expressions) still balance.
//!
//! The pool is deliberately simple — a mutex-protected queue with a
//! condition variable — because with-loop tasks are coarse: the crate
//! only goes parallel above [`PAR_THRESHOLD`] elements, at which point
//! queue overhead is noise. Panics inside bodies are captured and
//! re-thrown on the calling thread, preserving the single-threaded
//! observable behaviour.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Below this many elements a with-loop is evaluated sequentially;
/// thread coordination would dominate otherwise.
pub const PAR_THRESHOLD: usize = 4096;

/// Default chunk grain for `parallel_for`: large enough to amortise the
/// claim, small enough to balance imbalanced bodies.
pub const DEFAULT_GRAIN: usize = 1024;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    cv: Condvar,
    threads: usize,
}

/// State shared between the caller and helper tasks of one
/// `parallel_for` call. Lives on the caller's stack; helpers receive a
/// lifetime-erased reference that is provably not used after the call
/// returns (the caller blocks on `done`).
struct ForShared {
    counter: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    panicked: AtomicBool,
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    len: usize,
    grain: usize,
    nchunks: usize,
}

impl ForShared {
    fn run<F: Fn(Range<usize>) + Sync>(&self, body: &F) {
        loop {
            if self.panicked.load(Ordering::Relaxed) {
                break;
            }
            let c = self.counter.fetch_add(1, Ordering::Relaxed);
            if c >= self.nchunks {
                break;
            }
            let start = c * self.grain;
            let end = (start + self.grain).min(self.len);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(start..end)));
            if let Err(payload) = r {
                self.panicked.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    fn finish(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut d = self.done.lock();
            *d = true;
            self.done_cv.notify_all();
        }
    }
}

/// A persistent pool of worker threads executing data-parallel chunks.
///
/// One global pool (sized from `SACARRAY_THREADS` or the machine's
/// available parallelism) backs the default with-loop entry points;
/// benchmarks construct private pools to measure scaling.
pub struct Pool {
    inner: Arc<PoolInner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `threads` total compute threads. The calling
    /// thread always participates in [`Pool::parallel_for`], so
    /// `Pool::new(n)` spawns `n - 1` workers; `Pool::new(1)` spawns none
    /// and runs everything inline.
    pub fn new(threads: usize) -> Arc<Pool> {
        let threads = threads.max(1);
        let workers = threads - 1;
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            threads,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("sacarray-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("failed to spawn sacarray worker");
            handles.push(h);
        }
        Arc::new(Pool { inner, handles })
    }

    /// The process-wide default pool.
    pub fn global() -> &'static Arc<Pool> {
        static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(default_threads()))
    }

    /// Total compute threads this pool brings to a `parallel_for`
    /// (spawned workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    fn submit(&self, job: Job) {
        let mut st = self.inner.state.lock();
        st.queue.push_back(job);
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Runs `body` over `0..len` split into chunks of at most `grain`
    /// elements, in parallel across the pool, blocking until all chunks
    /// complete. `body` may run concurrently on many threads and must
    /// only touch disjoint state per chunk.
    ///
    /// Panics in `body` are propagated to the caller (first panic wins).
    pub fn parallel_for<F>(&self, len: usize, grain: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let grain = grain.max(1);
        if len == 0 {
            return;
        }
        let nchunks = len.div_ceil(grain);
        if nchunks == 1 || self.inner.threads == 1 {
            body(0..len);
            return;
        }

        let helpers = (self.inner.threads - 1).min(nchunks - 1);
        let shared = ForShared {
            counter: AtomicUsize::new(0),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            remaining: AtomicUsize::new(helpers + 1),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            len,
            grain,
            nchunks,
        };

        let shared_ref: &ForShared = &shared;
        let body_ref: &F = &body;
        for _ in 0..helpers {
            // SAFETY: the job only dereferences `shared_ref`/`body_ref`,
            // which live on this stack frame. Before this frame returns
            // we block until every job has called `finish()`, i.e. until
            // no job can touch the references again; the asserted
            // 'static lifetime is therefore never observable.
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                shared_ref.run(body_ref);
                shared_ref.finish();
            });
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.submit(job);
        }

        shared.run(body_ref);
        shared.finish();

        let mut d = shared.done.lock();
        while !*d {
            shared.done_cv.wait(&mut d);
        }
        drop(d);

        let payload = shared.panic.lock().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut st = inner.state.lock();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                inner.cv.wait(&mut st);
            }
        };
        job();
    }
}

/// Thread count for the global pool: `SACARRAY_THREADS` env var when
/// set, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SACARRAY_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = Pool::new(4);
        let n = 100_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(n, 777, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_len_is_noop() {
        let pool = Pool::new(2);
        pool.parallel_for(0, 10, |_| panic!("must not be called"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let sum = AtomicUsize::new(0);
        pool.parallel_for(1000, 64, |r| {
            sum.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = Pool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(10_000, 16, |r| {
                if r.contains(&5555) {
                    panic!("boom at 5555");
                }
            });
        }));
        assert!(result.is_err());
        // Pool stays usable after a panic.
        let sum = AtomicUsize::new(0);
        pool.parallel_for(100, 7, |r| {
            sum.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn many_concurrent_parallel_fors() {
        let pool = Pool::new(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let sum = AtomicUsize::new(0);
                    pool.parallel_for(50_000, 1000, |r| {
                        sum.fetch_add(r.sum::<usize>(), Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), 50_000 * (50_000 - 1) / 2);
                });
            }
        });
    }

    #[test]
    fn global_pool_exists_and_works() {
        let pool = Pool::global();
        assert!(pool.threads() >= 1);
        let count = AtomicUsize::new(0);
        pool.parallel_for(10_000, 100, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn grain_zero_is_clamped() {
        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        pool.parallel_for(10, 0, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = Pool::new(3);
        let count = AtomicUsize::new(0);
        pool.parallel_for(1000, 10, |r| {
            count.fetch_add(r.len(), Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
    }
}
