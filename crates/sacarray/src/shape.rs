//! Shape and index vectors.
//!
//! SaC arrays are rectangular n-dimensional collections described by a
//! *shape vector*: one extent per axis. Scalars are rank-0 arrays with an
//! empty shape vector (paper, Section 2). This module provides the shape
//! type plus the row-major linearisation used throughout the crate.

use std::fmt;

/// The shape of an n-dimensional array: one non-negative extent per axis.
///
/// Rank-0 (empty) shapes denote scalars, exactly as in SaC where `int`
/// is sugar for `int[]`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from per-axis extents.
    pub fn new(extents: Vec<usize>) -> Self {
        Shape(extents)
    }

    /// The scalar shape: rank 0, one element.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Shape of a vector with `n` elements.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// Shape of an `r` x `c` matrix.
    pub fn matrix(r: usize, c: usize) -> Self {
        Shape(vec![r, c])
    }

    /// Number of axes (`dim` in SaC).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent along axis `axis`. Panics if `axis >= rank`.
    pub fn extent(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// The per-axis extents as a slice.
    pub fn extents(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn size(&self) -> usize {
        self.0.iter().product()
    }

    /// True if any axis has extent 0 (and the shape is not rank 0).
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }

    /// Row-major strides: `strides[i]` is the linear distance between
    /// consecutive indices along axis `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Linearises a full index vector (row-major). Returns `None` when the
    /// index has the wrong rank or is out of bounds on some axis.
    pub fn linearize(&self, idx: &[usize]) -> Option<usize> {
        if idx.len() != self.rank() {
            return None;
        }
        let mut lin = 0usize;
        for (axis, (&i, &e)) in idx.iter().zip(self.0.iter()).enumerate() {
            if i >= e {
                return None;
            }
            // Avoid recomputing strides: accumulate Horner-style.
            let _ = axis;
            lin = lin * e + i;
        }
        Some(lin)
    }

    /// Inverse of [`Shape::linearize`]: converts a linear offset back into
    /// a full index vector. Panics if `lin >= size()`.
    pub fn delinearize(&self, mut lin: usize) -> Vec<usize> {
        assert!(
            lin < self.size().max(1),
            "linear offset {lin} out of bounds for shape {self}"
        );
        let mut idx = vec![0usize; self.rank()];
        for axis in (0..self.rank()).rev() {
            let e = self.0[axis];
            idx[axis] = lin % e;
            lin /= e;
        }
        idx
    }

    /// Linearises a *prefix* index (rank <= self.rank) designating a
    /// subarray: returns the linear offset of the subarray start and the
    /// number of elements it spans. `None` if out of bounds.
    ///
    /// This backs SaC's selection on partial index vectors, where
    /// `m[[i]]` of a matrix yields row `i`.
    pub fn linearize_prefix(&self, idx: &[usize]) -> Option<(usize, usize)> {
        if idx.len() > self.rank() {
            return None;
        }
        let mut lin = 0usize;
        for (&i, &e) in idx.iter().zip(self.0.iter()) {
            if i >= e {
                return None;
            }
            lin = lin * e + i;
        }
        let span: usize = self.0[idx.len()..].iter().product();
        Some((lin * span, span))
    }

    /// The shape of the subarray selected by a prefix index of the given
    /// length (the trailing axes).
    pub fn suffix_shape(&self, prefix_len: usize) -> Shape {
        Shape(self.0[prefix_len..].to_vec())
    }

    /// Concatenates two shapes (used by `genarray` with non-scalar
    /// default elements: result shape = frame shape ++ cell shape).
    pub fn concat(&self, other: &Shape) -> Shape {
        let mut v = self.0.clone();
        v.extend_from_slice(&other.0);
        Shape(v)
    }

    /// Iterates over all index vectors of this shape in row-major order.
    pub fn indices(&self) -> IndexIter {
        IndexIter::new(self.clone())
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

/// Row-major iterator over every index vector of a shape.
pub struct IndexIter {
    shape: Shape,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    fn new(shape: Shape) -> Self {
        let next = if shape.is_empty() {
            None
        } else {
            Some(vec![0; shape.rank()])
        };
        IndexIter { shape, next }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance odometer-style from the last axis.
        let mut idx = cur.clone();
        let mut axis = self.shape.rank();
        loop {
            if axis == 0 {
                self.next = None;
                break;
            }
            axis -= 1;
            idx[axis] += 1;
            if idx[axis] < self.shape.extent(axis) {
                self.next = Some(idx);
                break;
            }
            idx[axis] = 0;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_rank_zero_and_size_one() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.size(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn matrix_shape_basics() {
        let s = Shape::matrix(3, 5);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.size(), 15);
        assert_eq!(s.extents(), &[3, 5]);
        assert_eq!(s.strides(), vec![5, 1]);
    }

    #[test]
    fn linearize_row_major() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.linearize(&[0, 0, 0]), Some(0));
        assert_eq!(s.linearize(&[0, 0, 4]), Some(4));
        assert_eq!(s.linearize(&[0, 1, 0]), Some(5));
        assert_eq!(s.linearize(&[1, 0, 0]), Some(20));
        assert_eq!(s.linearize(&[2, 3, 4]), Some(59));
    }

    #[test]
    fn linearize_rejects_out_of_bounds_and_wrong_rank() {
        let s = Shape::matrix(2, 2);
        assert_eq!(s.linearize(&[2, 0]), None);
        assert_eq!(s.linearize(&[0, 2]), None);
        assert_eq!(s.linearize(&[0]), None);
        assert_eq!(s.linearize(&[0, 0, 0]), None);
    }

    #[test]
    fn delinearize_inverts_linearize() {
        let s = Shape::new(vec![2, 3, 4]);
        for lin in 0..s.size() {
            let idx = s.delinearize(lin);
            assert_eq!(s.linearize(&idx), Some(lin));
        }
    }

    #[test]
    fn scalar_linearize() {
        let s = Shape::scalar();
        assert_eq!(s.linearize(&[]), Some(0));
        assert_eq!(s.delinearize(0), Vec::<usize>::new());
    }

    #[test]
    fn prefix_selection_selects_rows() {
        let s = Shape::matrix(3, 4);
        assert_eq!(s.linearize_prefix(&[1]), Some((4, 4)));
        assert_eq!(s.linearize_prefix(&[2]), Some((8, 4)));
        assert_eq!(s.linearize_prefix(&[1, 2]), Some((6, 1)));
        assert_eq!(s.linearize_prefix(&[]), Some((0, 12)));
        assert_eq!(s.linearize_prefix(&[3]), None);
        assert_eq!(s.suffix_shape(1), Shape::vector(4));
    }

    #[test]
    fn index_iter_row_major_order() {
        let s = Shape::matrix(2, 3);
        let all: Vec<Vec<usize>> = s.indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2],
            ]
        );
    }

    #[test]
    fn index_iter_empty_shape_yields_nothing() {
        let s = Shape::new(vec![0, 3]);
        assert_eq!(s.indices().count(), 0);
    }

    #[test]
    fn index_iter_scalar_yields_single_empty_index() {
        let s = Shape::scalar();
        let all: Vec<Vec<usize>> = s.indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn concat_shapes() {
        let a = Shape::matrix(2, 3);
        let b = Shape::vector(4);
        assert_eq!(a.concat(&b), Shape::new(vec![2, 3, 4]));
        assert_eq!(Shape::scalar().concat(&a), a);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![3, 7]).to_string(), "[3,7]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
