//! # sacarray — SaC-style data-parallel arrays
//!
//! The computation layer of the two-layer model in Grelck, Scholz &
//! Shafarenko, *Coordinating Data Parallel SAC Programs with S-Net*
//! (IPPS 2007). SaC ("Single Assignment C") is a functional,
//! side-effect-free array language whose only compound construct is the
//! *with-loop* array comprehension; all parallelism is implicit and
//! data-parallel.
//!
//! This crate reproduces that model as a Rust library:
//!
//! * [`Shape`] / [`Array`] — stateless n-dimensional arrays with value
//!   semantics (rank-0 arrays are scalars, exactly as in SaC);
//! * [`Generator`] — rectangular (optionally strided) index sets with
//!   no inherent iteration order;
//! * [`WithLoop`] — `genarray` / `modarray` / `fold` comprehensions
//!   over one or more ordered generators;
//! * [`Pool`] — the chunk-claiming thread pool that stands in for SaC's
//!   multithreaded code generation, making with-loop evaluation
//!   data-parallel without any change to the program;
//! * [`ops`] — a small standard library (`++`, `take`, `drop`,
//!   reductions, `find_first`, `argmin_by`) defined *as* with-loops,
//!   following the paper's `(++)` recipe.
//!
//! ## Quickstart
//!
//! ```
//! use sacarray::{Array, Generator, WithLoop};
//!
//! // The paper's example: with { ([1] <= iv < [4]) : 42 } : genarray([5], 0)
//! let a = WithLoop::new()
//!     .gen_const(Generator::range(vec![1], vec![4]).unwrap(), 42)
//!     .genarray([5], 0)
//!     .unwrap();
//! assert_eq!(a.data(), &[0, 42, 42, 42, 0]);
//! ```

pub mod array;
pub mod error;
pub mod generator;
pub mod ops;
pub mod parallel;
pub mod shape;
pub mod withloop;

pub use array::Array;
pub use error::{ArrayError, Result};
pub use generator::Generator;
pub use parallel::{default_threads, Pool};
pub use shape::Shape;
pub use withloop::{Eval, WithLoop};
