//! With-loop generators.
//!
//! A generator specifies a rectangular (optionally strided) index set:
//!
//! ```text
//! ( lower_bound <= idx_vec <  upper_bound )            — exclusive upper
//! ( lower_bound <= idx_vec <= upper_bound )            — inclusive upper
//! ( lb <= iv < ub step s width w )                     — SaC grid generators
//! ```
//!
//! The paper's sudoku code uses inclusive upper bounds
//! (`[i,j,0] <= iv <= [i,j,8]`), its Section 2 examples exclusive ones;
//! both are supported. `step`/`width` are part of full SaC and are
//! included for completeness (they enable e.g. checkerboard patterns).
//!
//! Generators deliberately impose **no order** on their index sets
//! (paper, Section 2) — which is exactly what licenses data-parallel
//! evaluation. Iteration order here is row-major, but nothing in the
//! with-loop semantics depends on it.

use crate::error::{ArrayError, Result};

/// A rectangular, optionally strided, index set of fixed rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Generator {
    lower: Vec<usize>,
    /// Exclusive upper bound (inclusive bounds are normalised on build).
    upper: Vec<usize>,
    step: Vec<usize>,
    width: Vec<usize>,
}

impl Generator {
    /// `lower <= iv < upper`.
    pub fn range(lower: Vec<usize>, upper: Vec<usize>) -> Result<Self> {
        if lower.len() != upper.len() {
            return Err(ArrayError::BadGenerator(format!(
                "bound ranks differ: {} vs {}",
                lower.len(),
                upper.len()
            )));
        }
        let rank = lower.len();
        Ok(Generator {
            lower,
            upper,
            step: vec![1; rank],
            width: vec![1; rank],
        })
    }

    /// `lower <= iv <= upper` — the form used throughout the paper's
    /// `addNumber`.
    pub fn range_inclusive(lower: Vec<usize>, upper: Vec<usize>) -> Result<Self> {
        let upper_excl = upper.iter().map(|&u| u + 1).collect();
        Generator::range(lower, upper_excl)
    }

    /// Adds SaC `step`/`width` modifiers: of every `step` consecutive
    /// indices per axis (starting at the lower bound) only the first
    /// `width` belong to the set.
    pub fn with_step_width(mut self, step: Vec<usize>, width: Vec<usize>) -> Result<Self> {
        if step.len() != self.rank() || width.len() != self.rank() {
            return Err(ArrayError::BadGenerator(
                "step/width rank must match bound rank".into(),
            ));
        }
        if step.contains(&0) {
            return Err(ArrayError::BadGenerator("step must be positive".into()));
        }
        if width
            .iter()
            .zip(step.iter())
            .any(|(&w, &s)| w == 0 || w > s)
        {
            return Err(ArrayError::BadGenerator(
                "width must satisfy 0 < width <= step".into(),
            ));
        }
        self.step = step;
        self.width = width;
        Ok(self)
    }

    /// The full index set of a shape: `[0,...] <= iv < shape`.
    pub fn full(shape: &crate::shape::Shape) -> Self {
        Generator {
            lower: vec![0; shape.rank()],
            upper: shape.extents().to_vec(),
            step: vec![1; shape.rank()],
            width: vec![1; shape.rank()],
        }
    }

    /// Rank of the index vectors this generator produces.
    pub fn rank(&self) -> usize {
        self.lower.len()
    }

    pub fn lower(&self) -> &[usize] {
        &self.lower
    }

    /// Exclusive upper bound.
    pub fn upper(&self) -> &[usize] {
        &self.upper
    }

    /// Number of selected positions along one axis.
    fn axis_count(&self, axis: usize) -> usize {
        let lo = self.lower[axis];
        let hi = self.upper[axis];
        if hi <= lo {
            return 0;
        }
        let range = hi - lo;
        let s = self.step[axis];
        let w = self.width[axis];
        let full = range / s;
        let rem = range % s;
        full * w + rem.min(w)
    }

    /// Total number of index vectors in the set.
    pub fn count(&self) -> usize {
        if self.rank() == 0 {
            return 1; // the empty index vector
        }
        (0..self.rank()).map(|a| self.axis_count(a)).product()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Membership test.
    pub fn contains(&self, idx: &[usize]) -> bool {
        if idx.len() != self.rank() {
            return false;
        }
        idx.iter().enumerate().all(|(a, &i)| {
            i >= self.lower[a]
                && i < self.upper[a]
                && (i - self.lower[a]) % self.step[a] < self.width[a]
        })
    }

    /// The `p`-th index vector of the set in row-major order. This is the
    /// primitive that lets parallel workers claim disjoint chunks of a
    /// generator by linear position without coordination.
    pub fn delinearize(&self, mut p: usize) -> Vec<usize> {
        debug_assert!(p < self.count());
        let rank = self.rank();
        let mut idx = vec![0usize; rank];
        for axis in (0..rank).rev() {
            let n = self.axis_count(axis);
            let pos = p % n;
            p /= n;
            let s = self.step[axis];
            let w = self.width[axis];
            let block = pos / w;
            let off = pos % w;
            idx[axis] = self.lower[axis] + block * s + off;
        }
        idx
    }

    /// Index along one axis for the `pos`-th selected position.
    #[inline]
    fn axis_index(&self, axis: usize, pos: usize) -> usize {
        let s = self.step[axis];
        let w = self.width[axis];
        self.lower[axis] + (pos / w) * s + pos % w
    }

    /// Calls `f` with every index vector whose row-major ordinal lies
    /// in `range`, in order, **without per-element allocation**: the
    /// index vector is advanced odometer-style in place. This is the
    /// hot path of with-loop evaluation — `delinearize` per element
    /// would allocate a Vec each time.
    pub fn for_each_in(&self, range: std::ops::Range<usize>, mut f: impl FnMut(&[usize])) {
        let total = self.count();
        debug_assert!(range.end <= total);
        if range.start >= range.end {
            return;
        }
        let rank = self.rank();
        if rank == 0 {
            f(&[]);
            return;
        }
        let counts: Vec<usize> = (0..rank).map(|a| self.axis_count(a)).collect();
        // Ordinal positions of the starting element, per axis.
        let mut pos = vec![0usize; rank];
        let mut p = range.start;
        for axis in (0..rank).rev() {
            pos[axis] = p % counts[axis];
            p /= counts[axis];
        }
        let mut idx: Vec<usize> = (0..rank).map(|a| self.axis_index(a, pos[a])).collect();
        let n = range.end - range.start;
        for step in 0..n {
            f(&idx);
            if step + 1 == n {
                break;
            }
            // Advance the odometer from the last axis.
            let mut axis = rank;
            loop {
                debug_assert!(axis > 0, "advanced past the end of the index set");
                axis -= 1;
                pos[axis] += 1;
                if pos[axis] < counts[axis] {
                    idx[axis] = self.axis_index(axis, pos[axis]);
                    break;
                }
                pos[axis] = 0;
                idx[axis] = self.axis_index(axis, 0);
            }
        }
    }

    /// Iterates the index set in row-major order.
    pub fn indices(&self) -> GenIter {
        GenIter {
            gen: self.clone(),
            pos: 0,
            count: self.count(),
        }
    }

    /// Checks the generator fits within `shape` (used by with-loop
    /// evaluation to fail fast instead of panicking mid-parallel-fill).
    pub fn check_within(&self, shape: &crate::shape::Shape) -> Result<()> {
        if self.rank() != shape.rank() {
            return Err(ArrayError::BadGenerator(format!(
                "generator rank {} does not match result rank {}",
                self.rank(),
                shape.rank()
            )));
        }
        for axis in 0..self.rank() {
            if self.axis_count(axis) > 0 && self.upper[axis] > shape.extent(axis) {
                return Err(ArrayError::BadGenerator(format!(
                    "generator upper bound {:?} exceeds result shape {}",
                    self.upper, shape
                )));
            }
        }
        Ok(())
    }
}

/// Row-major iterator over a generator's index set.
pub struct GenIter {
    gen: Generator,
    pos: usize,
    count: usize,
}

impl Iterator for GenIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.pos >= self.count {
            return None;
        }
        let idx = self.gen.delinearize(self.pos);
        self.pos += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count - self.pos;
        (left, Some(left))
    }
}

impl ExactSizeIterator for GenIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn exclusive_range_counts() {
        let g = Generator::range(vec![0, 0], vec![3, 5]).unwrap();
        assert_eq!(g.count(), 15);
        assert!(!g.is_empty());
    }

    #[test]
    fn inclusive_range_matches_paper_addnumber_row() {
        // ([i,0,k] <= iv <= [i,8,k]) — a 9-element line.
        let g = Generator::range_inclusive(vec![2, 0, 4], vec![2, 8, 4]).unwrap();
        assert_eq!(g.count(), 9);
        let all: Vec<_> = g.indices().collect();
        assert_eq!(all[0], vec![2, 0, 4]);
        assert_eq!(all[8], vec![2, 8, 4]);
    }

    #[test]
    fn empty_when_lower_ge_upper() {
        let g = Generator::range(vec![3], vec![3]).unwrap();
        assert!(g.is_empty());
        let g = Generator::range(vec![5], vec![3]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.indices().count(), 0);
    }

    #[test]
    fn mismatched_bound_ranks_rejected() {
        assert!(Generator::range(vec![0], vec![1, 2]).is_err());
    }

    #[test]
    fn contains_agrees_with_iteration() {
        let g = Generator::range(vec![1, 2], vec![4, 5]).unwrap();
        for idx in g.indices() {
            assert!(g.contains(&idx));
        }
        assert!(!g.contains(&[0, 2]));
        assert!(!g.contains(&[1, 5]));
        assert!(!g.contains(&[1]));
    }

    #[test]
    fn step_width_checkerboard() {
        // Every other element of a 6-vector, width 1, step 2: 0,2,4.
        let g = Generator::range(vec![0], vec![6])
            .unwrap()
            .with_step_width(vec![2], vec![1])
            .unwrap();
        let all: Vec<_> = g.indices().collect();
        assert_eq!(all, vec![vec![0], vec![2], vec![4]]);
        assert_eq!(g.count(), 3);
        assert!(g.contains(&[2]));
        assert!(!g.contains(&[3]));
    }

    #[test]
    fn step_width_pairs() {
        // step 3 width 2 over [0,8): 0,1, 3,4, 6,7.
        let g = Generator::range(vec![0], vec![8])
            .unwrap()
            .with_step_width(vec![3], vec![2])
            .unwrap();
        let all: Vec<_> = g.indices().collect();
        assert_eq!(
            all,
            vec![vec![0], vec![1], vec![3], vec![4], vec![6], vec![7]]
        );
        assert_eq!(g.count(), 6);
    }

    #[test]
    fn bad_step_width_rejected() {
        let g = Generator::range(vec![0], vec![8]).unwrap();
        assert!(g.clone().with_step_width(vec![0], vec![1]).is_err());
        assert!(g.clone().with_step_width(vec![2], vec![0]).is_err());
        assert!(g.clone().with_step_width(vec![2], vec![3]).is_err());
        assert!(g.with_step_width(vec![2, 2], vec![1, 1]).is_err());
    }

    #[test]
    fn delinearize_matches_iteration_order() {
        let g = Generator::range(vec![1, 0], vec![3, 4])
            .unwrap()
            .with_step_width(vec![1, 2], vec![1, 1])
            .unwrap();
        let all: Vec<_> = g.indices().collect();
        for (p, idx) in all.iter().enumerate() {
            assert_eq!(&g.delinearize(p), idx);
        }
    }

    #[test]
    fn full_generator_covers_shape() {
        let s = Shape::matrix(3, 4);
        let g = Generator::full(&s);
        assert_eq!(g.count(), s.size());
        assert!(g.check_within(&s).is_ok());
    }

    #[test]
    fn check_within_rejects_overflow_and_rank_mismatch() {
        let s = Shape::matrix(3, 4);
        let g = Generator::range(vec![0, 0], vec![3, 5]).unwrap();
        assert!(g.check_within(&s).is_err());
        let g = Generator::range(vec![0], vec![3]).unwrap();
        assert!(g.check_within(&s).is_err());
        // Empty generators never overflow.
        let g = Generator::range(vec![9, 9], vec![9, 9]).unwrap();
        assert!(g.check_within(&s).is_ok());
    }

    #[test]
    fn rank_zero_generator_is_the_scalar_index() {
        let g = Generator::range(vec![], vec![]).unwrap();
        assert_eq!(g.count(), 1);
        let all: Vec<_> = g.indices().collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Arbitrary small generators, optionally strided.
        fn arb_gen() -> impl Strategy<Value = Generator> {
            (
                proptest::collection::vec((0usize..5, 0usize..8, 1usize..4), 1..4),
                any::<bool>(),
            )
                .prop_map(|(axes, strided)| {
                    let lower: Vec<usize> = axes.iter().map(|(l, _, _)| *l).collect();
                    let upper: Vec<usize> = axes.iter().map(|(l, e, _)| l + e).collect();
                    let g = Generator::range(lower, upper).unwrap();
                    if strided {
                        let step: Vec<usize> = axes.iter().map(|(_, _, s)| *s).collect();
                        let width: Vec<usize> = step.iter().map(|s| 1.max(s / 2).min(*s)).collect();
                        g.with_step_width(step, width).unwrap()
                    } else {
                        g
                    }
                })
        }

        proptest! {
            /// `for_each_in` over any partition of `0..count` enumerates
            /// exactly the same indices, in the same order, as
            /// `delinearize` — THE invariant that makes chunked parallel
            /// with-loop evaluation write each element exactly once.
            #[test]
            fn partitioned_for_each_equals_delinearize(
                g in arb_gen(),
                chunk in 1usize..7,
            ) {
                let count = g.count();
                let expected: Vec<Vec<usize>> =
                    (0..count).map(|p| g.delinearize(p)).collect();
                let mut got: Vec<Vec<usize>> = Vec::with_capacity(count);
                let mut start = 0;
                while start < count {
                    let end = (start + chunk).min(count);
                    g.for_each_in(start..end, |idx| got.push(idx.to_vec()));
                    start = end;
                }
                prop_assert_eq!(got, expected);
            }

            /// Membership agrees with enumeration.
            #[test]
            fn contains_iff_enumerated(g in arb_gen()) {
                let all: std::collections::HashSet<Vec<usize>> =
                    g.indices().collect();
                for idx in &all {
                    prop_assert!(g.contains(idx));
                }
                // Points just outside the bounds are not contained.
                let probe: Vec<usize> = g.upper().to_vec();
                prop_assert!(!g.contains(&probe) || all.contains(&probe));
            }

            /// count() equals the number of enumerated indices.
            #[test]
            fn count_matches_enumeration(g in arb_gen()) {
                prop_assert_eq!(g.count(), g.indices().count());
            }
        }
    }
}
