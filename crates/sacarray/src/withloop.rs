//! With-loop array comprehensions.
//!
//! The with-loop is SaC's only compound array construct (paper,
//! Section 2): a list of *generators* (rectangular index sets), each
//! associated with an expression over the index vector, consumed by one
//! of three operators:
//!
//! * `genarray(shape, default)` — build a new array of `shape`; elements
//!   covered by no generator take `default`; where generators overlap,
//!   **the later generator wins** (the paper's `[0,1,1,2,2,0]` example).
//! * `modarray(base)` — like `genarray` but uncovered elements come from
//!   the same position of an existing array.
//! * `fold(neutral, op)` — reduce the values computed by the generators
//!   with an associative operator.
//!
//! Because generators impose no iteration order, evaluation is
//! data-parallel: the engine partitions each generator's index set into
//! chunks and fills disjoint slices of the result concurrently on a
//! [`Pool`]. Sequential and parallel evaluation are observably
//! identical (a property test in this module checks it).

use crate::array::Array;
use crate::error::Result;
use crate::generator::Generator;
use crate::parallel::{Pool, DEFAULT_GRAIN, PAR_THRESHOLD};
use crate::shape::Shape;

/// A generator body: maps an index vector to an element value.
pub type Body<'a, T> = Box<dyn Fn(&[usize]) -> T + Send + Sync + 'a>;

/// One `(generator) : expression` part of a with-loop.
pub struct Part<'a, T> {
    pub generator: Generator,
    pub body: Body<'a, T>,
}

/// A with-loop under construction. Parts are kept in source order, which
/// is semantically significant on overlap.
pub struct WithLoop<'a, T> {
    parts: Vec<Part<'a, T>>,
}

impl<'a, T> Default for WithLoop<'a, T> {
    fn default() -> Self {
        WithLoop { parts: Vec::new() }
    }
}

/// Evaluation strategy for a with-loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Eval {
    /// Single-threaded reference evaluation.
    Sequential,
    /// Chunked evaluation on the global pool when the index space is
    /// large enough (SaC's "multithreaded code generation enabled").
    Auto,
}

impl<'a, T: Clone + Send + Sync> WithLoop<'a, T> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a generator with a computed body.
    pub fn gen(
        mut self,
        generator: Generator,
        body: impl Fn(&[usize]) -> T + Send + Sync + 'a,
    ) -> Self {
        self.parts.push(Part {
            generator,
            body: Box::new(body),
        });
        self
    }

    /// Adds a generator with a constant body, e.g. the paper's
    /// `([0,0] <= iv < [3,5]) : 42`.
    pub fn gen_const(self, generator: Generator, value: T) -> Self
    where
        T: 'a,
    {
        self.gen(generator, move |_| value.clone())
    }

    fn check_generators(&self, shape: &Shape) -> Result<()> {
        for p in &self.parts {
            p.generator.check_within(shape)?;
        }
        Ok(())
    }

    /// `genarray(shape, default)` on the global pool (parallel when the
    /// result is large enough).
    pub fn genarray(self, shape: impl Into<Shape>, default: T) -> Result<Array<T>> {
        self.genarray_on(Pool::global(), Eval::Auto, shape, default)
    }

    /// Sequential reference version of [`WithLoop::genarray`].
    pub fn genarray_seq(self, shape: impl Into<Shape>, default: T) -> Result<Array<T>> {
        self.genarray_on(Pool::global(), Eval::Sequential, shape, default)
    }

    /// `genarray` with explicit pool and strategy (used by the scaling
    /// benchmarks).
    pub fn genarray_on(
        self,
        pool: &Pool,
        eval: Eval,
        shape: impl Into<Shape>,
        default: T,
    ) -> Result<Array<T>> {
        let shape = shape.into();
        self.check_generators(&shape)?;
        let n = shape.size();
        let mut data = vec![default; n];
        self.fill(pool, eval, &shape, &mut data);
        Array::new(shape, data)
    }

    /// `modarray(base)` on the global pool.
    pub fn modarray(self, base: &Array<T>) -> Result<Array<T>> {
        self.modarray_on(Pool::global(), Eval::Auto, base)
    }

    /// Sequential reference version of [`WithLoop::modarray`].
    pub fn modarray_seq(self, base: &Array<T>) -> Result<Array<T>> {
        self.modarray_on(Pool::global(), Eval::Sequential, base)
    }

    /// `modarray` with explicit pool and strategy.
    pub fn modarray_on(self, pool: &Pool, eval: Eval, base: &Array<T>) -> Result<Array<T>> {
        let shape = base.shape().clone();
        self.check_generators(&shape)?;
        let mut out = base.clone();
        // Copy-on-write: if `base` is uniquely owned this mutates in
        // place, mirroring SaC's reference-count-one optimisation.
        let data = out.make_mut();
        self.fill(pool, eval, &shape, data);
        Ok(out)
    }

    /// Writes every generator part into `data` (row-major storage of
    /// `shape`), later parts overwriting earlier ones on overlap.
    fn fill(&self, pool: &Pool, eval: Eval, shape: &Shape, data: &mut [T]) {
        for part in &self.parts {
            let count = part.generator.count();
            if count == 0 {
                continue;
            }
            let par = matches!(eval, Eval::Auto) && count >= PAR_THRESHOLD && pool.threads() > 1;
            if !par {
                part.generator.for_each_in(0..count, |idx| {
                    let lin = shape
                        .linearize(idx)
                        .expect("generator checked within shape");
                    data[lin] = (part.body)(idx);
                });
            } else {
                let ptr = SendPtr(data.as_mut_ptr());
                let gen = &part.generator;
                let body = &part.body;
                pool.parallel_for(count, DEFAULT_GRAIN, |range| {
                    let ptr = &ptr;
                    gen.for_each_in(range, |idx| {
                        let lin = shape
                            .linearize(idx)
                            .expect("generator checked within shape");
                        // SAFETY: ordinal positions are unique per part
                        // and chunks are disjoint, so no two iterations
                        // of this parallel loop write the same element.
                        unsafe { *ptr.0.add(lin) = body(idx) };
                    });
                });
            }
        }
    }

    /// `fold(neutral, op)`: reduces the values produced by all generator
    /// parts. `op` must be associative; parallel evaluation combines
    /// per-chunk partial folds in chunk order, so non-commutative (but
    /// associative) operators still fold deterministically.
    pub fn fold(self, neutral: T, op: impl Fn(T, T) -> T + Send + Sync) -> T {
        self.fold_on(Pool::global(), Eval::Auto, neutral, op)
    }

    /// Sequential reference version of [`WithLoop::fold`].
    pub fn fold_seq(self, neutral: T, op: impl Fn(T, T) -> T + Send + Sync) -> T {
        self.fold_on(Pool::global(), Eval::Sequential, neutral, op)
    }

    /// `fold` with explicit pool and strategy.
    pub fn fold_on(
        self,
        pool: &Pool,
        eval: Eval,
        neutral: T,
        op: impl Fn(T, T) -> T + Send + Sync,
    ) -> T {
        let mut acc = neutral.clone();
        for part in &self.parts {
            let count = part.generator.count();
            if count == 0 {
                continue;
            }
            let par = matches!(eval, Eval::Auto) && count >= PAR_THRESHOLD && pool.threads() > 1;
            if !par {
                let mut local = Some(acc);
                part.generator.for_each_in(0..count, |idx| {
                    let prev = local.take().expect("accumulator present");
                    local = Some(op(prev, (part.body)(idx)));
                });
                acc = local.expect("accumulator present");
            } else {
                let grain = DEFAULT_GRAIN.max(count / (pool.threads() * 8).max(1));
                let nchunks = count.div_ceil(grain);
                let partials: Vec<parking_lot::Mutex<Option<T>>> = (0..nchunks)
                    .map(|_| parking_lot::Mutex::new(None))
                    .collect();
                let gen = &part.generator;
                let body = &part.body;
                let opr = &op;
                let neutral_ref = &neutral;
                pool.parallel_for(count, grain, |range| {
                    let chunk = range.start / grain;
                    let mut local = Some(neutral_ref.clone());
                    gen.for_each_in(range, |idx| {
                        let prev = local.take().expect("accumulator present");
                        local = Some(opr(prev, body(idx)));
                    });
                    *partials[chunk].lock() = local;
                });
                for cell in partials {
                    if let Some(v) = cell.into_inner() {
                        acc = op(acc, v);
                    }
                }
            }
        }
        acc
    }
}

/// Raw-pointer wrapper asserting cross-thread shareability for the
/// disjoint-write pattern in [`WithLoop::fill`].
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Convenience: the paper's first example,
/// `with { (lb <= iv < ub) : const } : genarray(shape, default)`.
pub fn genarray_const<T: Clone + Send + Sync>(
    shape: impl Into<Shape>,
    default: T,
    lower: Vec<usize>,
    upper: Vec<usize>,
    value: T,
) -> Result<Array<T>> {
    WithLoop::new()
        .gen_const(Generator::range(lower, upper)?, value)
        .genarray(shape, default)
}

/// Elementwise map as a modarray with-loop over the full index space —
/// how SaC defines its elementwise standard library.
pub fn map_with<T, U>(a: &Array<T>, f: impl Fn(&T) -> U + Send + Sync) -> Result<Array<U>>
where
    T: Clone + Send + Sync,
    U: Clone + Send + Sync + Default,
{
    let shape = a.shape().clone();
    WithLoop::new()
        .gen(Generator::full(&shape), move |iv| f(a.at(iv)))
        .genarray(shape, U::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ArrayError;

    fn g(lo: Vec<usize>, hi: Vec<usize>) -> Generator {
        Generator::range(lo, hi).unwrap()
    }

    // --- The worked examples of Section 2, verbatim. ---

    #[test]
    fn paper_example_uniform_42_matrix() {
        // with { ([0,0] <= iv < [3,5]) : 42 } : genarray([3,5], 0)
        let a = WithLoop::new()
            .gen_const(g(vec![0, 0], vec![3, 5]), 42)
            .genarray_seq([3, 5], 0)
            .unwrap();
        assert_eq!(a.shape(), &Shape::matrix(3, 5));
        assert!(a.data().iter().all(|&x| x == 42));
    }

    #[test]
    fn paper_example_iota_vector() {
        // with { ([0] <= iv < [5]) : iv[0] } : genarray([5], 0)
        let a = WithLoop::new()
            .gen(g(vec![0], vec![5]), |iv| iv[0] as i32)
            .genarray_seq([5], 0)
            .unwrap();
        assert_eq!(a.data(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn paper_example_partial_cover_default() {
        // with { ([1] <= iv < [4]) : 42 } : genarray([5], 0) == [0,42,42,42,0]
        let a = WithLoop::new()
            .gen_const(g(vec![1], vec![4]), 42)
            .genarray_seq([5], 0)
            .unwrap();
        assert_eq!(a.data(), &[0, 42, 42, 42, 0]);
    }

    #[test]
    fn paper_example_overlap_later_generator_wins() {
        // with { ([1] <= iv < [4]) : 1; ([3] <= iv < [5]) : 2 }
        //   : genarray([6], 0) == [0,1,1,2,2,0]
        let a = WithLoop::new()
            .gen_const(g(vec![1], vec![4]), 1)
            .gen_const(g(vec![3], vec![5]), 2)
            .genarray_seq([6], 0)
            .unwrap();
        assert_eq!(a.data(), &[0, 1, 1, 2, 2, 0]);
    }

    #[test]
    fn paper_example_modarray() {
        // A == [0,1,1,2,2,0]; with { ([0] <= iv < [3]) : 3 } : modarray(A)
        //   == [3,3,3,2,2,0]
        let a = Array::from_vec(vec![0, 1, 1, 2, 2, 0]);
        let b = WithLoop::new()
            .gen_const(g(vec![0], vec![3]), 3)
            .modarray_seq(&a)
            .unwrap();
        assert_eq!(b.data(), &[3, 3, 3, 2, 2, 0]);
        // The original is untouched (stateless arrays).
        assert_eq!(a.data(), &[0, 1, 1, 2, 2, 0]);
    }

    // --- Engine-level behaviour. ---

    #[test]
    fn genarray_rejects_generator_outside_shape() {
        let r = WithLoop::new()
            .gen_const(g(vec![0], vec![10]), 1)
            .genarray_seq([5], 0);
        assert!(matches!(r, Err(ArrayError::BadGenerator(_))));
    }

    #[test]
    fn modarray_on_unique_base_is_in_place() {
        let a = Array::from_vec(vec![1, 2, 3, 4]);
        let before = a.data().as_ptr();
        let b = WithLoop::new()
            .gen_const(g(vec![0], vec![1]), 9)
            .modarray_seq(&a)
            .unwrap();
        // `a` is still alive so a copy must have happened...
        assert_ne!(b.data().as_ptr(), before);
        assert_eq!(a.data(), &[1, 2, 3, 4]);
        // ...but when the base is uniquely owned, storage is reused.
        let c = WithLoop::new()
            .gen_const(g(vec![0], vec![1]), 7)
            .modarray_seq(&b)
            .unwrap();
        let _ = c;
    }

    #[test]
    fn parallel_equals_sequential_genarray() {
        let pool = Pool::new(4);
        let shape = [64, 256];
        let make = |eval| {
            WithLoop::new()
                .gen(g(vec![0, 0], vec![64, 256]), |iv| {
                    (iv[0] * 1000 + iv[1]) as i64
                })
                .gen_const(g(vec![10, 10], vec![20, 200]), -1)
                .genarray_on(&pool, eval, shape, 0i64)
                .unwrap()
        };
        assert_eq!(make(Eval::Sequential), make(Eval::Auto));
    }

    #[test]
    fn parallel_equals_sequential_modarray() {
        let pool = Pool::new(4);
        let base = Array::fill([128, 128], 5i32);
        let make = |eval| {
            WithLoop::new()
                .gen(g(vec![3, 0], vec![100, 128]), |iv| (iv[0] + iv[1]) as i32)
                .modarray_on(&pool, eval, &base)
                .unwrap()
        };
        assert_eq!(make(Eval::Sequential), make(Eval::Auto));
    }

    #[test]
    fn fold_sums_generator_values() {
        // Sum of 0..100 over a vector generator.
        let total = WithLoop::new()
            .gen(g(vec![0], vec![100]), |iv| iv[0] as i64)
            .fold_seq(0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn fold_parallel_equals_sequential() {
        let pool = Pool::new(4);
        let run = |eval| {
            WithLoop::new()
                .gen(g(vec![0, 0], vec![300, 300]), |iv| (iv[0] * iv[1]) as i64)
                .fold_on(&pool, eval, 0, |a, b| a + b)
        };
        assert_eq!(run(Eval::Sequential), run(Eval::Auto));
    }

    #[test]
    fn fold_multiple_generators_accumulate_in_order() {
        // String concat is associative but not commutative: chunk-order
        // combination must preserve generator-major order.
        let s = WithLoop::new()
            .gen(g(vec![0], vec![3]), |iv| iv[0].to_string())
            .gen(g(vec![0], vec![2]), |iv| format!("x{}", iv[0]))
            .fold_seq(String::new(), |a, b| a + &b);
        assert_eq!(s, "012x0x1");
    }

    #[test]
    fn map_with_matches_direct_map() {
        let a = Array::new([4, 4], (0..16).collect::<Vec<i32>>()).unwrap();
        let b = map_with(&a, |x| x * 2).unwrap();
        assert_eq!(b, a.map(|x| x * 2));
    }

    #[test]
    fn genarray_const_helper() {
        let a = genarray_const([5], 0, vec![1], vec![4], 42).unwrap();
        assert_eq!(a.data(), &[0, 42, 42, 42, 0]);
    }

    #[test]
    fn empty_generator_contributes_nothing() {
        let a = WithLoop::new()
            .gen_const(g(vec![3], vec![3]), 9)
            .genarray_seq([4], 1)
            .unwrap();
        assert_eq!(a.data(), &[1, 1, 1, 1]);
        let total = WithLoop::new()
            .gen(g(vec![5], vec![5]), |_| 1i32)
            .fold_seq(0, |a, b| a + b);
        assert_eq!(total, 0);
    }

    #[test]
    fn zero_generator_withloop_is_pure_default() {
        let a: Array<i32> = WithLoop::new().genarray_seq([3, 3], 7).unwrap();
        assert!(a.data().iter().all(|&x| x == 7));
    }

    #[test]
    fn large_parallel_genarray_is_correct() {
        // Big enough to actually engage the pool (>= PAR_THRESHOLD).
        let pool = Pool::new(4);
        let n = 200_000usize;
        let a = WithLoop::new()
            .gen(g(vec![0], vec![n]), |iv| iv[0] as u64)
            .genarray_on(&pool, Eval::Auto, [n], 0u64)
            .unwrap();
        assert!(a.data().iter().enumerate().all(|(i, &v)| v == i as u64));
    }
}
