//! Derived array operations, defined as with-loops.
//!
//! Section 2 of the paper shows how SaC's standard library is built:
//! "One purpose of with-loops is to serve as an implementation vehicle
//! for universally applicable array operations", giving vector
//! concatenation `++` as the example. This module follows that recipe —
//! every operation here is a thin function abstraction around a
//! with-loop, exactly as the paper's `(++)` definition.

use crate::array::Array;
use crate::error::{ArrayError, Result};
use crate::generator::Generator;
use crate::shape::Shape;
use crate::withloop::WithLoop;

/// Vector concatenation — the paper's `(++)` operator, transcribed:
///
/// ```text
/// int[.] (++) (int[.] a, int[.] b)
/// {
///   rshp = shape(a) + shape(b);
///   res = with {([0] <= iv < shape(a)) : a[iv];
///               (shape(a) <= iv < rshp) : b[iv-shape(a)];
///          }: genarray( rshp, 0);
///   return( res);
/// }
/// ```
pub fn concat<T: Clone + Send + Sync + Default>(a: &Array<T>, b: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 || b.dim() != 1 {
        return Err(ArrayError::ShapeMismatch {
            expected: Shape::vector(0),
            actual: if a.dim() != 1 {
                a.shape().clone()
            } else {
                b.shape().clone()
            },
        });
    }
    let na = a.shape().extent(0);
    let nb = b.shape().extent(0);
    let rshp = na + nb;
    WithLoop::new()
        .gen(Generator::range(vec![0], vec![na])?, move |iv| {
            a.at(iv).clone()
        })
        .gen(Generator::range(vec![na], vec![rshp])?, move |iv| {
            b.at(&[iv[0] - na]).clone()
        })
        .genarray([rshp], T::default())
}

/// First `n` elements of a vector (SaC `take`).
pub fn take<T: Clone + Send + Sync + Default>(n: usize, a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 || n > a.size() {
        return Err(ArrayError::IndexOutOfBounds {
            shape: a.shape().clone(),
            index: vec![n],
        });
    }
    WithLoop::new()
        .gen(Generator::range(vec![0], vec![n])?, move |iv| {
            a.at(iv).clone()
        })
        .genarray([n], T::default())
}

/// Vector without its first `n` elements (SaC `drop`).
pub fn drop<T: Clone + Send + Sync + Default>(n: usize, a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 || n > a.size() {
        return Err(ArrayError::IndexOutOfBounds {
            shape: a.shape().clone(),
            index: vec![n],
        });
    }
    let m = a.size() - n;
    WithLoop::new()
        .gen(Generator::range(vec![0], vec![m])?, move |iv| {
            a.at(&[iv[0] + n]).clone()
        })
        .genarray([m], T::default())
}

/// Sum of all elements (fold with-loop over the full index space).
pub fn sum(a: &Array<i64>) -> i64 {
    WithLoop::new()
        .gen(Generator::full(a.shape()), |iv| *a.at(iv))
        .fold(0, |x, y| x + y)
}

/// Number of `true` elements — the shape of query `findMinTrues` needs.
pub fn count_true(a: &Array<bool>) -> usize {
    WithLoop::new()
        .gen(Generator::full(a.shape()), |iv| usize::from(*a.at(iv)))
        .fold(0, |x, y| x + y)
}

/// True iff any element satisfies the predicate.
pub fn any<T: Clone + Send + Sync>(a: &Array<T>, pred: impl Fn(&T) -> bool + Send + Sync) -> bool {
    WithLoop::new()
        .gen(Generator::full(a.shape()), move |iv| pred(a.at(iv)))
        .fold(false, |x, y| x || y)
}

/// True iff all elements satisfy the predicate.
pub fn all<T: Clone + Send + Sync>(a: &Array<T>, pred: impl Fn(&T) -> bool + Send + Sync) -> bool {
    WithLoop::new()
        .gen(Generator::full(a.shape()), move |iv| pred(a.at(iv)))
        .fold(true, |x, y| x && y)
}

/// Index of the first element (row-major) equal to `needle`, or `None`.
/// This is the paper's `findFirst( 0, board)` generalised.
pub fn find_first<T: Clone + Send + Sync + PartialEq>(
    a: &Array<T>,
    needle: &T,
) -> Option<Vec<usize>> {
    // A fold computing the minimum row-major position of a match. The
    // operator is associative and commutative, so parallel folding is
    // safe and still returns the *first* match.
    let pos = WithLoop::new()
        .gen(Generator::full(a.shape()), move |iv| {
            if a.at(iv) == needle {
                a.shape().linearize(iv).unwrap()
            } else {
                usize::MAX
            }
        })
        .fold(usize::MAX, |x, y| x.min(y));
    if pos == usize::MAX {
        None
    } else {
        Some(a.shape().delinearize(pos))
    }
}

/// Argmin over elements mapped through `key`, with `filter` selecting
/// eligible positions; ties broken by row-major position. Returns
/// `None` when no position is eligible. Backs `findMinTrues`.
pub fn argmin_by<T, K>(
    a: &Array<T>,
    key: impl Fn(&[usize], &T) -> K + Send + Sync,
    eligible: impl Fn(&[usize], &T) -> bool + Send + Sync,
) -> Option<Vec<usize>>
where
    T: Clone + Send + Sync,
    K: Ord + Clone + Send + Sync,
{
    let best = WithLoop::new()
        .gen(Generator::full(a.shape()), move |iv| {
            let v = a.at(iv);
            if eligible(iv, v) {
                Some((key(iv, v), a.shape().linearize(iv).unwrap()))
            } else {
                None
            }
        })
        .fold(None, |x: Option<(K, usize)>, y| match (x, y) {
            (None, y) => y,
            (x, None) => x,
            (Some(a), Some(b)) => Some(if b < a { b } else { a }),
        });
    best.map(|(_, lin)| a.shape().delinearize(lin))
}

/// Matrix transpose via genarray with-loop.
pub fn transpose<T: Clone + Send + Sync + Default>(a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 2 {
        return Err(ArrayError::BadAxis {
            rank: a.dim(),
            axis: 1,
        });
    }
    let (r, c) = (a.shape().extent(0), a.shape().extent(1));
    WithLoop::new()
        .gen(Generator::range(vec![0, 0], vec![c, r])?, move |iv| {
            a.at(&[iv[1], iv[0]]).clone()
        })
        .genarray([c, r], T::default())
}

/// Sum along one axis of a matrix or higher-rank array: the result
/// drops that axis. Defined as a genarray whose body is a fold
/// with-loop over the reduced axis — the nested-with-loop idiom SaC's
/// standard library uses for axis reductions.
pub fn sum_axis(a: &Array<i64>, axis: usize) -> Result<Array<i64>> {
    if axis >= a.dim() {
        return Err(ArrayError::BadAxis {
            rank: a.dim(),
            axis,
        });
    }
    let in_shape = a.shape().clone();
    let out_extents: Vec<usize> = in_shape
        .extents()
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != axis)
        .map(|(_, &e)| e)
        .collect();
    let reduce_n = in_shape.extent(axis);
    let out_shape = Shape::new(out_extents.clone());
    WithLoop::new()
        .gen(Generator::full(&out_shape), move |iv| {
            // Rebuild the full index with the reduced axis spliced in.
            let mut full: Vec<usize> = Vec::with_capacity(iv.len() + 1);
            full.extend_from_slice(&iv[..axis]);
            full.push(0);
            full.extend_from_slice(&iv[axis..]);
            let mut acc = 0i64;
            for k in 0..reduce_n {
                full[axis] = k;
                acc += *a.at(&full);
            }
            acc
        })
        .genarray(out_shape, 0)
}

/// Cyclic rotation of a vector by `offset` positions (SaC `rotate`):
/// positive offsets move elements towards higher indices.
pub fn rotate<T: Clone + Send + Sync + Default>(offset: i64, a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 {
        return Err(ArrayError::BadAxis {
            rank: a.dim(),
            axis: 0,
        });
    }
    let n = a.size();
    if n == 0 {
        return Ok(a.clone());
    }
    let shift = offset.rem_euclid(n as i64) as usize;
    WithLoop::new()
        .gen(Generator::range(vec![0], vec![n])?, move |iv| {
            a.at(&[(iv[0] + n - shift) % n]).clone()
        })
        .genarray([n], T::default())
}

/// Non-cyclic shift of a vector (SaC `shift`): vacated positions take
/// the default value.
pub fn shift<T: Clone + Send + Sync>(offset: i64, default: T, a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 {
        return Err(ArrayError::BadAxis {
            rank: a.dim(),
            axis: 0,
        });
    }
    let n = a.size() as i64;
    let (lo, hi) = if offset >= 0 {
        (offset.min(n), n)
    } else {
        (0, (n + offset).max(0))
    };
    WithLoop::new()
        .gen(
            Generator::range(vec![lo.max(0) as usize], vec![hi.max(0) as usize])?,
            move |iv| a.at(&[(iv[0] as i64 - offset) as usize]).clone(),
        )
        .genarray([n as usize], default)
}

/// Tiles a vector to a given length by cyclic repetition (SaC `tile`
/// restricted to rank 1).
pub fn tile<T: Clone + Send + Sync + Default>(len: usize, a: &Array<T>) -> Result<Array<T>> {
    if a.dim() != 1 {
        return Err(ArrayError::BadAxis {
            rank: a.dim(),
            axis: 0,
        });
    }
    if a.size() == 0 {
        return Err(ArrayError::EmptyArray("tile"));
    }
    let n = a.size();
    WithLoop::new()
        .gen(Generator::range(vec![0], vec![len])?, move |iv| {
            a.at(&[iv[0] % n]).clone()
        })
        .genarray([len], T::default())
}

/// Masked merge (SaC `where`): elementwise `mask ? a : b`.
pub fn select_where<T: Clone + Send + Sync + Default>(
    mask: &Array<bool>,
    a: &Array<T>,
    b: &Array<T>,
) -> Result<Array<T>> {
    if mask.shape() != a.shape() || a.shape() != b.shape() {
        return Err(ArrayError::ShapeMismatch {
            expected: mask.shape().clone(),
            actual: if mask.shape() != a.shape() {
                a.shape().clone()
            } else {
                b.shape().clone()
            },
        });
    }
    WithLoop::new()
        .gen(Generator::full(mask.shape()), move |iv| {
            if *mask.at(iv) {
                a.at(iv).clone()
            } else {
                b.at(iv).clone()
            }
        })
        .genarray(mask.shape().clone(), T::default())
}

/// Matrix product, the classic nested with-loop (and the shape of the
/// NAS-benchmark kernels the SaC papers cite).
pub fn matmul(a: &Array<i64>, b: &Array<i64>) -> Result<Array<i64>> {
    if a.dim() != 2 || b.dim() != 2 {
        return Err(ArrayError::BadAxis {
            rank: a.dim().min(b.dim()),
            axis: 1,
        });
    }
    let (m, ka) = (a.shape().extent(0), a.shape().extent(1));
    let (kb, n) = (b.shape().extent(0), b.shape().extent(1));
    if ka != kb {
        return Err(ArrayError::ShapeMismatch {
            expected: a.shape().clone(),
            actual: b.shape().clone(),
        });
    }
    WithLoop::new()
        .gen(Generator::range(vec![0, 0], vec![m, n])?, move |iv| {
            let (i, j) = (iv[0], iv[1]);
            let mut acc = 0i64;
            for k in 0..ka {
                acc += a.at(&[i, k]) * b.at(&[k, j]);
            }
            acc
        })
        .genarray([m, n], 0)
}

/// Elementwise addition of same-shaped arrays, as a with-loop.
pub fn add(a: &Array<i64>, b: &Array<i64>) -> Result<Array<i64>> {
    if a.shape() != b.shape() {
        return Err(ArrayError::ShapeMismatch {
            expected: a.shape().clone(),
            actual: b.shape().clone(),
        });
    }
    WithLoop::new()
        .gen(Generator::full(a.shape()), move |iv| a.at(iv) + b.at(iv))
        .genarray(a.shape().clone(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_matches_paper_definition() {
        let a = Array::from_vec(vec![1, 2, 3]);
        let b = Array::from_vec(vec![4, 5]);
        let c = concat(&a, &b).unwrap();
        assert_eq!(c.data(), &[1, 2, 3, 4, 5]);
        assert_eq!(c.shape(), &Shape::vector(5));
    }

    #[test]
    fn concat_with_empty_vectors() {
        let a = Array::from_vec(Vec::<i32>::new());
        let b = Array::from_vec(vec![1, 2]);
        assert_eq!(concat(&a, &b).unwrap().data(), &[1, 2]);
        assert_eq!(concat(&b, &a).unwrap().data(), &[1, 2]);
        assert_eq!(concat(&a, &a).unwrap().size(), 0);
    }

    #[test]
    fn concat_rejects_matrices() {
        let m = Array::fill([2, 2], 0);
        let v = Array::from_vec(vec![1]);
        assert!(concat(&m, &v).is_err());
    }

    #[test]
    fn take_drop_roundtrip() {
        let a = Array::from_vec(vec![1, 2, 3, 4, 5]);
        let t = take(2, &a).unwrap();
        let d = drop(2, &a).unwrap();
        assert_eq!(t.data(), &[1, 2]);
        assert_eq!(d.data(), &[3, 4, 5]);
        assert_eq!(concat(&t, &d).unwrap(), a);
        assert!(take(6, &a).is_err());
        assert!(drop(6, &a).is_err());
    }

    #[test]
    fn sum_and_count() {
        let a = Array::new([2, 3], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(sum(&a), 21);
        let b = Array::new([2, 2], vec![true, false, true, true]).unwrap();
        assert_eq!(count_true(&b), 3);
    }

    #[test]
    fn any_all() {
        let a = Array::from_vec(vec![1, 2, 3]);
        assert!(any(&a, |&x| x == 2));
        assert!(!any(&a, |&x| x == 9));
        assert!(all(&a, |&x| x > 0));
        assert!(!all(&a, |&x| x > 1));
        // Empty arrays: any is false, all is true (fold neutrals).
        let e = Array::from_vec(Vec::<i32>::new());
        assert!(!any(&e, |_| true));
        assert!(all(&e, |_| false));
    }

    #[test]
    fn find_first_row_major() {
        let a = Array::new([3, 3], vec![1, 1, 0, 1, 0, 1, 0, 1, 1]).unwrap();
        assert_eq!(find_first(&a, &0), Some(vec![0, 2]));
        assert_eq!(find_first(&a, &7), None);
    }

    #[test]
    fn argmin_by_selects_minimum_with_row_major_tiebreak() {
        let a = Array::new([2, 3], vec![5, 3, 9, 3, 7, 1]).unwrap();
        // Global minimum.
        assert_eq!(argmin_by(&a, |_, &v| v, |_, _| true), Some(vec![1, 2]));
        // Tie between the two 3s -> earlier position wins.
        assert_eq!(argmin_by(&a, |_, &v| v, |_, &v| v == 3), Some(vec![0, 1]));
        // Nothing eligible.
        assert_eq!(argmin_by(&a, |_, &v| v, |_, _| false), None);
    }

    #[test]
    fn transpose_involution() {
        let a = Array::new([2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        let t = transpose(&a).unwrap();
        assert_eq!(t.shape(), &Shape::matrix(3, 2));
        assert_eq!(t.data(), &[1, 4, 2, 5, 3, 6]);
        assert_eq!(transpose(&t).unwrap(), a);
    }

    #[test]
    fn sum_axis_matrix() {
        let a = Array::new([2, 3], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
        // Sum over rows (axis 0): column totals.
        assert_eq!(sum_axis(&a, 0).unwrap().data(), &[5, 7, 9]);
        // Sum over columns (axis 1): row totals.
        assert_eq!(sum_axis(&a, 1).unwrap().data(), &[6, 15]);
        assert!(sum_axis(&a, 2).is_err());
    }

    #[test]
    fn sum_axis_rank3_and_consistency_with_sum() {
        let a = Array::new([2, 2, 2], (1..=8).collect::<Vec<i64>>()).unwrap();
        let s0 = sum_axis(&a, 0).unwrap();
        assert_eq!(s0.shape().extents(), &[2, 2]);
        assert_eq!(s0.data(), &[6, 8, 10, 12]);
        // Repeated axis reduction equals the total sum.
        let s01 = sum_axis(&s0, 0).unwrap();
        let s012 = sum_axis(&s01, 0).unwrap();
        assert_eq!(s012.unwrap_scalar().unwrap(), sum(&a));
    }

    #[test]
    fn rotate_cyclic() {
        let a = Array::from_vec(vec![1, 2, 3, 4, 5]);
        assert_eq!(rotate(1, &a).unwrap().data(), &[5, 1, 2, 3, 4]);
        assert_eq!(rotate(-1, &a).unwrap().data(), &[2, 3, 4, 5, 1]);
        assert_eq!(rotate(5, &a).unwrap(), a);
        assert_eq!(rotate(7, &a).unwrap(), rotate(2, &a).unwrap());
        let empty = Array::from_vec(Vec::<i32>::new());
        assert_eq!(rotate(3, &empty).unwrap().size(), 0);
    }

    #[test]
    fn shift_fills_with_default() {
        let a = Array::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(shift(1, 0, &a).unwrap().data(), &[0, 1, 2, 3]);
        assert_eq!(shift(-2, 9, &a).unwrap().data(), &[3, 4, 9, 9]);
        assert_eq!(shift(0, 0, &a).unwrap(), a);
        // Shifting past the length clears everything.
        assert_eq!(shift(10, 7, &a).unwrap().data(), &[7, 7, 7, 7]);
        assert_eq!(shift(-10, 7, &a).unwrap().data(), &[7, 7, 7, 7]);
    }

    #[test]
    fn tile_repeats_cyclically() {
        let a = Array::from_vec(vec![1, 2, 3]);
        assert_eq!(tile(7, &a).unwrap().data(), &[1, 2, 3, 1, 2, 3, 1]);
        assert_eq!(tile(2, &a).unwrap().data(), &[1, 2]);
        assert_eq!(tile(0, &a).unwrap().size(), 0);
        let empty = Array::from_vec(Vec::<i32>::new());
        assert!(tile(3, &empty).is_err());
    }

    #[test]
    fn select_where_merges_by_mask() {
        let mask = Array::from_vec(vec![true, false, true]);
        let a = Array::from_vec(vec![1, 2, 3]);
        let b = Array::from_vec(vec![-1, -2, -3]);
        assert_eq!(select_where(&mask, &a, &b).unwrap().data(), &[1, -2, 3]);
        let short = Array::from_vec(vec![0]);
        assert!(select_where(&mask, &a, &short).is_err());
    }

    #[test]
    fn matmul_small_and_identity() {
        let a = Array::new([2, 3], vec![1i64, 2, 3, 4, 5, 6]).unwrap();
        let b = Array::new([3, 2], vec![7i64, 8, 9, 10, 11, 12]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().extents(), &[2, 2]);
        assert_eq!(c.data(), &[58, 64, 139, 154]);
        // Identity: b (3x2) times I2 is b.
        let id = WithLoop::new()
            .gen(Generator::range(vec![0, 0], vec![2, 2]).unwrap(), |iv| {
                i64::from(iv[0] == iv[1])
            })
            .genarray([2, 2], 0i64)
            .unwrap();
        assert_eq!(matmul(&b, &id).unwrap(), b);
        // Shape mismatch.
        assert!(matmul(&a, &a).is_err());
    }

    #[test]
    fn matmul_transpose_law() {
        // (A B)^T == B^T A^T
        let a = Array::new([2, 3], vec![1i64, 0, 2, -1, 3, 1]).unwrap();
        let b = Array::new([3, 2], vec![3i64, 1, 2, 1, 1, 0]).unwrap();
        let lhs = transpose(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose(&b).unwrap(), &transpose(&a).unwrap()).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn add_elementwise() {
        let a = Array::from_vec(vec![1i64, 2, 3]);
        let b = Array::from_vec(vec![10i64, 20, 30]);
        assert_eq!(add(&a, &b).unwrap().data(), &[11, 22, 33]);
        let c = Array::fill([2, 2], 0i64);
        assert!(add(&a, &c).is_err());
    }
}
