//! Error type for array operations.

use crate::shape::Shape;
use std::fmt;

/// Errors raised by shape-checked array operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// An index vector had the wrong rank or was out of bounds.
    IndexOutOfBounds { shape: Shape, index: Vec<usize> },
    /// Two arrays (or an array and a shape) disagreed on shape where
    /// agreement is required.
    ShapeMismatch { expected: Shape, actual: Shape },
    /// A generator's bound vectors disagree in length, or a bound does not
    /// match the rank it is used at.
    BadGenerator(String),
    /// Data length does not match the shape's element count.
    DataLengthMismatch { shape: Shape, len: usize },
    /// A reshape target has a different element count.
    ReshapeSizeMismatch { from: Shape, to: Shape },
    /// An operation that requires a non-empty array received an empty one.
    EmptyArray(&'static str),
    /// Axis out of range for the array's rank.
    BadAxis { rank: usize, axis: usize },
}

impl fmt::Display for ArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrayError::IndexOutOfBounds { shape, index } => {
                write!(f, "index {index:?} out of bounds for shape {shape}")
            }
            ArrayError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            ArrayError::BadGenerator(msg) => write!(f, "bad generator: {msg}"),
            ArrayError::DataLengthMismatch { shape, len } => {
                write!(
                    f,
                    "data length {len} does not match shape {shape} (size {})",
                    shape.size()
                )
            }
            ArrayError::ReshapeSizeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} (size {}) to {to} (size {})",
                    from.size(),
                    to.size()
                )
            }
            ArrayError::EmptyArray(op) => write!(f, "{op} requires a non-empty array"),
            ArrayError::BadAxis { rank, axis } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl std::error::Error for ArrayError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ArrayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ArrayError::IndexOutOfBounds {
            shape: Shape::matrix(2, 2),
            index: vec![5, 0],
        };
        assert!(e.to_string().contains("[5, 0]"));
        assert!(e.to_string().contains("[2,2]"));

        let e = ArrayError::ReshapeSizeMismatch {
            from: Shape::vector(6),
            to: Shape::matrix(2, 2),
        };
        assert!(e.to_string().contains("size 6"));
        assert!(e.to_string().contains("size 4"));
    }
}
