//! The options cube and `addNumber`.
//!
//! "The central idea is to keep a 9 by 9 matrix of 9-element boolean
//! vectors that represent the possible choices for each given
//! position. We start out from an array containing true values only.
//! Whenever we add a new number to the board, we eliminate all those
//! options that are affected due to the 3 rules" (paper, Section 3).
//!
//! [`add_number`] is the paper's `addNumber`, transcribed with-loop
//! for with-loop: a single `modarray` with four generators falsifying
//! the position itself, the row, the column and the sub-board — each
//! one an inclusive-bound line or box exactly as in the paper's
//! listing (generalised from the literal 3/8 to `n`/`n²-1`).

use crate::board::Board;
use sacarray::{Array, Generator, WithLoop};

/// The options cube `bool[n², n², n²]`: `opts[i, j, k]` says whether
/// number `k+1` may still be placed at `(i, j)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Opts {
    n: usize,
    arr: Array<bool>,
}

impl Opts {
    /// The all-true cube for an empty board.
    pub fn all_true(n: usize) -> Opts {
        let side = n * n;
        Opts {
            n,
            arr: Array::fill([side, side, side], true),
        }
    }

    /// Wraps an existing cube.
    pub fn from_array(n: usize, arr: Array<bool>) -> Opts {
        let side = n * n;
        assert_eq!(arr.shape().extents(), &[side, side, side]);
        Opts { n, arr }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn side(&self) -> usize {
        self.n * self.n
    }

    /// The underlying array (what travels in an `opts` field).
    pub fn array(&self) -> &Array<bool> {
        &self.arr
    }

    /// Is number `k` (1-based) still an option at (i, j)?
    pub fn allows(&self, i: usize, j: usize, k: i64) -> bool {
        *self.arr.at(&[i, j, (k - 1) as usize])
    }

    /// Options remaining at (i, j).
    pub fn count_at(&self, i: usize, j: usize) -> usize {
        let side = self.side();
        (0..side).filter(|&k| *self.arr.at(&[i, j, k])).count()
    }

    /// The candidate numbers (1-based) at (i, j).
    pub fn candidates(&self, i: usize, j: usize) -> Vec<i64> {
        let side = self.side();
        (0..side)
            .filter(|&k| *self.arr.at(&[i, j, k]))
            .map(|k| k as i64 + 1)
            .collect()
    }
}

/// The paper's `addNumber`, verbatim modulo generalisation to n²×n²:
///
/// ```text
/// int[*], bool[*] addNumber( int i, int j, int k,
///                            int[*] board, bool[*] opts)
/// {
///   board[i,j] = k;
///   k = k-1; is = (i/3)*3; js = (j/3)*3;
///   opts = with {
///     ([i,j,0]   <= iv <= [i,j,8])       : false;
///     ([i,0,k]   <= iv <= [i,8,k])       : false;
///     ([0,j,k]   <= iv <= [8,j,k])       : false;
///     ([is,js,k] <= iv <= [is+2,js+2,k]) : false;
///   } : modarray( opts);
///   return( board, opts);
/// }
/// ```
pub fn add_number(i: usize, j: usize, k: i64, board: &Board, opts: &Opts) -> (Board, Opts) {
    let n = board.n();
    let side = board.side();
    debug_assert!(k >= 1 && k <= side as i64);
    let board2 = board.with(i, j, k);
    let k0 = (k - 1) as usize;
    let is = (i / n) * n;
    let js = (j / n) * n;
    let arr = WithLoop::new()
        // All options at position (i, j).
        .gen_const(
            Generator::range_inclusive(vec![i, j, 0], vec![i, j, side - 1]).unwrap(),
            false,
        )
        // Option k along row i.
        .gen_const(
            Generator::range_inclusive(vec![i, 0, k0], vec![i, side - 1, k0]).unwrap(),
            false,
        )
        // Option k along column j.
        .gen_const(
            Generator::range_inclusive(vec![0, j, k0], vec![side - 1, j, k0]).unwrap(),
            false,
        )
        // Option k within the n×n sub-board.
        .gen_const(
            Generator::range_inclusive(vec![is, js, k0], vec![is + n - 1, js + n - 1, k0]).unwrap(),
            false,
        )
        .modarray(opts.array())
        .expect("generators are within the opts cube by construction");
    (board2, Opts::from_array(n, arr))
}

/// The initialisation phase: replays every pre-determined number of a
/// puzzle through [`add_number`] — this is what the `computeOpts` box
/// does ("realises the initialisation of the options arrays by
/// repeatedly calling the function addNumber", paper, Section 5).
pub fn compute_opts(puzzle: &Board) -> (Board, Opts) {
    let mut board = Board::empty(puzzle.n());
    let mut opts = Opts::all_true(puzzle.n());
    for (i, j, v) in puzzle.placed_cells() {
        let (b, o) = add_number(i, j, v, &board, &opts);
        board = b;
        opts = o;
    }
    (board, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_true_initially() {
        let o = Opts::all_true(3);
        assert_eq!(o.count_at(4, 4), 9);
        assert!(o.allows(0, 0, 1));
        assert!(o.allows(8, 8, 9));
        assert_eq!(o.candidates(3, 7), (1..=9).collect::<Vec<i64>>());
    }

    #[test]
    fn add_number_eliminates_position_row_col_box() {
        let b = Board::empty(3);
        let o = Opts::all_true(3);
        let (b2, o2) = add_number(4, 4, 5, &b, &o);
        assert_eq!(b2.get(4, 4), 5);
        // The position itself: every option gone.
        assert_eq!(o2.count_at(4, 4), 0);
        // Row 4: option 5 gone everywhere.
        for j in 0..9 {
            assert!(!o2.allows(4, j, 5), "row elimination failed at col {j}");
        }
        // Column 4: option 5 gone everywhere.
        for i in 0..9 {
            assert!(!o2.allows(i, 4, 5), "col elimination failed at row {i}");
        }
        // Centre sub-board: option 5 gone.
        for i in 3..6 {
            for j in 3..6 {
                assert!(!o2.allows(i, j, 5), "box elimination failed at ({i},{j})");
            }
        }
        // Unrelated cells keep option 5 and everything else: (0,0) is
        // not in row 4, column 4 or the centre box.
        assert!(o2.allows(0, 0, 5));
        assert_eq!(o2.count_at(0, 0), 9);
    }

    #[test]
    fn unrelated_cell_count_is_untouched() {
        let b = Board::empty(3);
        let o = Opts::all_true(3);
        let (_, o2) = add_number(4, 4, 5, &b, &o);
        assert_eq!(o2.count_at(0, 0), 9);
        // A cell sharing only the row loses exactly one option.
        assert_eq!(o2.count_at(4, 0), 8);
        // A cell sharing only the box loses exactly one option.
        assert_eq!(o2.count_at(3, 3), 8);
    }

    #[test]
    fn add_number_is_functional() {
        let b = Board::empty(3);
        let o = Opts::all_true(3);
        let (_, _) = add_number(0, 0, 1, &b, &o);
        // Originals untouched.
        assert_eq!(b.get(0, 0), 0);
        assert_eq!(o.count_at(0, 0), 9);
    }

    #[test]
    fn compute_opts_replays_clues() {
        let puzzle = Board::parse(
            2,
            "1 . . .\n\
             . . . .\n\
             . . . .\n\
             . . . 2",
        )
        .unwrap();
        let (board, opts) = compute_opts(&puzzle);
        assert_eq!(board, puzzle);
        // (0,0) holds 1: no options left there.
        assert_eq!(opts.count_at(0, 0), 0);
        // (0,1) shares row and box with the 1: 1 is gone, 2/3/4 stay...
        // minus the 2 in column? (0,1) is column 1, the 2 is column 3 —
        // unaffected. So 3 candidates.
        assert_eq!(opts.candidates(0, 1), vec![2, 3, 4]);
        // (3,0) shares column with the 1 and row with the 2.
        assert_eq!(opts.candidates(3, 0), vec![3, 4]);
    }

    #[test]
    fn works_on_16x16() {
        let b = Board::empty(4);
        let o = Opts::all_true(4);
        let (b2, o2) = add_number(0, 0, 16, &b, &o);
        assert_eq!(b2.get(0, 0), 16);
        assert!(!o2.allows(0, 15, 16)); // row
        assert!(!o2.allows(15, 0, 16)); // column
        assert!(!o2.allows(3, 3, 16)); // sub-board
        assert!(o2.allows(4, 4, 16)); // outside all three
        assert_eq!(o2.count_at(0, 0), 0);
    }
}
