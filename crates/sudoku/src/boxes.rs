//! S-Net box implementations for the sudoku application.
//!
//! Section 5 of the paper "shifts the recursion from the SaC level
//! to the level of S-Net": the recursive call of `solve` becomes a
//! record emitted to the next replica. This module provides the box
//! functions of Figures 1–3:
//!
//! * `computeOpts {board} -> {board, opts}` — options initialisation;
//! * `solveOneLevel` (Fig. 1) `{board, opts} -> {board, opts} | {board, <done>}`;
//! * `solveOneLevelK` (Fig. 2) `{board, opts} -> {board, opts, <k>} | {board, <done>}`;
//! * `solveOneLevelL` (Fig. 3) `{board, opts} -> {board, opts, <k>, <level>}`;
//! * `solve` (Fig. 3's tail) `{board, opts} -> {board, opts}` — the
//!   full Section 3 solver for boards that left the replicator early.
//!
//! Note on the paper's Figure 1 listing: its `snet_out(1, board, opts)`
//! on the completed branch and `snet_out(2, board, 0)` on the
//! continuing branch contradict both the box signature and the prose
//! ("outputs a record containing either the new board and its options
//! or the final board and a tag `<done>`"); we follow the prose —
//! completed boards carry `<done>`, continuing boards carry the new
//! board and options. See DESIGN.md.

use crate::board::Board;
use crate::opts::{add_number, compute_opts, Opts};
use crate::sac_solver::{find_min_trues, is_completed, is_stuck, solve, Policy, SolveStats};
use snet_runtime::Emitter;
use snet_types::{Record, Value};

/// Extracts the `board` field of a record.
pub fn board_of(rec: &Record, n: usize) -> Board {
    let arr = rec
        .field("board")
        .and_then(|v| v.as_int_array())
        .expect("record lacks a board field")
        .clone();
    Board::from_array(n, arr)
}

/// Extracts the `opts` field of a record.
pub fn opts_of(rec: &Record, n: usize) -> Opts {
    let arr = rec
        .field("opts")
        .and_then(|v| v.as_bool_array())
        .expect("record lacks an opts field")
        .clone();
    Opts::from_array(n, arr)
}

/// Builds the initial record `{board}` for a puzzle.
pub fn puzzle_record(puzzle: &Board) -> Record {
    Record::build()
        .field("board", Value::from(puzzle.cells().clone()))
        .finish()
}

/// `computeOpts`: replays the puzzle's clues through `addNumber`.
pub fn compute_opts_box(n: usize) -> impl Fn(&Record, &mut Emitter) + Send + Sync {
    move |rec, em| {
        let puzzle = board_of(rec, n);
        let (board, opts) = compute_opts(&puzzle);
        em.emit(
            Record::build()
                .field("board", Value::from(board.cells().clone()))
                .field("opts", Value::from(opts.array().clone()))
                .finish(),
        );
    }
}

/// Which figure's output convention `solve_one_level` follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelStyle {
    /// Fig. 1: `{board, opts} | {board, <done>}`.
    Plain,
    /// Fig. 2: `{board, opts, <k>} | {board, <done>}`.
    WithK,
    /// Fig. 3: `{board, opts, <k>, <level>}` always.
    WithKLevel,
}

/// `solveOneLevel`: "Instead of a recursive call solveOneLevel tries
/// to place one further number at the selected position i,j. For each
/// possible number at that position it outputs a record" (paper,
/// Section 5, Fig. 1).
pub fn solve_one_level_box(
    n: usize,
    style: LevelStyle,
) -> impl Fn(&Record, &mut Emitter) + Send + Sync {
    move |rec, em| {
        let board = board_of(rec, n);
        let opts = opts_of(rec, n);
        if is_stuck(&board, &opts) || is_completed(&board) {
            // Stuck: the search path dies, no record. (A completed
            // board cannot re-enter in a well-formed network: it left
            // through <done> or the level guard.)
            return;
        }
        let (i, j) = find_min_trues(&board, &opts).expect("non-stuck, non-complete board");
        let side = board.side();
        for k in 1..=side as i64 {
            if opts.allows(i, j, k) {
                let (b2, o2) = add_number(i, j, k, &board, &opts);
                let completed = is_completed(&b2);
                match style {
                    LevelStyle::Plain | LevelStyle::WithK => {
                        if completed {
                            em.emit(
                                Record::build()
                                    .field("board", Value::from(b2.cells().clone()))
                                    .tag("done", 1)
                                    .finish(),
                            );
                        } else {
                            let mut r = Record::build()
                                .field("board", Value::from(b2.cells().clone()))
                                .field("opts", Value::from(o2.array().clone()))
                                .finish();
                            if style == LevelStyle::WithK {
                                // "we simply output the SaC-variable k
                                // along with the board and the options"
                                r.set_tag("k", k);
                            }
                            em.emit(r);
                        }
                    }
                    LevelStyle::WithKLevel => {
                        // Fig. 3 communicates "the current level of
                        // unfolding, i.e., the number of numbers placed
                        // already, rather than a boolean flag".
                        // Completed boards have level n⁴ and exit
                        // through the guard like everything else.
                        em.emit(
                            Record::build()
                                .field("board", Value::from(b2.cells().clone()))
                                .field("opts", Value::from(o2.array().clone()))
                                .tag("k", k)
                                .tag("level", b2.placed() as i64)
                                .finish(),
                        );
                    }
                }
            }
        }
    }
}

/// The Fig. 3 tail box: the full Section 3 `solve` for records that
/// exited the replicator before completion.
pub fn solve_box(n: usize) -> impl Fn(&Record, &mut Emitter) + Send + Sync {
    move |rec, em| {
        let board = board_of(rec, n);
        let opts = opts_of(rec, n);
        let mut stats = SolveStats::default();
        let (board, opts) = solve(board, opts, Policy::MinTrues, &mut stats);
        em.emit(
            Record::build()
                .field("board", Value::from(board.cells().clone()))
                .field("opts", Value::from(opts.array().clone()))
                .finish(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puzzles;
    use snet_runtime::{Bindings, Net};

    fn run_single_box(
        n: usize,
        decl: &str,
        name: &str,
        imp: impl Fn(&Record, &mut Emitter) + Send + Sync + 'static,
        input: Record,
    ) -> Vec<Record> {
        let program = snet_lang::parse_program(&format!("{decl}\nnet main = {name};")).unwrap();
        let env = program.env().unwrap();
        let bindings = Bindings::new().bind(name, imp);
        let plan =
            snet_runtime::compile(&program.net("main").unwrap().body, &env, &bindings).unwrap();
        let net = Net::spawn(plan, Vec::new());
        net.send(input).unwrap();
        let _ = n;
        net.finish()
    }

    #[test]
    fn compute_opts_box_emits_board_and_opts() {
        let puzzle = puzzles::mini4();
        let out = run_single_box(
            2,
            "box computeOpts (board) -> (board, opts);",
            "computeOpts",
            compute_opts_box(2),
            puzzle_record(&puzzle),
        );
        assert_eq!(out.len(), 1);
        let board = board_of(&out[0], 2);
        let opts = opts_of(&out[0], 2);
        assert_eq!(board, puzzle);
        assert_eq!(opts.count_at(0, 0), 0); // clue position eliminated
    }

    #[test]
    fn solve_one_level_emits_one_record_per_candidate() {
        let puzzle = puzzles::mini4();
        let (board, opts) = compute_opts(&puzzle);
        let (i, j) = find_min_trues(&board, &opts).unwrap();
        let expected = opts.count_at(i, j);
        let input = Record::build()
            .field("board", Value::from(board.cells().clone()))
            .field("opts", Value::from(opts.array().clone()))
            .finish();
        let out = run_single_box(
            2,
            "box sol (board, opts) -> (board, opts) | (board, <done>);",
            "sol",
            solve_one_level_box(2, LevelStyle::Plain),
            input,
        );
        assert_eq!(out.len(), expected);
        // One number was placed on each emitted board.
        for r in &out {
            let b = board_of(r, 2);
            assert_eq!(b.placed(), puzzle.placed() + 1);
        }
    }

    #[test]
    fn fig2_style_adds_k_tag() {
        let puzzle = puzzles::mini4();
        let (board, opts) = compute_opts(&puzzle);
        let input = Record::build()
            .field("board", Value::from(board.cells().clone()))
            .field("opts", Value::from(opts.array().clone()))
            .finish();
        let out = run_single_box(
            2,
            "box sol (board, opts) -> (board, opts, <k>) | (board, <done>);",
            "sol",
            solve_one_level_box(2, LevelStyle::WithK),
            input,
        );
        for r in &out {
            if r.tag("done").is_none() {
                let k = r.tag("k").unwrap();
                assert!((1..=4).contains(&k));
            }
        }
    }

    #[test]
    fn fig3_style_reports_level() {
        let puzzle = puzzles::mini4();
        let (board, opts) = compute_opts(&puzzle);
        let placed = board.placed() as i64;
        let input = Record::build()
            .field("board", Value::from(board.cells().clone()))
            .field("opts", Value::from(opts.array().clone()))
            .finish();
        let out = run_single_box(
            2,
            "box sol (board, opts) -> (board, opts, <k>, <level>);",
            "sol",
            solve_one_level_box(2, LevelStyle::WithKLevel),
            input,
        );
        assert!(!out.is_empty());
        for r in &out {
            assert_eq!(r.tag("level"), Some(placed + 1));
            assert!(r.tag("k").is_some());
            assert!(r.field("opts").is_some());
        }
    }

    #[test]
    fn stuck_board_emits_nothing() {
        let puzzle = puzzles::stuck4();
        let (board, opts) = compute_opts(&puzzle);
        let input = Record::build()
            .field("board", Value::from(board.cells().clone()))
            .field("opts", Value::from(opts.array().clone()))
            .finish();
        let out = run_single_box(
            2,
            "box sol (board, opts) -> (board, opts) | (board, <done>);",
            "sol",
            solve_one_level_box(2, LevelStyle::Plain),
            input,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn solve_box_completes_partial_boards() {
        let puzzle = puzzles::mini4();
        let (board, opts) = compute_opts(&puzzle);
        let input = Record::build()
            .field("board", Value::from(board.cells().clone()))
            .field("opts", Value::from(opts.array().clone()))
            .finish();
        let out = run_single_box(
            2,
            "box solve (board, opts) -> (board, opts);",
            "solve",
            solve_box(2),
            input,
        );
        assert_eq!(out.len(), 1);
        assert!(board_of(&out[0], 2).is_solved());
    }
}
