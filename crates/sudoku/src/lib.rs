//! # sudoku — the paper's application
//!
//! "We illustrate our approach by a hybrid implementation of a sudoku
//! puzzle solver as a representative for more complex search problems"
//! (Grelck, Scholz & Shafarenko, IPPS 2007).
//!
//! Layered exactly as the paper prescribes:
//!
//! * the **computation layer** ([`board`], [`opts`], [`sac_solver`])
//!   is pure SaC-style array code — `addNumber` is a four-generator
//!   `modarray` with-loop, the solver a recursive search;
//! * the **coordination layer** ([`boxes`], [`networks`]) wraps those
//!   functions as S-Net boxes and wires the three networks of
//!   Figures 1–3 in actual S-Net surface syntax;
//! * [`gen`] and [`puzzles`] supply deterministic puzzles at any board
//!   size n²×n² — the paper's motivation for parallelism.

pub mod board;
pub mod boxes;
pub mod gen;
pub mod networks;
pub mod opts;
pub mod puzzles;
pub mod sac_solver;

pub use board::Board;
pub use networks::{solve_fig1, solve_fig2, solve_fig3, NetRun};
pub use opts::{add_number, compute_opts, Opts};
pub use sac_solver::{solve_puzzle, Policy, SolveStats};
