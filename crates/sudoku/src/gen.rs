//! Seeded puzzle generation.
//!
//! The paper's footnote motivates bigger boards: "as sudokus can be
//! played on any board of size n² × n² parallelisation becomes
//! essential for bigger puzzles". The benchmarks therefore need a
//! reproducible supply of puzzles at any size and difficulty. The
//! generator is deterministic in its seed:
//!
//! 1. fill an empty board by randomised backtracking (a full valid
//!    solution);
//! 2. remove cells in random order, keeping a removal only while the
//!    puzzle stays uniquely solvable (optional — uniqueness checking
//!    is expensive beyond 9×9).

use crate::board::Board;
use crate::opts::{add_number, Opts};
use crate::sac_solver::{count_solutions, find_min_trues, is_completed, is_stuck};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generates a complete, valid solution by randomised backtracking.
pub fn full_solution(n: usize, seed: u64) -> Board {
    let mut rng = StdRng::seed_from_u64(seed);
    let board = Board::empty(n);
    let opts = Opts::all_true(n);
    fill(board, opts, &mut rng).expect("an empty board is always completable")
}

fn fill(board: Board, opts: Opts, rng: &mut StdRng) -> Option<Board> {
    if is_stuck(&board, &opts) {
        return None;
    }
    if is_completed(&board) {
        return Some(board);
    }
    let (i, j) = find_min_trues(&board, &opts)?;
    let mut candidates = opts.candidates(i, j);
    candidates.shuffle(rng);
    for k in candidates {
        let (b, o) = add_number(i, j, k, &board, &opts);
        if let Some(done) = fill(b, o, rng) {
            return Some(done);
        }
    }
    None
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Box size (3 = 9×9).
    pub n: usize,
    /// Stop removing once this many clues remain (lower = harder).
    pub target_clues: usize,
    /// Keep the puzzle uniquely solvable while digging. Strongly
    /// recommended for n = 3; expensive for larger boards.
    pub unique: bool,
    /// RNG seed; equal configs with equal seeds generate equal puzzles.
    pub seed: u64,
}

/// Generates a puzzle by digging holes into a full solution.
///
/// With `unique`, removal stops early when no cell can be removed
/// without losing uniqueness, so the result may have more clues than
/// `target_clues`.
pub fn generate(cfg: GenConfig) -> Board {
    let solution = full_solution(cfg.n, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15));
    let side = cfg.n * cfg.n;
    let mut order: Vec<(usize, usize)> = (0..side)
        .flat_map(|i| (0..side).map(move |j| (i, j)))
        .collect();
    order.shuffle(&mut rng);

    let mut puzzle = solution;
    let mut clues = side * side;
    for (i, j) in order {
        if clues <= cfg.target_clues {
            break;
        }
        let v = puzzle.get(i, j);
        if v == 0 {
            continue;
        }
        let dug = puzzle.with(i, j, 0);
        if cfg.unique && count_solutions(&dug, 2) != 1 {
            continue; // removal would break uniqueness
        }
        puzzle = dug;
        clues -= 1;
    }
    puzzle
}

/// A convenience corpus: `count` distinct 9×9 puzzles around the given
/// clue count, seeds derived from `base_seed`.
pub fn corpus9(count: usize, target_clues: usize, base_seed: u64) -> Vec<Board> {
    (0..count)
        .map(|i| {
            generate(GenConfig {
                n: 3,
                target_clues,
                unique: true,
                seed: base_seed.wrapping_add(i as u64 * 7919),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_solution_is_solved_and_deterministic() {
        let a = full_solution(3, 42);
        assert!(a.is_solved());
        let b = full_solution(3, 42);
        assert_eq!(a, b);
        let c = full_solution(3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn full_solution_4x4_and_16x16() {
        assert!(full_solution(2, 1).is_solved());
        assert!(full_solution(4, 1).is_solved());
    }

    #[test]
    fn generated_puzzle_is_unique_and_solvable() {
        let p = generate(GenConfig {
            n: 3,
            target_clues: 32,
            unique: true,
            seed: 7,
        });
        assert!(p.is_valid());
        assert!(p.placed() >= 32);
        assert_eq!(count_solutions(&p, 2), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig {
            n: 3,
            target_clues: 40,
            unique: true,
            seed: 99,
        };
        assert_eq!(generate(cfg), generate(cfg));
    }

    #[test]
    fn non_unique_digging_reaches_target() {
        let p = generate(GenConfig {
            n: 2,
            target_clues: 4,
            unique: false,
            seed: 5,
        });
        assert_eq!(p.placed(), 4);
        assert!(p.is_valid());
    }

    #[test]
    fn corpus_is_distinct() {
        let corpus = corpus9(3, 38, 1000);
        assert_eq!(corpus.len(), 3);
        assert_ne!(corpus[0], corpus[1]);
        assert_ne!(corpus[1], corpus[2]);
    }
}
