//! Sudoku boards.
//!
//! "Sudokus are played on a 9 by 9 board of numbers" (paper,
//! Section 3) — but, as the paper's footnote stresses, "sudokus can be
//! played on any board of size n² × n²" and bigger boards are what
//! make parallelisation worthwhile. Boards here are generic in the box
//! size `n`: `n = 3` is the classic 9×9, `n = 4` a 16×16, `n = 5` a
//! 25×25.
//!
//! A board is a stateless SaC matrix (`int[n²,n²]`): cell values
//! `1..=n²`, with `0` for empty — exactly the representation of the
//! paper's `int[*] board`.

use sacarray::{Array, Generator, WithLoop};
use std::fmt;

/// An n²×n² sudoku board backed by a SaC-style integer matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct Board {
    n: usize,
    cells: Array<i64>,
}

impl Board {
    /// An empty board with box size `n` (side length n²).
    pub fn empty(n: usize) -> Board {
        assert!(n >= 2, "box size must be at least 2");
        let side = n * n;
        Board {
            n,
            cells: Array::fill([side, side], 0),
        }
    }

    /// Builds a board from row-major cell values (0 = empty).
    pub fn from_cells(n: usize, cells: Vec<i64>) -> Result<Board, String> {
        let side = n * n;
        if cells.len() != side * side {
            return Err(format!(
                "expected {} cells for a {side}x{side} board, got {}",
                side * side,
                cells.len()
            ));
        }
        if let Some(bad) = cells.iter().find(|&&v| v < 0 || v > side as i64) {
            return Err(format!("cell value {bad} out of range 0..={side}"));
        }
        Ok(Board {
            n,
            cells: Array::new([side, side], cells).expect("length checked"),
        })
    }

    /// Parses whitespace-separated cell values; `0` or `.` mean empty.
    /// Works for any board size (9×9 single digits, 16×16 and beyond
    /// multi-digit).
    pub fn parse(n: usize, text: &str) -> Result<Board, String> {
        let cells: Result<Vec<i64>, String> = text
            .split_whitespace()
            .map(|tok| {
                if tok == "." {
                    Ok(0)
                } else {
                    tok.parse::<i64>().map_err(|_| format!("bad cell '{tok}'"))
                }
            })
            .collect();
        Board::from_cells(n, cells?)
    }

    /// Parses the compact 81-character form common for 9×9 puzzles
    /// (digits, with `0` or `.` for empty).
    pub fn parse_line(line: &str) -> Result<Board, String> {
        let cells: Vec<i64> = line
            .trim()
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '.' | '0' => Ok(0),
                d if d.is_ascii_digit() => Ok(d as i64 - '0' as i64),
                other => Err(format!("bad cell character '{other}'")),
            })
            .collect::<Result<_, String>>()?;
        Board::from_cells(3, cells)
    }

    /// Box size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Side length n².
    pub fn side(&self) -> usize {
        self.n * self.n
    }

    /// Total number of cells (n⁴) — the paper's 81 for 9×9.
    pub fn cell_count(&self) -> usize {
        self.side() * self.side()
    }

    /// Cell value at (row, col); 0 = empty.
    pub fn get(&self, i: usize, j: usize) -> i64 {
        *self.cells.at(&[i, j])
    }

    /// Functional single-cell update (stateless arrays: returns a new
    /// board, sharing storage copy-on-write).
    pub fn with(&self, i: usize, j: usize, v: i64) -> Board {
        Board {
            n: self.n,
            cells: self
                .cells
                .clone()
                .with_elem(&[i, j], v)
                .expect("in-bounds update"),
        }
    }

    /// The underlying SaC array (what travels in a `board` field).
    pub fn cells(&self) -> &Array<i64> {
        &self.cells
    }

    /// Wraps an existing cell array.
    pub fn from_array(n: usize, cells: Array<i64>) -> Board {
        let side = n * n;
        assert_eq!(cells.shape().extents(), &[side, side]);
        Board { n, cells }
    }

    /// Number of placed (non-zero) cells — the paper's `<level>` tag.
    pub fn placed(&self) -> usize {
        let side = self.side();
        let cells = &self.cells;
        WithLoop::new()
            .gen(
                Generator::range(vec![0, 0], vec![side, side]).unwrap(),
                move |iv| usize::from(*cells.at(iv) != 0),
            )
            .fold_seq(0, |a, b| a + b)
    }

    /// True when every cell is filled — the paper's `isCompleted`
    /// checks only fill state; validity is maintained incrementally by
    /// `addNumber`'s option elimination.
    pub fn is_full(&self) -> bool {
        let side = self.side();
        let cells = &self.cells;
        WithLoop::new()
            .gen(
                Generator::range(vec![0, 0], vec![side, side]).unwrap(),
                move |iv| *cells.at(iv) != 0,
            )
            .fold_seq(true, |a, b| a && b)
    }

    /// Full validity check: every row, column and n×n sub-board
    /// contains no duplicate among its placed numbers. (Used by tests
    /// and the generator, not by the solver hot path.)
    pub fn is_valid(&self) -> bool {
        let side = self.side();
        // Rows and columns.
        for a in 0..side {
            let mut row_seen = vec![false; side + 1];
            let mut col_seen = vec![false; side + 1];
            for b in 0..side {
                let rv = self.get(a, b);
                if rv != 0 {
                    if row_seen[rv as usize] {
                        return false;
                    }
                    row_seen[rv as usize] = true;
                }
                let cv = self.get(b, a);
                if cv != 0 {
                    if col_seen[cv as usize] {
                        return false;
                    }
                    col_seen[cv as usize] = true;
                }
            }
        }
        // Sub-boards.
        for bi in 0..self.n {
            for bj in 0..self.n {
                let mut seen = vec![false; side + 1];
                for di in 0..self.n {
                    for dj in 0..self.n {
                        let v = self.get(bi * self.n + di, bj * self.n + dj);
                        if v != 0 {
                            if seen[v as usize] {
                                return false;
                            }
                            seen[v as usize] = true;
                        }
                    }
                }
            }
        }
        true
    }

    /// True when the board is a complete, valid solution.
    pub fn is_solved(&self) -> bool {
        self.is_full() && self.is_valid()
    }

    /// Iterates (row, col, value) over placed cells.
    pub fn placed_cells(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        let side = self.side();
        (0..side).flat_map(move |i| {
            (0..side).filter_map(move |j| {
                let v = self.get(i, j);
                (v != 0).then_some((i, j, v))
            })
        })
    }
}

impl fmt::Display for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = self.side();
        let width = if side > 9 { 3 } else { 2 };
        for i in 0..side {
            if i > 0 && i % self.n == 0 {
                let dash = "-".repeat(width * side + self.n - 1);
                writeln!(f, "{dash}")?;
            }
            for j in 0..side {
                if j > 0 && j % self.n == 0 {
                    write!(f, "|")?;
                }
                let v = self.get(i, j);
                if v == 0 {
                    write!(f, "{:>width$}", ".", width = width)?;
                } else {
                    write!(f, "{v:>width$}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Board {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Board(n={}, placed={}):", self.n, self.placed())?;
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_board_shape() {
        let b = Board::empty(3);
        assert_eq!(b.side(), 9);
        assert_eq!(b.cell_count(), 81);
        assert_eq!(b.placed(), 0);
        assert!(!b.is_full());
        assert!(b.is_valid());
        let b16 = Board::empty(4);
        assert_eq!(b16.side(), 16);
        assert_eq!(b16.cell_count(), 256);
    }

    #[test]
    fn with_is_functional_update() {
        let a = Board::empty(3);
        let b = a.with(0, 0, 5);
        assert_eq!(a.get(0, 0), 0);
        assert_eq!(b.get(0, 0), 5);
        assert_eq!(b.placed(), 1);
    }

    #[test]
    fn parse_line_roundtrip() {
        let line =
            "530070000600195000098000060800060003400803001700020006060000280000419005000080079";
        let b = Board::parse_line(line).unwrap();
        assert_eq!(b.get(0, 0), 5);
        assert_eq!(b.get(0, 1), 3);
        assert_eq!(b.get(8, 8), 9);
        assert_eq!(b.placed(), 30);
        assert!(b.is_valid());
    }

    #[test]
    fn parse_whitespace_form() {
        let b = Board::parse(
            2,
            "1 2 3 4\n\
             3 4 1 2\n\
             2 1 4 3\n\
             4 3 2 1",
        )
        .unwrap();
        assert!(b.is_solved());
        let b = Board::parse(2, "1 . . .  . . . .  . . . .  . . . 1").unwrap();
        assert_eq!(b.placed(), 2);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Board::parse(2, "1 2 3").is_err()); // wrong count
        assert!(Board::parse(2, &"5 ".repeat(16)).is_err()); // out of range
        assert!(Board::parse_line("xyz").is_err());
    }

    #[test]
    fn validity_detects_duplicates() {
        // Row duplicate.
        let mut cells = vec![0i64; 16];
        cells[0] = 1;
        cells[1] = 1;
        assert!(!Board::from_cells(2, cells).unwrap().is_valid());
        // Column duplicate.
        let mut cells = vec![0i64; 16];
        cells[0] = 2;
        cells[4] = 2;
        assert!(!Board::from_cells(2, cells).unwrap().is_valid());
        // Sub-board duplicate (cells (0,0) and (1,1) share the 2x2 box).
        let mut cells = vec![0i64; 16];
        cells[0] = 3;
        cells[5] = 3;
        assert!(!Board::from_cells(2, cells).unwrap().is_valid());
        // Same values placed compatibly are fine.
        let mut cells = vec![0i64; 16];
        cells[0] = 3;
        cells[15] = 3;
        assert!(Board::from_cells(2, cells).unwrap().is_valid());
    }

    #[test]
    fn display_renders_blocks() {
        let b = Board::empty(2);
        let s = b.to_string();
        assert!(s.contains('|'));
        assert!(s.contains('-'));
        assert!(s.contains('.'));
    }

    #[test]
    fn placed_cells_iterates_in_row_major_order() {
        let b = Board::empty(2).with(0, 1, 4).with(3, 3, 2);
        let placed: Vec<_> = b.placed_cells().collect();
        assert_eq!(placed, vec![(0, 1, 4), (3, 3, 2)]);
    }
}
