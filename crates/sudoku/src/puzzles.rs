//! A fixed puzzle corpus for tests, examples and benchmarks.
//!
//! Hand-checked small instances plus deterministic generated ones
//! (cached per process — generation with uniqueness checks is not
//! free, and benchmarks must not measure it).

use crate::board::Board;
use crate::gen::{generate, GenConfig};
use std::sync::OnceLock;

/// A 4×4 puzzle with a unique solution — small enough to trace by
/// hand, used throughout the unit tests.
pub fn mini4() -> Board {
    Board::parse(
        2,
        "1 . . .\n\
         . . 1 .\n\
         . 3 . .\n\
         . . . 2",
    )
    .expect("static puzzle is well-formed")
}

/// A 4×4 configuration whose options run dry immediately: cell (1,0)
/// sees 1 and 2 in its box and 1, 3, 4 in its column.
pub fn stuck4() -> Board {
    Board::parse(
        2,
        "1 2 3 .\n\
         . . . .\n\
         4 . . .\n\
         3 . . .",
    )
    .expect("static puzzle is well-formed")
}

/// The classic 30-clue 9×9 newspaper puzzle (unique solution).
pub fn classic9() -> Board {
    Board::parse_line(
        "530070000600195000098000060800060003400803001700020006060000280000419005000080079",
    )
    .expect("static puzzle is well-formed")
}

/// An easy generated 9×9 (40 clues), deterministic.
pub fn easy9() -> Board {
    static CACHE: OnceLock<Board> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            generate(GenConfig {
                n: 3,
                target_clues: 40,
                unique: true,
                seed: 0xEA5E,
            })
        })
        .clone()
}

/// A medium generated 9×9 (~32 clues), deterministic.
pub fn medium9() -> Board {
    static CACHE: OnceLock<Board> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            generate(GenConfig {
                n: 3,
                target_clues: 32,
                unique: true,
                seed: 0x3ED1,
            })
        })
        .clone()
}

/// A hard generated 9×9 (as few clues as the digger reaches from its
/// seed, typically 24–28), deterministic.
pub fn hard9() -> Board {
    static CACHE: OnceLock<Board> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            generate(GenConfig {
                n: 3,
                target_clues: 17,
                unique: true,
                seed: 0x44A2,
            })
        })
        .clone()
}

/// A 16×16 puzzle (uniqueness not enforced — the paper's "bigger
/// puzzles" motivation; the solver reports the first solution found).
pub fn big16() -> Board {
    static CACHE: OnceLock<Board> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            generate(GenConfig {
                n: 4,
                target_clues: 220,
                unique: false,
                seed: 0x1616,
            })
        })
        .clone()
}

/// A 25×25 puzzle (80 holes, uniqueness not enforced). Generation
/// takes several seconds, so this is cached and only used by opt-in
/// tests and benches — the outermost point of the paper's "bigger
/// puzzles" motivation.
pub fn big25() -> Board {
    static CACHE: OnceLock<Board> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            generate(GenConfig {
                n: 5,
                target_clues: 545,
                unique: false,
                seed: 0x2525,
            })
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sac_solver::count_solutions;

    #[test]
    fn static_puzzles_are_valid() {
        assert!(mini4().is_valid());
        assert!(stuck4().is_valid());
        assert!(classic9().is_valid());
        assert_eq!(classic9().placed(), 30);
    }

    #[test]
    fn mini4_is_unique() {
        assert_eq!(count_solutions(&mini4(), 2), 1);
    }

    #[test]
    fn generated_corpus_is_cached_and_consistent() {
        let a = easy9();
        let b = easy9();
        assert_eq!(a, b);
        assert!(a.placed() >= 40);
        assert!(medium9().placed() >= 32);
        assert!(hard9().placed() < medium9().placed());
    }

    #[test]
    fn big16_has_right_shape() {
        let b = big16();
        assert_eq!(b.side(), 16);
        assert_eq!(b.placed(), 220);
        assert!(b.is_valid());
    }
}
