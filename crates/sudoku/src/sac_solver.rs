//! The pure-SaC solver of Section 3.
//!
//! "Solving sudokus boils down to a search algorithm which successively
//! adds numbers to all positions not yet filled until it either gets
//! stuck or is completed." The functions here mirror the paper's
//! names: `isStuck`, `isCompleted`, `findFirst`, `findMinTrues`, and
//! the recursive `solve` with its for-loop backtracking.
//!
//! Two position-selection policies are provided because the paper
//! compares them: `findFirst` (first empty cell, row-major) and
//! `findMinTrues` (fewest options left), the latter chosen "in order
//! to keep the potential need for back-tracking as small as possible"
//! — the S3 benchmark measures exactly this gap.

use crate::board::Board;
use crate::opts::{add_number, Opts};
use sacarray::ops::argmin_by;
use sacarray::{Generator, WithLoop};

/// The paper's `isCompleted`: every position filled.
pub fn is_completed(board: &Board) -> bool {
    board.is_full()
}

/// The paper's `isStuck`: some empty position has no options left —
/// the search cannot proceed from this configuration.
pub fn is_stuck(board: &Board, opts: &Opts) -> bool {
    let side = board.side();
    WithLoop::new()
        .gen(
            Generator::range(vec![0, 0], vec![side, side]).unwrap(),
            move |iv| board.get(iv[0], iv[1]) == 0 && opts.count_at(iv[0], iv[1]) == 0,
        )
        .fold_seq(false, |a, b| a || b)
}

/// The paper's `findFirst( 0, board)`: the first empty position in
/// row-major order, or `None` when the board is full.
pub fn find_first(board: &Board) -> Option<(usize, usize)> {
    sacarray::ops::find_first(board.cells(), &0).map(|iv| (iv[0], iv[1]))
}

/// The paper's `findMinTrues( opts)`: a free position with a minimum
/// number of options left. Positions with zero options are filled
/// cells (or stuck boards, excluded before this is called), so only
/// positions with at least one option are eligible.
pub fn find_min_trues(board: &Board, opts: &Opts) -> Option<(usize, usize)> {
    argmin_by(
        board.cells(),
        |iv, _| opts.count_at(iv[0], iv[1]),
        |iv, v| *v == 0 && opts.count_at(iv[0], iv[1]) > 0,
    )
    .map(|iv| (iv[0], iv[1]))
}

/// Position-selection policy for the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// `findFirst`: first empty cell.
    FindFirst,
    /// `findMinTrues`: cell with fewest remaining options.
    MinTrues,
}

/// Statistics of one solver run (search-effort measurements for the
/// S3 benchmark).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Calls to `solve` (nodes of the search tree).
    pub nodes: u64,
    /// `addNumber` applications (numbers tried).
    pub placements: u64,
    /// Dead ends (stuck boards reached).
    pub stuck: u64,
}

/// The paper's recursive `solve`, parameterised by selection policy:
///
/// ```text
/// int[*], bool[*] solve( int[*] board, bool[*] opts)
/// {
///   if (!isStuck(board, opts) && !isCompleted(board)) {
///     i,j = findMinTrues(opts);        // or findFirst(0, board)
///     mem_board = board; mem_opts = opts;
///     for (k=1; (k<=9) && (!isCompleted(board)); k++) {
///       if (mem_opts[i,j,k-1]) {
///         board, opts = addNumber(i, j, k, mem_board, mem_opts);
///         board, opts = solve(board, opts);
///       }
///     }
///   }
///   return (board, opts);
/// }
/// ```
///
/// Returns the first solution found or, "if no solution exists, the
/// board where the algorithm got stuck".
pub fn solve(board: Board, opts: Opts, policy: Policy, stats: &mut SolveStats) -> (Board, Opts) {
    stats.nodes += 1;
    if is_stuck(&board, &opts) {
        stats.stuck += 1;
        return (board, opts);
    }
    if is_completed(&board) {
        return (board, opts);
    }
    let (i, j) = match policy {
        Policy::FindFirst => find_first(&board),
        Policy::MinTrues => find_min_trues(&board, &opts),
    }
    .expect("not completed implies an empty, non-stuck position exists");
    let side = board.side();
    let mem_board = board;
    let mem_opts = opts;
    let mut board = mem_board.clone();
    let mut opts = mem_opts.clone();
    for k in 1..=side as i64 {
        if is_completed(&board) {
            break;
        }
        if mem_opts.allows(i, j, k) {
            stats.placements += 1;
            let (b, o) = add_number(i, j, k, &mem_board, &mem_opts);
            let (b, o) = solve(b, o, policy, stats);
            board = b;
            opts = o;
        }
    }
    (board, opts)
}

/// Convenience wrapper: computes options from the puzzle's clues and
/// runs the solver; returns the solved board (or the stuck board when
/// unsolvable) plus statistics.
pub fn solve_puzzle(puzzle: &Board, policy: Policy) -> (Board, SolveStats) {
    let (board, opts) = crate::opts::compute_opts(puzzle);
    let mut stats = SolveStats::default();
    let (board, _) = solve(board, opts, policy, &mut stats);
    (board, stats)
}

/// Counts the solutions of a puzzle, stopping at `limit` (used by the
/// generator's uniqueness check; `limit = 2` answers "unique?").
pub fn count_solutions(puzzle: &Board, limit: u64) -> u64 {
    let (board, opts) = crate::opts::compute_opts(puzzle);
    let mut count = 0;
    count_rec(board, opts, limit, &mut count);
    count
}

fn count_rec(board: Board, opts: Opts, limit: u64, count: &mut u64) {
    if *count >= limit {
        return;
    }
    if is_stuck(&board, &opts) {
        return;
    }
    if is_completed(&board) {
        *count += 1;
        return;
    }
    let (i, j) = find_min_trues(&board, &opts).expect("non-stuck, non-complete");
    let side = board.side();
    for k in 1..=side as i64 {
        if *count >= limit {
            return;
        }
        if opts.allows(i, j, k) {
            let (b, o) = add_number(i, j, k, &board, &opts);
            count_rec(b, o, limit, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::compute_opts;

    fn mini_puzzle() -> Board {
        Board::parse(
            2,
            "1 . . .\n\
             . . 1 .\n\
             . 3 . .\n\
             . . . 2",
        )
        .unwrap()
    }

    #[test]
    fn solve_mini_with_both_policies() {
        for policy in [Policy::FindFirst, Policy::MinTrues] {
            let (solved, stats) = solve_puzzle(&mini_puzzle(), policy);
            assert!(solved.is_solved(), "policy {policy:?} failed:\n{solved}");
            assert!(stats.nodes > 0);
        }
    }

    #[test]
    fn solve_classic_9x9() {
        let puzzle = Board::parse_line(
            "530070000600195000098000060800060003400803001700020006060000280000419005000080079",
        )
        .unwrap();
        let (solved, _) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert!(solved.is_solved());
        // Clues preserved.
        for (i, j, v) in puzzle.placed_cells() {
            assert_eq!(solved.get(i, j), v);
        }
    }

    #[test]
    fn min_trues_never_searches_more_than_find_first_on_classic() {
        let puzzle = Board::parse_line(
            "530070000600195000098000060800060003400803001700020006060000280000419005000080079",
        )
        .unwrap();
        let (_, s_first) = solve_puzzle(&puzzle, Policy::FindFirst);
        let (_, s_min) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert!(
            s_min.placements <= s_first.placements,
            "minTrues {} > findFirst {}",
            s_min.placements,
            s_first.placements
        );
    }

    #[test]
    fn unsolvable_board_returns_stuck() {
        // Two 1s forced into the same row via options: column 0 and 1
        // of row 0 both restricted... simplest: make a contradiction
        // where an empty cell has no options.
        let puzzle = Board::parse(
            2,
            "1 2 3 .\n\
             . . . .\n\
             4 . . .\n\
             3 . . .",
        )
        .unwrap();
        // Cell (1,0) sees 1,2 (box), 3,4 (column... col0 has 1,4,3) →
        // candidates of (1,0): not 1 (box/col), not 2 (box), not 3
        // (col), not 4 (col) → empty. Stuck.
        let (board, opts) = compute_opts(&puzzle);
        assert!(is_stuck(&board, &opts));
        let (result, stats) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert!(!result.is_solved());
        assert_eq!(stats.stuck, 1);
    }

    #[test]
    fn find_first_is_row_major() {
        let b = Board::empty(2).with(0, 0, 1).with(0, 1, 2);
        assert_eq!(find_first(&b), Some((0, 2)));
        let full = Board::parse(2, "1 2 3 4 3 4 1 2 2 1 4 3 4 3 2 1").unwrap();
        assert_eq!(find_first(&full), None);
    }

    #[test]
    fn find_min_trues_picks_most_constrained() {
        let puzzle = mini_puzzle();
        let (board, opts) = compute_opts(&puzzle);
        let (i, j) = find_min_trues(&board, &opts).unwrap();
        let min_count = opts.count_at(i, j);
        // No empty cell has fewer options.
        for r in 0..4 {
            for c in 0..4 {
                if board.get(r, c) == 0 {
                    assert!(opts.count_at(r, c) >= min_count);
                }
            }
        }
        assert!(min_count >= 1);
    }

    #[test]
    fn completed_board_is_fixed_point() {
        let full = Board::parse(2, "1 2 3 4 3 4 1 2 2 1 4 3 4 3 2 1").unwrap();
        let (b, o) = compute_opts(&full);
        let mut stats = SolveStats::default();
        let (result, _) = solve(b.clone(), o, Policy::MinTrues, &mut stats);
        assert_eq!(result, b);
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.placements, 0);
    }

    #[test]
    fn count_solutions_unique_and_multiple() {
        // The classic puzzle is unique.
        let puzzle = mini_puzzle();
        assert_eq!(count_solutions(&puzzle, 2), 1);
        // An empty 4x4 board has many solutions; limit caps the count.
        let empty = Board::empty(2);
        assert_eq!(count_solutions(&empty, 3), 3);
    }

    #[test]
    fn solver_solves_empty_4x4() {
        let (solved, _) = solve_puzzle(&Board::empty(2), Policy::MinTrues);
        assert!(solved.is_solved());
    }
}
