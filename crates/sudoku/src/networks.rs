//! The hybrid SaC/S-Net sudoku networks of Figures 1–3.
//!
//! Each figure is expressed in the actual S-Net surface syntax and
//! compiled through the full pipeline (parse → type inference →
//! plan → threads), exactly as a user of the library would write it:
//!
//! * **Fig. 1** — `computeOpts .. solveOneLevel ** {<done>}`
//! * **Fig. 2** — `computeOpts .. [{} -> {<k>=1}] ..
//!   (solveOneLevelK !! <k>) ** {<done>}`
//! * **Fig. 3** — `computeOpts .. [{} -> {<k>=1}] ..
//!   ([{<k>} -> {<k>=<k>%m}] .. (solveOneLevelL !! <k>)) **
//!   {<level>} if <level> > c .. solve`
//!
//! Fig. 3's modulo `m` and level cutoff `c` are parameters here (the
//! paper uses 4 and 40); the F3 experiment sweeps them.

use crate::board::Board;
use crate::boxes::{
    board_of, compute_opts_box, puzzle_record, solve_box, solve_one_level_box, LevelStyle,
};
use snet_runtime::{BuildError, Metrics, Net, NetBuilder, Observer};
use std::sync::Arc;

/// The box declarations shared by all three networks.
pub const BOX_DECLS: &str = "\
box computeOpts (board) -> (board, opts);
box solveOneLevel (board, opts) -> (board, opts) | (board, <done>);
box solveOneLevelK (board, opts) -> (board, opts, <k>) | (board, <done>);
box solveOneLevelL (board, opts) -> (board, opts, <k>, <level>);
box solve (board, opts) -> (board, opts);
";

/// Fig. 1 network text.
pub const FIG1: &str = "computeOpts .. solveOneLevel ** {<done>}";

/// Fig. 2 network text.
pub const FIG2: &str = "computeOpts .. [{} -> {<k>=1}] .. (solveOneLevelK !! <k>) ** {<done>}";

/// Deterministic Fig. 1: the paper's `*` combinator in place of `**`.
/// Output order becomes reproducible — solutions appear in input-
/// record order, and within one puzzle in search order.
pub const FIG1_DET: &str = "computeOpts .. solveOneLevel * {<done>}";

/// Deterministic Fig. 2: `!` and `*` in place of `!!` and `**`.
pub const FIG2_DET: &str = "computeOpts .. [{} -> {<k>=1}] .. (solveOneLevelK ! <k>) * {<done>}";

/// Fig. 3 network text for a given modulo and cutoff.
pub fn fig3_text(modulo: i64, cutoff: i64) -> String {
    format!(
        "computeOpts .. [{{}} -> {{<k>=1}}] .. \
         ([{{<k>}} -> {{<k>=<k>%{modulo}}}] .. (solveOneLevelL !! <k>)) ** \
         {{<level>}} if <level> > {cutoff} \
         .. solve"
    )
}

/// The configurable builder behind every sudoku network: all box
/// bindings attached, no expression chosen yet. Public so service
/// harnesses (`snet-bench`'s `serve_bench`) can pick an expression,
/// an executor and stream bounds before building.
pub fn builder(n: usize, observers: Vec<Observer>) -> Result<NetBuilder, BuildError> {
    let mut b = NetBuilder::from_source(BOX_DECLS)?
        .bind("computeOpts", compute_opts_box(n))
        .bind("solveOneLevel", solve_one_level_box(n, LevelStyle::Plain))
        .bind("solveOneLevelK", solve_one_level_box(n, LevelStyle::WithK))
        .bind(
            "solveOneLevelL",
            solve_one_level_box(n, LevelStyle::WithKLevel),
        )
        .bind("solve", solve_box(n));
    for o in observers {
        b = b.observe(o);
    }
    Ok(b)
}

/// Builds the Fig. 1 network for box size `n`.
pub fn fig1_net(n: usize) -> Result<Net, BuildError> {
    builder(n, Vec::new())?.build_expr(FIG1)
}

/// Builds the Fig. 2 network for box size `n`.
pub fn fig2_net(n: usize) -> Result<Net, BuildError> {
    builder(n, Vec::new())?.build_expr(FIG2)
}

/// Builds the Fig. 2 network on an explicit executor (the
/// construction-cost benches compare thread-per-component against the
/// work-stealing pool on this network).
pub fn fig2_net_on(n: usize, executor: Arc<dyn snet_runtime::Executor>) -> Result<Net, BuildError> {
    builder(n, Vec::new())?.executor(executor).build_expr(FIG2)
}

/// Builds the deterministic Fig. 1 network for box size `n`.
pub fn fig1_det_net(n: usize) -> Result<Net, BuildError> {
    builder(n, Vec::new())?.build_expr(FIG1_DET)
}

/// Builds the deterministic Fig. 2 network for box size `n`.
pub fn fig2_det_net(n: usize) -> Result<Net, BuildError> {
    builder(n, Vec::new())?.build_expr(FIG2_DET)
}

/// Like [`run_net`] but keeps every output board in arrival order,
/// without dedup — used to observe output *ordering* (deterministic
/// variants must reproduce it run for run).
pub fn run_net_ordered(net: Net, puzzles: &[Board]) -> Vec<Board> {
    let n = puzzles.first().map(|p| p.n()).unwrap_or(3);
    for p in puzzles {
        net.send(puzzle_record(p))
            .expect("puzzle record matches net input");
    }
    net.finish().iter().map(|r| board_of(r, n)).collect()
}

/// Builds the Fig. 3 network for box size `n` with the given throttle
/// parameters. `cutoff` must be below n⁴ or completed boards could
/// never leave the replicator.
pub fn fig3_net(n: usize, modulo: i64, cutoff: i64) -> Result<Net, BuildError> {
    assert!(modulo >= 1);
    assert!(
        (cutoff as usize) < n * n * n * n,
        "cutoff {cutoff} must be below the cell count {}",
        n * n * n * n
    );
    builder(n, Vec::new())?.build_expr(&fig3_text(modulo, cutoff))
}

/// Builds any of the three networks with observers attached.
pub fn net_with_observers(
    n: usize,
    expr: &str,
    observers: Vec<Observer>,
) -> Result<Net, BuildError> {
    builder(n, observers)?.build_expr(expr)
}

/// The outcome of running a puzzle through a network.
pub struct NetRun {
    /// Distinct solved boards found (duplicates collapsed; Fig. 3 can
    /// reach the same solution along several exit paths).
    pub solutions: Vec<Board>,
    /// Total output records, including Fig. 3's stuck tail boards.
    pub outputs: usize,
    /// The network's metrics, for bound assertions.
    pub metrics: Arc<Metrics>,
}

/// Feeds one puzzle through a network and drains it to completion.
pub fn run_net(net: Net, puzzle: &Board) -> NetRun {
    let n = puzzle.n();
    let metrics = Arc::clone(net.metrics());
    net.send(puzzle_record(puzzle))
        .expect("puzzle record matches net input");
    let records = net.finish();
    let outputs = records.len();
    let mut solutions: Vec<Board> = Vec::new();
    for rec in &records {
        let board = board_of(rec, n);
        if board.is_solved() && !solutions.contains(&board) {
            solutions.push(board);
        }
    }
    NetRun {
        solutions,
        outputs,
        metrics,
    }
}

/// Convenience: solve a puzzle on the Fig. 1 network.
pub fn solve_fig1(puzzle: &Board) -> NetRun {
    run_net(fig1_net(puzzle.n()).expect("fig1 builds"), puzzle)
}

/// Convenience: solve a puzzle on the Fig. 2 network.
pub fn solve_fig2(puzzle: &Board) -> NetRun {
    run_net(fig2_net(puzzle.n()).expect("fig2 builds"), puzzle)
}

/// Convenience: solve a puzzle on the Fig. 3 network.
pub fn solve_fig3(puzzle: &Board, modulo: i64, cutoff: i64) -> NetRun {
    run_net(
        fig3_net(puzzle.n(), modulo, cutoff).expect("fig3 builds"),
        puzzle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::puzzles;
    use crate::sac_solver::{solve_puzzle, Policy};

    #[test]
    fn networks_type_check() {
        assert!(fig1_net(3).is_ok());
        assert!(fig2_net(3).is_ok());
        assert!(fig3_net(3, 4, 40).is_ok());
    }

    #[test]
    fn fig1_solves_mini() {
        let puzzle = puzzles::mini4();
        let run = solve_fig1(&puzzle);
        assert_eq!(run.solutions.len(), 1);
        let (reference, _) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert_eq!(run.solutions[0], reference);
    }

    #[test]
    fn fig2_solves_mini() {
        let puzzle = puzzles::mini4();
        let run = solve_fig2(&puzzle);
        assert_eq!(run.solutions.len(), 1);
        let (reference, _) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert_eq!(run.solutions[0], reference);
    }

    #[test]
    fn fig3_solves_mini() {
        let puzzle = puzzles::mini4();
        // Cutoff below 16 so the guard is exercised on a 4x4 board.
        let run = solve_fig3(&puzzle, 2, 8);
        assert_eq!(run.solutions.len(), 1);
        let (reference, _) = solve_puzzle(&puzzle, Policy::MinTrues);
        assert_eq!(run.solutions[0], reference);
    }

    #[test]
    fn fig1_classic_9x9() {
        let puzzle = puzzles::classic9();
        let run = solve_fig1(&puzzle);
        assert_eq!(run.solutions.len(), 1);
        assert!(run.solutions[0].is_solved());
        // The pipeline depth bound of the paper: at most 81 replicas
        // (here: stages = replicas + the final tapping guard).
        let stages = run.metrics.max_matching("/stages");
        assert!(
            stages <= 82,
            "stages {stages} exceeded the 81-replica bound"
        );
    }

    #[test]
    fn fig3_throttle_caps_parallel_width() {
        let puzzle = puzzles::mini4();
        let run = solve_fig3(&puzzle, 2, 8);
        // Every split instance has at most 2 branches (k reduced mod 2).
        let max_branches = run.metrics.max_matching("/branches");
        assert!(
            max_branches <= 2,
            "throttle failed: a split unfolded {max_branches} branches"
        );
    }

    #[test]
    fn unsolvable_puzzle_yields_no_solutions() {
        let puzzle = puzzles::stuck4();
        let run = solve_fig1(&puzzle);
        assert!(run.solutions.is_empty());
        assert_eq!(run.outputs, 0);
    }

    #[test]
    fn det_variants_type_check_and_solve() {
        let puzzle = puzzles::mini4();
        let (reference, _) = solve_puzzle(&puzzle, Policy::MinTrues);
        for net in [fig1_det_net(2).unwrap(), fig2_det_net(2).unwrap()] {
            let run = run_net(net, &puzzle);
            assert_eq!(run.solutions, vec![reference.clone()]);
        }
    }

    #[test]
    fn det_fig1_output_order_is_reproducible() {
        // A multi-solution puzzle: drop clues from mini4 until several
        // solutions exist, then check the deterministic network emits
        // them in the same order on every run.
        let mut puzzle = puzzles::mini4();
        for (i, j, _) in puzzles::mini4().placed_cells() {
            let dug = puzzle.with(i, j, 0);
            if crate::sac_solver::count_solutions(&dug, 8) >= 3 {
                puzzle = dug;
                break;
            }
            puzzle = dug;
        }
        let n_solutions = crate::sac_solver::count_solutions(&puzzle, 16);
        assert!(n_solutions >= 2, "test puzzle should be ambiguous");
        let batch = vec![puzzle.clone(), puzzle];
        let runs: Vec<Vec<Board>> = (0..3)
            .map(|_| run_net_ordered(fig1_det_net(2).unwrap(), &batch))
            .collect();
        assert_eq!(runs[0].len() as u64, 2 * n_solutions);
        assert_eq!(runs[0], runs[1], "det output order varied between runs");
        assert_eq!(runs[1], runs[2], "det output order varied between runs");
        // Round structure: the first puzzle's solutions all precede the
        // second puzzle's (both are the same board here, so check via
        // counts only).
        for b in &runs[0] {
            assert!(b.is_solved());
        }
    }
}
