//! # snet-lang — the declarative surface of S-Net
//!
//! "S-Net is a coordination language based on stream processing"
//! (Grelck, Scholz & Shafarenko, IPPS 2007). This crate provides the
//! language front end of the reproduction:
//!
//! * [`token`] — lexer for the combinator syntax;
//! * [`expr`] — tag arithmetic (`<k>=<k>%4`) and exit guards
//!   (`<level> > 40`);
//! * [`filter`] — the housekeeping construct
//!   `[pattern -> rec1; rec2; ...]`, including its pure execution
//!   semantics (record in, records out, flow inheritance);
//! * [`ast`] — the network algebra (`..`, `||`/`|`, `**`/`*`,
//!   `!!`/`!`) plus signature inference against an [`Env`] of
//!   declarations;
//! * [`parser`] — recursive descent from text to [`Program`]s;
//! * [`pretty`] — precedence-aware printing with the round-trip
//!   guarantee `parse(pretty(ast)) == ast`.
//!
//! Syntax deviation from the paper, by design: exit guards are written
//! `{<level>} if <level> > 40` instead of `{<level>} | <level> > 40`,
//! keeping `|` unambiguous with the deterministic parallel combinator.

pub mod ast;
pub mod expr;
pub mod filter;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{BoxDecl, Env, ExitPattern, NetAst, NetDecl, Program};
pub use expr::{ArithOp, CmpOp, ExprError, Guard, TagExpr};
pub use filter::{FilterDef, FilterError, RecSpec, SpecItem};
pub use parser::{parse_filter, parse_guard, parse_net_expr, parse_program, ParseError};
pub use pretty::{pretty_filter, pretty_guard, pretty_net, pretty_program};
