//! Pretty printer: renders ASTs back to parseable surface syntax.
//!
//! The printer is precedence-aware and inserts parentheses exactly
//! where re-parsing would otherwise change the tree shape, so
//! `parse(pretty(ast)) == ast` holds structurally — a property test in
//! this module (and a heavier one in the integration suite) checks it
//! over randomly generated networks.

use crate::ast::{BoxDecl, ExitPattern, NetAst, NetDecl, Program};
use crate::expr::Guard;
use crate::filter::FilterDef;
use snet_types::BoxSig;
use std::fmt::Write;

/// Precedence levels of the network-expression grammar.
const PREC_SERIAL: u8 = 0;
const PREC_PAR: u8 = 1;
const PREC_POSTFIX: u8 = 2;

fn net_prec(ast: &NetAst) -> u8 {
    match ast {
        NetAst::Serial(_, _) => PREC_SERIAL,
        NetAst::Parallel { .. } => PREC_PAR,
        // A star whose exit pattern carries a guard prints at the lowest
        // precedence: a following `||` (or a further postfix `*`) would
        // otherwise be consumed by the guard's expression grammar.
        NetAst::Star { exit, .. } if exit.guard.is_some() => PREC_SERIAL,
        NetAst::Star { .. } | NetAst::Split { .. } => PREC_POSTFIX,
        NetAst::Ref(_) | NetAst::Filter(_) => u8::MAX,
    }
}

fn write_net(out: &mut String, ast: &NetAst, min_prec: u8) {
    let prec = net_prec(ast);
    let need_parens = prec < min_prec;
    if need_parens {
        out.push('(');
    }
    match ast {
        NetAst::Ref(name) => out.push_str(name),
        NetAst::Filter(f) => {
            let _ = write!(out, "{f}");
        }
        NetAst::Serial(a, b) => {
            // Left-associative: the right child must be parenthesised
            // if it is itself serial, or the reparse would re-associate.
            write_net(out, a, PREC_SERIAL);
            out.push_str(" .. ");
            write_net(out, b, PREC_PAR);
        }
        NetAst::Parallel { left, right, det } => {
            write_net(out, left, PREC_PAR);
            out.push_str(if *det { " | " } else { " || " });
            write_net(out, right, PREC_POSTFIX);
        }
        NetAst::Star { inner, exit, det } => {
            write_net(out, inner, PREC_POSTFIX);
            out.push_str(if *det { " * " } else { " ** " });
            write_exit(out, exit);
        }
        NetAst::Split { inner, tag, det } => {
            write_net(out, inner, PREC_POSTFIX);
            out.push_str(if *det { " ! " } else { " !! " });
            let _ = write!(out, "<{tag}>");
        }
    }
    if need_parens {
        out.push(')');
    }
}

fn write_exit(out: &mut String, exit: &ExitPattern) {
    let _ = write!(out, "{}", exit.pattern);
    if let Some(g) = &exit.guard {
        out.push_str(" if ");
        write_guard(out, g, 0);
    }
}

/// Guard precedence: Or = 0, And = 1, Not/Cmp = 2.
fn guard_prec(g: &Guard) -> u8 {
    match g {
        Guard::Or(_, _) => 0,
        Guard::And(_, _) => 1,
        Guard::Not(_) | Guard::Cmp(_, _, _) => 2,
    }
}

fn write_guard(out: &mut String, g: &Guard, min_prec: u8) {
    let prec = guard_prec(g);
    let need_parens = prec < min_prec;
    if need_parens {
        out.push('(');
    }
    match g {
        Guard::Or(l, r) => {
            write_guard(out, l, 0);
            out.push_str(" || ");
            write_guard(out, r, 1);
        }
        Guard::And(l, r) => {
            write_guard(out, l, 1);
            out.push_str(" && ");
            write_guard(out, r, 2);
        }
        Guard::Not(inner) => {
            out.push_str("!(");
            write_guard(out, inner, 0);
            out.push(')');
        }
        Guard::Cmp(..) => {
            // Cmp's Display (TagExpr operands are fully parenthesised)
            // is already re-parseable.
            let _ = write!(out, "{g}");
        }
    }
    if need_parens {
        out.push(')');
    }
}

/// Renders a network expression.
pub fn pretty_net(ast: &NetAst) -> String {
    let mut out = String::new();
    write_net(&mut out, ast, 0);
    out
}

/// Renders a guard.
pub fn pretty_guard(g: &Guard) -> String {
    let mut out = String::new();
    write_guard(&mut out, g, 0);
    out
}

/// Renders a filter (delegates to its Display, which is parseable).
pub fn pretty_filter(f: &FilterDef) -> String {
    f.to_string()
}

fn write_box_sig(out: &mut String, sig: &BoxSig) {
    out.push('(');
    for (i, l) in sig.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{l}");
    }
    out.push_str(") -> ");
    for (i, v) in sig.outputs.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        out.push('(');
        for (j, l) in v.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{l}");
        }
        out.push(')');
    }
}

/// Renders a complete program.
pub fn pretty_program(p: &Program) -> String {
    let mut out = String::new();
    for BoxDecl { name, sig } in &p.boxes {
        let _ = write!(out, "box {name} ");
        write_box_sig(&mut out, sig);
        out.push_str(";\n");
    }
    for NetDecl { name, body } in &p.nets {
        let _ = write!(out, "net {name} = ");
        out.push_str(&pretty_net(body));
        out.push_str(";\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ArithOp, CmpOp, TagExpr};
    use crate::filter::{RecSpec, SpecItem};
    use crate::parser::{parse_guard, parse_net_expr, parse_program};
    use proptest::prelude::*;
    use snet_types::RecordType;

    fn roundtrip_net(ast: &NetAst) {
        let text = pretty_net(ast);
        let reparsed = parse_net_expr(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {text}\n{e}"));
        assert_eq!(&reparsed, ast, "round-trip changed the tree for: {text}");
    }

    #[test]
    fn roundtrip_fig_networks() {
        for src in [
            "computeOpts .. solveOneLevel ** {<done>}",
            "computeOpts .. [{} -> {<k>=1}] .. (solveOneLevel !! <k>) ** {<done>}",
            "computeOpts .. [{} -> {<k>=1}] .. \
             ([{<k>} -> {<k>=<k>%4}] .. (solveOneLevel !! <k>)) ** {<level>} if <level> > 40 \
             .. solve",
            "a | b || c",
            "a ! <k> ** {<d>} * {<e>}",
            "(a .. b) || (c .. d)",
        ] {
            let ast = parse_net_expr(src).unwrap();
            roundtrip_net(&ast);
        }
    }

    #[test]
    fn serial_right_nesting_is_preserved() {
        // Serial(a, Serial(b, c)) must print with parens to avoid
        // re-associating to Serial(Serial(a,b), c).
        let ast = NetAst::serial(
            NetAst::boxref("a"),
            NetAst::serial(NetAst::boxref("b"), NetAst::boxref("c")),
        );
        let text = pretty_net(&ast);
        assert!(text.contains('('), "needs parens: {text}");
        roundtrip_net(&ast);
    }

    #[test]
    fn guard_or_inside_and_is_parenthesised() {
        let g = Guard::And(
            Box::new(Guard::Or(
                Box::new(Guard::tag_gt("a", 1)),
                Box::new(Guard::tag_gt("b", 2)),
            )),
            Box::new(Guard::tag_gt("c", 3)),
        );
        let text = pretty_guard(&g);
        let reparsed = parse_guard(&text).unwrap();
        assert_eq!(reparsed, g, "round-trip changed guard: {text}");
    }

    #[test]
    fn program_roundtrip() {
        let src = "\
box computeOpts (board) -> (board, opts);
box solveOneLevel (board, opts) -> (board, opts) | (board, <done>);
net fig1 = computeOpts .. solveOneLevel ** {<done>};
";
        let p = parse_program(src).unwrap();
        let printed = pretty_program(&p);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed, p);
    }

    // --- Property test: random ASTs round-trip. ---

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9_]{0,6}".prop_filter("keyword", |s| s != "box" && s != "net" && s != "if")
    }

    fn arb_tag_expr() -> impl Strategy<Value = TagExpr> {
        let leaf = prop_oneof![
            (0i64..100).prop_map(TagExpr::Lit),
            arb_name().prop_map(TagExpr::Tag),
        ];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (
                    prop_oneof![
                        Just(ArithOp::Add),
                        Just(ArithOp::Sub),
                        Just(ArithOp::Mul),
                        Just(ArithOp::Div),
                        Just(ArithOp::Mod)
                    ],
                    inner.clone(),
                    inner.clone()
                )
                    .prop_map(|(op, l, r)| TagExpr::Bin(
                        op,
                        Box::new(l),
                        Box::new(r)
                    )),
                inner.prop_map(|e| TagExpr::Neg(Box::new(e))),
            ]
        })
    }

    fn arb_guard() -> impl Strategy<Value = Guard> {
        let cmp = (
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ],
            arb_tag_expr(),
            arb_tag_expr(),
        )
            .prop_map(|(op, l, r)| Guard::Cmp(op, l, r));
        cmp.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(l, r)| Guard::And(Box::new(l), Box::new(r))),
                (inner.clone(), inner.clone())
                    .prop_map(|(l, r)| Guard::Or(Box::new(l), Box::new(r))),
                inner.prop_map(|g| Guard::Not(Box::new(g))),
            ]
        })
    }

    fn arb_rtype() -> impl Strategy<Value = RecordType> {
        (
            proptest::collection::vec(arb_name(), 0..3),
            proptest::collection::vec(arb_name(), 0..3),
        )
            .prop_map(|(fields, tags)| {
                let fields: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
                let tags: Vec<&str> = tags.iter().map(|s| s.as_str()).collect();
                RecordType::of(&fields, &tags)
            })
    }

    fn arb_filter() -> impl Strategy<Value = FilterDef> {
        // Keep filters simple but valid: copy/rename from pattern
        // fields, tags computed from pattern tags.
        (
            proptest::collection::vec(arb_name(), 1..3),
            proptest::collection::vec(arb_name(), 0..2),
            arb_name(),
        )
            .prop_map(|(fields, tags, fresh)| {
                let pattern = {
                    let fs: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
                    let ts: Vec<&str> = tags.iter().map(|s| s.as_str()).collect();
                    RecordType::of(&fs, &ts)
                };
                let mut items = vec![SpecItem::CopyField(fields[0].clone())];
                if fields[0] != fresh {
                    items.push(SpecItem::RenameField {
                        new: fresh.clone(),
                        old: fields[0].clone(),
                    });
                }
                if let Some(t) = tags.first() {
                    if *t != fresh {
                        items.push(SpecItem::Tag {
                            name: t.clone(),
                            init: Some(TagExpr::Tag(t.clone())),
                        });
                    }
                }
                FilterDef::new(pattern, vec![RecSpec { items }]).unwrap()
            })
    }

    fn arb_net() -> impl Strategy<Value = NetAst> {
        let leaf = prop_oneof![
            arb_name().prop_map(NetAst::Ref),
            arb_filter().prop_map(NetAst::Filter),
        ];
        leaf.prop_recursive(4, 24, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| NetAst::serial(a, b)),
                (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(a, b, det)| {
                    if det {
                        NetAst::parallel_det(a, b)
                    } else {
                        NetAst::parallel(a, b)
                    }
                }),
                (
                    inner.clone(),
                    arb_rtype(),
                    proptest::option::of(arb_guard()),
                    any::<bool>()
                )
                    .prop_map(|(a, p, g, det)| {
                        let exit = match g {
                            Some(g) => ExitPattern::with_guard(p, g),
                            None => ExitPattern::new(p),
                        };
                        if det {
                            NetAst::star_det(a, exit)
                        } else {
                            NetAst::star(a, exit)
                        }
                    }),
                (inner, arb_name(), any::<bool>()).prop_map(|(a, t, det)| {
                    if det {
                        NetAst::split_det(a, &t)
                    } else {
                        NetAst::split(a, &t)
                    }
                }),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_net_roundtrip(ast in arb_net()) {
            roundtrip_net(&ast);
        }

        #[test]
        fn prop_guard_roundtrip(g in arb_guard()) {
            let text = pretty_guard(&g);
            let reparsed = parse_guard(&text)
                .unwrap_or_else(|e| panic!("failed to reparse guard: {text}\n{e}"));
            prop_assert_eq!(reparsed, g);
        }
    }
}
