//! Tag arithmetic and guard expressions.
//!
//! Filters may compute new tag values from old ones — the paper's
//! throttle is `{<k>} -> {<k>=<k>%4}` — and the exit pattern of a
//! serial replicator may carry a predicate over tags, as in
//! `{<level>} if <level> > 40` (the paper writes the guard after a `|`;
//! this reproduction uses the `if` keyword to keep `|` unambiguous with
//! the deterministic parallel combinator — see DESIGN.md).
//!
//! Expressions are evaluated against a record's tags only: "a new tag
//! value is calculated according to the expression" — fields stay
//! opaque to the coordination layer by design.

use snet_types::Record;
use std::fmt;

/// Integer expression over tag values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TagExpr {
    /// Integer literal.
    Lit(i64),
    /// Value of a tag, `<name>`.
    Tag(String),
    /// Unary negation.
    Neg(Box<TagExpr>),
    /// Binary arithmetic.
    Bin(ArithOp, Box<TagExpr>, Box<TagExpr>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Boolean expression over tag values (exit guards).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Guard {
    Cmp(CmpOp, TagExpr, TagExpr),
    And(Box<Guard>, Box<Guard>),
    Or(Box<Guard>, Box<Guard>),
    Not(Box<Guard>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Evaluation failure: a referenced tag is missing or arithmetic is
/// undefined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    MissingTag(String),
    DivisionByZero,
    Overflow,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::MissingTag(t) => write!(f, "record has no tag <{t}>"),
            ExprError::DivisionByZero => write!(f, "division by zero in tag expression"),
            ExprError::Overflow => write!(f, "tag arithmetic overflow"),
        }
    }
}

impl std::error::Error for ExprError {}

impl TagExpr {
    /// Evaluates against the tags of a record.
    pub fn eval(&self, rec: &Record) -> Result<i64, ExprError> {
        match self {
            TagExpr::Lit(v) => Ok(*v),
            TagExpr::Tag(name) => rec
                .tag(name)
                .ok_or_else(|| ExprError::MissingTag(name.clone())),
            TagExpr::Neg(e) => e.eval(rec)?.checked_neg().ok_or(ExprError::Overflow),
            TagExpr::Bin(op, l, r) => {
                let a = l.eval(rec)?;
                let b = r.eval(rec)?;
                match op {
                    ArithOp::Add => a.checked_add(b).ok_or(ExprError::Overflow),
                    ArithOp::Sub => a.checked_sub(b).ok_or(ExprError::Overflow),
                    ArithOp::Mul => a.checked_mul(b).ok_or(ExprError::Overflow),
                    ArithOp::Div => {
                        if b == 0 {
                            Err(ExprError::DivisionByZero)
                        } else {
                            a.checked_div(b).ok_or(ExprError::Overflow)
                        }
                    }
                    ArithOp::Mod => {
                        if b == 0 {
                            Err(ExprError::DivisionByZero)
                        } else {
                            a.checked_rem(b).ok_or(ExprError::Overflow)
                        }
                    }
                }
            }
        }
    }

    /// Names of all tags the expression references.
    pub fn referenced_tags(&self, out: &mut Vec<String>) {
        match self {
            TagExpr::Lit(_) => {}
            TagExpr::Tag(t) => {
                if !out.contains(t) {
                    out.push(t.clone());
                }
            }
            TagExpr::Neg(e) => e.referenced_tags(out),
            TagExpr::Bin(_, l, r) => {
                l.referenced_tags(out);
                r.referenced_tags(out);
            }
        }
    }

    /// Convenience constructors for programmatic network building.
    pub fn lit(v: i64) -> TagExpr {
        TagExpr::Lit(v)
    }

    pub fn tag(name: &str) -> TagExpr {
        TagExpr::Tag(name.to_string())
    }

    pub fn modulo(self, rhs: TagExpr) -> TagExpr {
        TagExpr::Bin(ArithOp::Mod, Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)] // builder sugar, not arithmetic on Self
    pub fn add(self, rhs: TagExpr) -> TagExpr {
        TagExpr::Bin(ArithOp::Add, Box::new(self), Box::new(rhs))
    }
}

impl Guard {
    /// Evaluates against the tags of a record.
    pub fn eval(&self, rec: &Record) -> Result<bool, ExprError> {
        match self {
            Guard::Cmp(op, l, r) => {
                let a = l.eval(rec)?;
                let b = r.eval(rec)?;
                Ok(match op {
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                })
            }
            Guard::And(l, r) => Ok(l.eval(rec)? && r.eval(rec)?),
            Guard::Or(l, r) => Ok(l.eval(rec)? || r.eval(rec)?),
            Guard::Not(g) => Ok(!g.eval(rec)?),
        }
    }

    /// Names of all tags the guard references.
    pub fn referenced_tags(&self, out: &mut Vec<String>) {
        match self {
            Guard::Cmp(_, l, r) => {
                l.referenced_tags(out);
                r.referenced_tags(out);
            }
            Guard::And(l, r) | Guard::Or(l, r) => {
                l.referenced_tags(out);
                r.referenced_tags(out);
            }
            Guard::Not(g) => g.referenced_tags(out),
        }
    }

    /// `<name> > value` — the paper's throttled-exit shape.
    pub fn tag_gt(name: &str, value: i64) -> Guard {
        Guard::Cmp(CmpOp::Gt, TagExpr::tag(name), TagExpr::lit(value))
    }
}

impl fmt::Display for TagExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagExpr::Lit(v) => write!(f, "{v}"),
            TagExpr::Tag(t) => write!(f, "<{t}>"),
            TagExpr::Neg(e) => write!(f, "-({e})"),
            TagExpr::Bin(op, l, r) => {
                let sym = match op {
                    ArithOp::Add => "+",
                    ArithOp::Sub => "-",
                    ArithOp::Mul => "*",
                    ArithOp::Div => "/",
                    ArithOp::Mod => "%",
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::Cmp(op, l, r) => {
                let sym = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{l} {sym} {r}")
            }
            Guard::And(l, r) => write!(f, "({l} && {r})"),
            Guard::Or(l, r) => write!(f, "({l} || {r})"),
            Guard::Not(g) => write!(f, "!({g})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Record;

    fn rec(tags: &[(&str, i64)]) -> Record {
        let mut r = Record::new();
        for (n, v) in tags {
            r.set_tag(n, *v);
        }
        r
    }

    #[test]
    fn literal_and_tag_lookup() {
        let r = rec(&[("k", 7)]);
        assert_eq!(TagExpr::lit(5).eval(&r), Ok(5));
        assert_eq!(TagExpr::tag("k").eval(&r), Ok(7));
        assert_eq!(
            TagExpr::tag("missing").eval(&r),
            Err(ExprError::MissingTag("missing".into()))
        );
    }

    #[test]
    fn paper_throttle_expression() {
        // <k> % 4 over the full range 0..9 (the paper's throttle to 4
        // parallel instances).
        let e = TagExpr::tag("k").modulo(TagExpr::lit(4));
        for k in 0..9 {
            let r = rec(&[("k", k)]);
            assert_eq!(e.eval(&r), Ok(k % 4));
        }
    }

    #[test]
    fn increment_expression() {
        // <c> = <c> + 1 from the paper's filter example.
        let e = TagExpr::tag("c").add(TagExpr::lit(1));
        assert_eq!(e.eval(&rec(&[("c", 41)])), Ok(42));
    }

    #[test]
    fn division_and_mod_by_zero() {
        let d = TagExpr::Bin(
            ArithOp::Div,
            Box::new(TagExpr::lit(1)),
            Box::new(TagExpr::lit(0)),
        );
        assert_eq!(d.eval(&rec(&[])), Err(ExprError::DivisionByZero));
        let m = TagExpr::Bin(
            ArithOp::Mod,
            Box::new(TagExpr::lit(1)),
            Box::new(TagExpr::lit(0)),
        );
        assert_eq!(m.eval(&rec(&[])), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn overflow_is_detected() {
        let e = TagExpr::Bin(
            ArithOp::Add,
            Box::new(TagExpr::lit(i64::MAX)),
            Box::new(TagExpr::lit(1)),
        );
        assert_eq!(e.eval(&rec(&[])), Err(ExprError::Overflow));
        let n = TagExpr::Neg(Box::new(TagExpr::lit(i64::MIN)));
        assert_eq!(n.eval(&rec(&[])), Err(ExprError::Overflow));
    }

    #[test]
    fn guard_paper_level_cutoff() {
        // {<level>} if <level> > 40
        let g = Guard::tag_gt("level", 40);
        assert_eq!(g.eval(&rec(&[("level", 41)])), Ok(true));
        assert_eq!(g.eval(&rec(&[("level", 40)])), Ok(false));
        assert_eq!(
            g.eval(&rec(&[])),
            Err(ExprError::MissingTag("level".into()))
        );
    }

    #[test]
    fn guard_connectives() {
        let g = Guard::And(
            Box::new(Guard::tag_gt("a", 0)),
            Box::new(Guard::Not(Box::new(Guard::tag_gt("b", 10)))),
        );
        assert_eq!(g.eval(&rec(&[("a", 1), ("b", 5)])), Ok(true));
        assert_eq!(g.eval(&rec(&[("a", 1), ("b", 11)])), Ok(false));
        assert_eq!(g.eval(&rec(&[("a", 0), ("b", 5)])), Ok(false));
        let o = Guard::Or(
            Box::new(Guard::tag_gt("a", 0)),
            Box::new(Guard::tag_gt("b", 0)),
        );
        assert_eq!(o.eval(&rec(&[("a", 0), ("b", 1)])), Ok(true));
    }

    #[test]
    fn comparison_operators() {
        let r = rec(&[("x", 5)]);
        let cmp = |op| {
            Guard::Cmp(op, TagExpr::tag("x"), TagExpr::lit(5))
                .eval(&r)
                .unwrap()
        };
        assert!(cmp(CmpOp::Eq));
        assert!(!cmp(CmpOp::Ne));
        assert!(!cmp(CmpOp::Lt));
        assert!(cmp(CmpOp::Le));
        assert!(!cmp(CmpOp::Gt));
        assert!(cmp(CmpOp::Ge));
    }

    #[test]
    fn referenced_tags_collects_unique_names() {
        let e = TagExpr::tag("a").add(TagExpr::tag("b").modulo(TagExpr::tag("a")));
        let mut tags = Vec::new();
        e.referenced_tags(&mut tags);
        assert_eq!(tags, vec!["a".to_string(), "b".to_string()]);
        let g = Guard::Cmp(CmpOp::Lt, TagExpr::tag("x"), TagExpr::tag("y"));
        let mut tags = Vec::new();
        g.referenced_tags(&mut tags);
        assert_eq!(tags, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = TagExpr::tag("k").modulo(TagExpr::lit(4));
        assert_eq!(e.to_string(), "(<k> % 4)");
        let g = Guard::tag_gt("level", 40);
        assert_eq!(g.to_string(), "<level> > 40");
    }
}
