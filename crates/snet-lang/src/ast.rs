//! Abstract syntax of S-Net networks.
//!
//! "We use algebraic formulae to define connectivity in streaming
//! networks" (paper, Section 4). The AST mirrors that algebra: leaves
//! are boxes and filters; the four combinators — serial and parallel
//! composition, serial and parallel replication — each come in a
//! non-deterministic (`..`, `||`, `**`, `!!`) and, except for serial
//! composition, a deterministic (`|`, `*`, `!`) flavour.
//!
//! Signature inference walks the tree bottom-up using the composition
//! rules of [`snet_types::sig`], resolving named components against an
//! [`Env`] of declared boxes and nets.

use crate::expr::Guard;
use crate::filter::FilterDef;
use snet_types::{BoxSig, NetSig, RecordType, TypeError};
use std::collections::HashMap;
use std::fmt;

/// An exit pattern for serial replication: a label-set pattern plus an
/// optional tag guard, e.g. `{<level>} if <level> > 40`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExitPattern {
    pub pattern: RecordType,
    pub guard: Option<Guard>,
}

impl ExitPattern {
    pub fn new(pattern: RecordType) -> Self {
        ExitPattern {
            pattern,
            guard: None,
        }
    }

    pub fn with_guard(pattern: RecordType, guard: Guard) -> Self {
        ExitPattern {
            pattern,
            guard: Some(guard),
        }
    }
}

impl fmt::Display for ExitPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)?;
        if let Some(g) = &self.guard {
            write!(f, " if {g}")?;
        }
        Ok(())
    }
}

/// A network expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetAst {
    /// Reference to a declared box or net by name.
    Ref(String),
    /// An inline filter.
    Filter(FilterDef),
    /// `A .. B` — pipeline.
    Serial(Box<NetAst>, Box<NetAst>),
    /// `A || B` (non-det) or `A | B` (det).
    Parallel {
        left: Box<NetAst>,
        right: Box<NetAst>,
        det: bool,
    },
    /// `A ** p` (non-det) or `A * p` (det) — serial replication with
    /// exit pattern.
    Star {
        inner: Box<NetAst>,
        exit: ExitPattern,
        det: bool,
    },
    /// `A !! <t>` (non-det) or `A ! <t>` (det) — indexed parallel
    /// replication.
    Split {
        inner: Box<NetAst>,
        tag: String,
        det: bool,
    },
}

impl NetAst {
    pub fn serial(a: NetAst, b: NetAst) -> NetAst {
        NetAst::Serial(Box::new(a), Box::new(b))
    }

    pub fn parallel(a: NetAst, b: NetAst) -> NetAst {
        NetAst::Parallel {
            left: Box::new(a),
            right: Box::new(b),
            det: false,
        }
    }

    pub fn parallel_det(a: NetAst, b: NetAst) -> NetAst {
        NetAst::Parallel {
            left: Box::new(a),
            right: Box::new(b),
            det: true,
        }
    }

    pub fn star(inner: NetAst, exit: ExitPattern) -> NetAst {
        NetAst::Star {
            inner: Box::new(inner),
            exit,
            det: false,
        }
    }

    pub fn star_det(inner: NetAst, exit: ExitPattern) -> NetAst {
        NetAst::Star {
            inner: Box::new(inner),
            exit,
            det: true,
        }
    }

    pub fn split(inner: NetAst, tag: &str) -> NetAst {
        NetAst::Split {
            inner: Box::new(inner),
            tag: tag.to_string(),
            det: false,
        }
    }

    pub fn split_det(inner: NetAst, tag: &str) -> NetAst {
        NetAst::Split {
            inner: Box::new(inner),
            tag: tag.to_string(),
            det: true,
        }
    }

    pub fn boxref(name: &str) -> NetAst {
        NetAst::Ref(name.to_string())
    }

    /// Infers the network's type signature against an environment of
    /// declared components.
    pub fn infer(&self, env: &Env) -> Result<NetSig, TypeError> {
        match self {
            NetAst::Ref(name) => env
                .lookup_sig(name)
                .ok_or_else(|| TypeError(format!("unknown box or net '{name}'"))),
            NetAst::Filter(f) => Ok(f.net_sig()),
            NetAst::Serial(a, b) => {
                let sa = a.infer(env)?;
                let sb = b.infer(env)?;
                snet_types::serial(&sa, &sb)
            }
            NetAst::Parallel { left, right, .. } => {
                let sl = left.infer(env)?;
                let sr = right.infer(env)?;
                Ok(snet_types::parallel(&sl, &sr))
            }
            NetAst::Star { inner, exit, .. } => {
                let si = inner.infer(env)?;
                snet_types::star(&si, &exit.pattern)
            }
            NetAst::Split { inner, tag, .. } => {
                let si = inner.infer(env)?;
                Ok(snet_types::split(&si, snet_types::Label::tag(tag)))
            }
        }
    }

    /// Every box name referenced by the expression (transitively
    /// through net references is resolved by [`Env::box_closure`]).
    pub fn direct_refs(&self, out: &mut Vec<String>) {
        match self {
            NetAst::Ref(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            NetAst::Filter(_) => {}
            NetAst::Serial(a, b) => {
                a.direct_refs(out);
                b.direct_refs(out);
            }
            NetAst::Parallel { left, right, .. } => {
                left.direct_refs(out);
                right.direct_refs(out);
            }
            NetAst::Star { inner, .. } | NetAst::Split { inner, .. } => {
                inner.direct_refs(out);
            }
        }
    }
}

/// A box declaration: name plus declared signature. The executable
/// body is bound separately at runtime (the coordination layer "cannot
/// compute" — it only knows the interface).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoxDecl {
    pub name: String,
    pub sig: BoxSig,
}

/// A net declaration: `net name = expression;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetDecl {
    pub name: String,
    pub body: NetAst,
}

/// A complete S-Net program: box declarations plus net definitions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    pub boxes: Vec<BoxDecl>,
    pub nets: Vec<NetDecl>,
}

impl Program {
    pub fn env(&self) -> Result<Env, TypeError> {
        Env::from_program(self)
    }

    pub fn net(&self, name: &str) -> Option<&NetDecl> {
        self.nets.iter().find(|n| n.name == name)
    }

    pub fn box_decl(&self, name: &str) -> Option<&BoxDecl> {
        self.boxes.iter().find(|b| b.name == name)
    }
}

/// Resolution environment: declared boxes and (already inferred) nets.
#[derive(Clone, Debug, Default)]
pub struct Env {
    boxes: HashMap<String, BoxSig>,
    nets: HashMap<String, (NetAst, NetSig)>,
}

impl Env {
    pub fn new() -> Env {
        Env::default()
    }

    /// Declares a box signature.
    pub fn declare_box(&mut self, name: &str, sig: BoxSig) -> Result<(), TypeError> {
        if self.boxes.contains_key(name) || self.nets.contains_key(name) {
            return Err(TypeError(format!("duplicate declaration of '{name}'")));
        }
        self.boxes.insert(name.to_string(), sig);
        Ok(())
    }

    /// Declares a net, inferring and recording its signature. Nets may
    /// reference previously declared boxes and nets only (no forward
    /// references — matching the paper's compositional style).
    pub fn declare_net(&mut self, name: &str, body: NetAst) -> Result<NetSig, TypeError> {
        if self.boxes.contains_key(name) || self.nets.contains_key(name) {
            return Err(TypeError(format!("duplicate declaration of '{name}'")));
        }
        let sig = body.infer(self)?;
        self.nets.insert(name.to_string(), (body, sig.clone()));
        Ok(sig)
    }

    /// Builds an environment from a program, inferring all nets.
    pub fn from_program(p: &Program) -> Result<Env, TypeError> {
        let mut env = Env::new();
        for b in &p.boxes {
            env.declare_box(&b.name, b.sig.clone())?;
        }
        for n in &p.nets {
            env.declare_net(&n.name, n.body.clone())?;
        }
        Ok(env)
    }

    pub fn lookup_sig(&self, name: &str) -> Option<NetSig> {
        if let Some(b) = self.boxes.get(name) {
            return Some(b.net_sig());
        }
        self.nets.get(name).map(|(_, s)| s.clone())
    }

    pub fn lookup_box(&self, name: &str) -> Option<&BoxSig> {
        self.boxes.get(name)
    }

    pub fn lookup_net(&self, name: &str) -> Option<&NetAst> {
        self.nets.get(name).map(|(a, _)| a)
    }

    /// All box names reachable from an expression, resolving net
    /// references transitively.
    pub fn box_closure(&self, ast: &NetAst) -> Vec<String> {
        let mut frontier = Vec::new();
        ast.direct_refs(&mut frontier);
        let mut boxes = Vec::new();
        let mut seen = Vec::new();
        while let Some(name) = frontier.pop() {
            if seen.contains(&name) {
                continue;
            }
            seen.push(name.clone());
            if self.boxes.contains_key(&name) {
                if !boxes.contains(&name) {
                    boxes.push(name);
                }
            } else if let Some((body, _)) = self.nets.get(&name) {
                body.direct_refs(&mut frontier);
            }
        }
        boxes.sort();
        boxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snet_types::Label;

    fn simple_box(name: &str, inputs: &[&str], outputs: &[&[&str]]) -> BoxDecl {
        BoxDecl {
            name: name.to_string(),
            sig: BoxSig::new(
                inputs.iter().map(|f| Label::field(f)).collect(),
                outputs
                    .iter()
                    .map(|v| v.iter().map(|f| Label::field(f)).collect())
                    .collect(),
            ),
        }
    }

    #[test]
    fn env_resolves_box_refs() {
        let mut env = Env::new();
        env.declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .unwrap();
        let sig = NetAst::boxref("f").infer(&env).unwrap();
        assert_eq!(sig.maps[0].input, RecordType::of(&["a"], &[]));
        assert!(NetAst::boxref("zzz").infer(&env).is_err());
    }

    #[test]
    fn serial_inference_through_env() {
        let mut env = Env::new();
        env.declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .unwrap();
        env.declare_box("g", simple_box("g", &["b"], &[&["c"]]).sig)
            .unwrap();
        let ast = NetAst::serial(NetAst::boxref("f"), NetAst::boxref("g"));
        let sig = ast.infer(&env).unwrap();
        assert_eq!(sig.maps[0].input, RecordType::of(&["a"], &[]));
        assert_eq!(sig.output_type().to_string(), "{c}");
    }

    #[test]
    fn net_declarations_compose() {
        let mut env = Env::new();
        env.declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .unwrap();
        env.declare_box("g", simple_box("g", &["b"], &[&["a"]]).sig)
            .unwrap();
        let fg = NetAst::serial(NetAst::boxref("f"), NetAst::boxref("g"));
        env.declare_net("fg", fg).unwrap();
        // A net can reference another net.
        let ast = NetAst::serial(NetAst::boxref("fg"), NetAst::boxref("f"));
        let sig = ast.infer(&env).unwrap();
        assert_eq!(sig.output_type().to_string(), "{b}");
    }

    #[test]
    fn duplicate_declarations_rejected() {
        let mut env = Env::new();
        env.declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .unwrap();
        assert!(env
            .declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .is_err());
        assert!(env.declare_net("f", NetAst::boxref("f")).is_err());
    }

    #[test]
    fn box_closure_walks_nets() {
        let mut env = Env::new();
        env.declare_box("f", simple_box("f", &["a"], &[&["b"]]).sig)
            .unwrap();
        env.declare_box("g", simple_box("g", &["b"], &[&["c"]]).sig)
            .unwrap();
        env.declare_net(
            "pipe",
            NetAst::serial(NetAst::boxref("f"), NetAst::boxref("g")),
        )
        .unwrap();
        let ast = NetAst::parallel(NetAst::boxref("pipe"), NetAst::boxref("f"));
        assert_eq!(
            env.box_closure(&ast),
            vec!["f".to_string(), "g".to_string()]
        );
    }

    #[test]
    fn exit_pattern_display() {
        let p = ExitPattern::new(RecordType::of(&[], &["done"]));
        assert_eq!(p.to_string(), "{<done>}");
        let g = ExitPattern::with_guard(
            RecordType::of(&[], &["level"]),
            crate::expr::Guard::tag_gt("level", 40),
        );
        assert_eq!(g.to_string(), "{<level>} if <level> > 40");
    }

    #[test]
    fn split_and_star_infer() {
        let mut env = Env::new();
        env.declare_box(
            "s",
            BoxSig::new(
                vec![Label::field("board")],
                vec![
                    vec![Label::field("board")],
                    vec![Label::field("board"), Label::tag("done")],
                ],
            ),
        )
        .unwrap();
        let star = NetAst::star(
            NetAst::boxref("s"),
            ExitPattern::new(RecordType::of(&[], &["done"])),
        );
        let sig = star.infer(&env).unwrap();
        assert!(sig.maps.len() >= 2);
        let split = NetAst::split(NetAst::boxref("s"), "k");
        let sig = split.infer(&env).unwrap();
        assert!(sig.maps[0].input.contains(Label::tag("k")));
    }
}
